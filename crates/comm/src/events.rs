//! Structured per-rank communication event records.
//!
//! Every user-visible communication call on a [`crate::ThreadComm`] can emit
//! one [`CommEvent`]: point-to-point sends and receives (including messages
//! that travel through the pending out-of-order queue) carry a `(comm, src,
//! dst, tag, seq)` matching key, and collectives carry their communicator
//! epoch so an offline analyzer can group the per-rank records back into one
//! logical operation. The records are the raw material of the cross-rank
//! wait-state doctor (`diffreg-telemetry::doctor` and the `diffreg-doctor`
//! CLI): matched sends/receives expose late-sender and late-receiver waits,
//! and epoch-grouped collectives expose wait-at-collective and
//! imbalance-at-collective losses, Scalasca-style.
//!
//! Timestamps are nanoseconds on the process-wide monotonic clock
//! ([`monotonic_ns`]), the same clock the span tracer uses, so comm events
//! and spans align on one timeline across every rank of the simulated
//! machine.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process-wide monotonic epoch.
///
/// The epoch is pinned on first use; every rank thread, the span tracer, and
/// the comm event recorder all share it, so timestamps from different ranks
/// are directly comparable.
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().saturating_duration_since(epoch).as_nanos() as u64
}

/// The kind of communication operation a [`CommEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommOp {
    /// Point-to-point send (user tag).
    Send,
    /// Point-to-point receive (user tag; direct or pending-queue pop).
    Recv,
    /// `barrier` / `try_barrier`.
    Barrier,
    /// `broadcast`.
    Broadcast,
    /// `allgather`.
    Allgather,
    /// `alltoallv` / `try_alltoallv`.
    Alltoallv,
    /// `allreduce` / `try_allreduce`.
    Allreduce,
    /// `allreduce_usize`.
    AllreduceUsize,
    /// `split` (communicator creation is itself a collective).
    Split,
}

impl CommOp {
    /// Stable lowercase wire name (used in the JSONL event stream).
    pub fn name(self) -> &'static str {
        match self {
            CommOp::Send => "send",
            CommOp::Recv => "recv",
            CommOp::Barrier => "barrier",
            CommOp::Broadcast => "broadcast",
            CommOp::Allgather => "allgather",
            CommOp::Alltoallv => "alltoallv",
            CommOp::Allreduce => "allreduce",
            CommOp::AllreduceUsize => "allreduce_usize",
            CommOp::Split => "split",
        }
    }

    /// Parses a wire name back into the op kind.
    pub fn from_name(name: &str) -> Option<CommOp> {
        Some(match name {
            "send" => CommOp::Send,
            "recv" => CommOp::Recv,
            "barrier" => CommOp::Barrier,
            "broadcast" => CommOp::Broadcast,
            "allgather" => CommOp::Allgather,
            "alltoallv" => CommOp::Alltoallv,
            "allreduce" => CommOp::Allreduce,
            "allreduce_usize" => CommOp::AllreduceUsize,
            "split" => CommOp::Split,
            _ => return None,
        })
    }

    /// Whether this op is point-to-point (send/recv) rather than collective.
    pub fn is_p2p(self) -> bool {
        matches!(self, CommOp::Send | CommOp::Recv)
    }
}

/// One completed communication operation on one rank.
///
/// * **p2p events** (`op` = [`CommOp::Send`]/[`CommOp::Recv`]) carry `peer`,
///   `tag`, and `seq`. `seq` counts messages on the `(sender, receiver,
///   tag)` stream, so the matching key `(comm, src, dst, tag, seq)`
///   identifies exactly one message: channels are FIFO per `(src, dst)` pair
///   and the pending queue preserves per-tag order, so the n-th send on a
///   stream is the n-th receive.
/// * **collective events** carry `epoch` (the communicator's collective
///   epoch); all member ranks of one collective record the same `(comm, op,
///   epoch)`, and a group is complete when `csize` records arrived.
///
/// `blocked_ns` is the portion of `[t0_ns, t1_ns]` the rank spent blocked
/// (receive waits, barrier waits, rendezvous send waits) — the same time
/// that accrues into [`crate::CommStats::blocked_seconds`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    /// Operation kind.
    pub op: CommOp,
    /// Communicator uid: 0 for the world communicator; sub-communicators get
    /// a uid derived from `(parent uid, split epoch, color)`, identical on
    /// every member rank.
    pub comm: u64,
    /// Size of the communicator the op ran on.
    pub csize: usize,
    /// This rank's *communicator-local* rank.
    pub rank: usize,
    /// Peer's communicator-local rank (p2p only: dst for sends, src for recvs).
    pub peer: Option<usize>,
    /// User message tag (p2p only).
    pub tag: Option<u64>,
    /// Message index on the `(sender, receiver, tag)` stream (p2p only).
    pub seq: Option<u64>,
    /// Payload bytes: the message size for p2p, bytes sent during the
    /// collective for collectives.
    pub bytes: u64,
    /// Collective epoch (collectives only).
    pub epoch: Option<u64>,
    /// Operation start, ns on the [`monotonic_ns`] clock.
    pub t0_ns: u64,
    /// Operation end, ns on the [`monotonic_ns`] clock.
    pub t1_ns: u64,
    /// Blocked portion of the operation in nanoseconds.
    pub blocked_ns: u64,
}

impl CommEvent {
    /// Operation duration in seconds.
    pub fn dur_s(&self) -> f64 {
        self.t1_ns.saturating_sub(self.t0_ns) as f64 / 1e9
    }

    /// Blocked time in seconds.
    pub fn blocked_s(&self) -> f64 {
        self.blocked_ns as f64 / 1e9
    }
}

/// Derives a sub-communicator uid from the parent uid, the split's epoch,
/// and the color — FNV-1a over the three words, so every member of the new
/// communicator (which shares all three inputs) computes the same uid and
/// distinct splits/colors get distinct uids.
pub(crate) fn derive_comm_uid(parent: u64, epoch: u64, color: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in [parent, epoch, color as u64] {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // Keep 0 reserved for the world communicator.
    h.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn op_names_round_trip() {
        for op in [
            CommOp::Send,
            CommOp::Recv,
            CommOp::Barrier,
            CommOp::Broadcast,
            CommOp::Allgather,
            CommOp::Alltoallv,
            CommOp::Allreduce,
            CommOp::AllreduceUsize,
            CommOp::Split,
        ] {
            assert_eq!(CommOp::from_name(op.name()), Some(op));
        }
        assert_eq!(CommOp::from_name("warp"), None);
        assert!(CommOp::Send.is_p2p() && CommOp::Recv.is_p2p());
        assert!(!CommOp::Barrier.is_p2p());
    }

    #[test]
    fn comm_uid_is_member_stable_and_distinct() {
        // All members of one split share (parent, epoch, color) → same uid.
        let a = derive_comm_uid(0, 5, 0);
        assert_eq!(a, derive_comm_uid(0, 5, 0));
        // Different colors or epochs → different uids; never the world's 0.
        assert_ne!(a, derive_comm_uid(0, 5, 1));
        assert_ne!(a, derive_comm_uid(0, 6, 0));
        assert_ne!(a, 0);
        assert_ne!(derive_comm_uid(a, 2, 1), a);
    }

    #[test]
    fn event_durations_convert_to_seconds() {
        let e = CommEvent {
            op: CommOp::Recv,
            comm: 0,
            csize: 2,
            rank: 1,
            peer: Some(0),
            tag: Some(7),
            seq: Some(0),
            bytes: 128,
            epoch: None,
            t0_ns: 1_000_000_000,
            t1_ns: 3_500_000_000,
            blocked_ns: 2_000_000_000,
        };
        assert!((e.dur_s() - 2.5).abs() < 1e-12);
        assert!((e.blocked_s() - 2.0).abs() < 1e-12);
    }
}
