//! Structured communication errors and the rank-failure report.
//!
//! The paper's solver is an SPMD program whose correctness depends on every
//! rank calling the same collectives in the same order and on every message
//! carrying the payload its receiver expects. On a real cluster MPI aborts
//! the job when that contract breaks; in the simulated runtime a violation
//! used to surface as a hang or an opaque `unwrap` panic. This module gives
//! every failure mode a precise, typed description:
//!
//! * [`CommError`] — what went wrong at a single communication call site
//!   (peer death, payload type/length mismatch, watchdog timeout, collective
//!   contract violation, serial-queue deadlock).
//! * [`RankFailure`] — a contained per-rank panic report produced by
//!   [`crate::run_threaded_checked`].
//! * [`CollOp`] — the collective-operation fingerprint the contract checker
//!   piggybacks on internal message tags.

use std::fmt;

/// Reserved tag space for internal protocol messages (splits, collectives).
///
/// User code must keep its tags below this bit; the runtime asserts nothing
/// but the collectives' own receives only ever match tags at or above it.
pub const TAG_INTERNAL: u64 = 1 << 60;

/// Bit position where the [`CollOp`] fingerprint lives inside an internal tag.
pub(crate) const OP_SHIFT: u64 = 52;

/// Mask selecting the collective epoch inside an internal tag.
pub(crate) const EPOCH_MASK: u64 = (1 << OP_SHIFT) - 1;

/// The kind of collective operation a message belongs to.
///
/// The discriminants match the legacy `TAG_INTERNAL + k` offsets so that the
/// wire format with contract checking *disabled* is byte-identical to the
/// original runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CollOp {
    /// `broadcast` payload from root.
    Broadcast = 1,
    /// `allgather` contribution.
    Allgather = 2,
    /// `alltoallv` part.
    Alltoallv = 3,
    /// `allreduce` contribution sent to rank 0.
    ReduceSend = 4,
    /// `allreduce` result fanned out from rank 0.
    ReduceResult = 5,
    /// `allreduce_usize` contribution sent to rank 0.
    ReduceUsizeSend = 6,
    /// `allreduce_usize` result fanned out from rank 0.
    ReduceUsizeResult = 7,
    /// `split` endpoint package from the group leader.
    Split = 8,
}

impl CollOp {
    /// Decodes the op fingerprint from the bits at [`OP_SHIFT`], if valid.
    pub(crate) fn from_bits(bits: u64) -> Option<CollOp> {
        Some(match bits {
            1 => CollOp::Broadcast,
            2 => CollOp::Allgather,
            3 => CollOp::Alltoallv,
            4 => CollOp::ReduceSend,
            5 => CollOp::ReduceResult,
            6 => CollOp::ReduceUsizeSend,
            7 => CollOp::ReduceUsizeResult,
            8 => CollOp::Split,
            _ => return None,
        })
    }
}

impl fmt::Display for CollOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CollOp::Broadcast => "Broadcast",
            CollOp::Allgather => "Allgather",
            CollOp::Alltoallv => "Alltoallv",
            CollOp::ReduceSend => "Allreduce(send)",
            CollOp::ReduceResult => "Allreduce(result)",
            CollOp::ReduceUsizeSend => "AllreduceUsize(send)",
            CollOp::ReduceUsizeResult => "AllreduceUsize(result)",
            CollOp::Split => "Split",
        };
        f.write_str(name)
    }
}

/// Renders a message tag for diagnostics, decoding internal encodings.
///
/// Internal tags come in two shapes: the legacy `TAG_INTERNAL + k` constants
/// (contract checking off) and the epoch-stamped `TAG_INTERNAL | op<<52 |
/// epoch` form (contract checking on). User tags print as plain numbers.
pub fn tag_display(tag: u64) -> String {
    if tag < TAG_INTERNAL {
        return format!("{tag}");
    }
    let low = tag & !TAG_INTERNAL;
    let op_bits = low >> OP_SHIFT;
    if op_bits != 0 {
        match CollOp::from_bits(op_bits) {
            Some(op) => format!("internal:{op}@epoch{}", low & EPOCH_MASK),
            None => format!("internal:op?{op_bits}@epoch{}", low & EPOCH_MASK),
        }
    } else {
        match CollOp::from_bits(low) {
            Some(op) => format!("internal:{op}"),
            None => format!("internal:+{low}"),
        }
    }
}

/// A structured communication failure at a single call site.
///
/// Returned by the fallible `try_*` entry points of [`crate::Comm`]; the
/// infallible convenience methods panic with this error's `Display` text so
/// legacy call sites still get the improved diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank's endpoint was dropped (its thread panicked or exited)
    /// while this rank was blocked waiting on it.
    PeerGone {
        /// The rank that observed the failure.
        rank: usize,
        /// The peer whose endpoint disappeared.
        peer: usize,
    },
    /// A received payload could not be downcast to the expected element type.
    TypeMismatch {
        /// The receiving rank.
        rank: usize,
        /// The sender.
        src: usize,
        /// The message tag that matched.
        tag: u64,
        /// The element type the receiver asked for.
        expected: &'static str,
        /// The element type the sender recorded at send time.
        found: &'static str,
        /// The payload size in bytes the sender recorded at send time.
        found_bytes: usize,
    },
    /// A collective received a buffer of the wrong length or part count.
    LengthMismatch {
        /// The rank that observed the mismatch.
        rank: usize,
        /// The contributing rank, when the mismatch is in a received part.
        src: Option<usize>,
        /// Which collective / argument is malformed.
        what: &'static str,
        /// The length the collective required.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
    /// The watchdog expired while blocked in a receive or barrier.
    Timeout {
        /// The rank whose watchdog fired.
        rank: usize,
        /// Human-readable description of what this rank was waiting for.
        waiting_on: String,
        /// Who-waits-on-whom table: one line per rank of the communicator,
        /// snapshotted from the shared blocked-state registry.
        table: Vec<String>,
    },
    /// Two ranks called different collectives (or the same collectives in a
    /// different order) — detected by the epoch/op fingerprint checker.
    ContractViolation {
        /// The rank that detected the violation.
        rank: usize,
        /// The peer whose message exposed the mismatch.
        src: usize,
        /// The collective this rank was executing.
        expected: String,
        /// The collective the peer's message belongs to.
        observed: String,
    },
    /// A single-rank (serial) receive found no matching queued message:
    /// a guaranteed deadlock, reported instead of blocking forever.
    Deadlock {
        /// The rank that would deadlock (always 0 for [`crate::SerialComm`]).
        rank: usize,
        /// The `(src, tag)` the receive was waiting for.
        waiting_on: String,
        /// The tags actually sitting in the queue.
        queued: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerGone { rank, peer } => {
                write!(f, "comm error on rank {rank}: peer rank {peer} is gone (its thread panicked or dropped its endpoint)")
            }
            CommError::TypeMismatch { rank, src, tag, expected, found, found_bytes } => {
                write!(
                    f,
                    "comm error on rank {rank}: recv type mismatch from rank {src} tag {}: \
                     expected Vec<{expected}>, sender recorded {found} ({found_bytes} bytes)",
                    tag_display(*tag)
                )
            }
            CommError::LengthMismatch { rank, src, what, expected, got } => {
                write!(f, "comm error on rank {rank}: {what} length mismatch")?;
                if let Some(s) = src {
                    write!(f, " (contribution from rank {s})")?;
                }
                write!(f, ": expected {expected}, got {got}")
            }
            CommError::Timeout { rank, waiting_on, table } => {
                writeln!(
                    f,
                    "comm error on rank {rank}: watchdog timeout while waiting on {waiting_on}; \
                     blocked-rank table:"
                )?;
                for line in table {
                    writeln!(f, "  {line}")?;
                }
                write!(
                    f,
                    "  (set DIFFREG_COMM_TIMEOUT_MS to adjust the watchdog; see README \
                     'Fault model & runbook')"
                )
            }
            CommError::ContractViolation { rank, src, expected, observed } => {
                write!(
                    f,
                    "comm error on rank {rank}: collective contract violation: this rank is \
                     executing {expected} but rank {src}'s message belongs to {observed} — \
                     ranks are calling collectives in different orders"
                )
            }
            CommError::Deadlock { rank, waiting_on, queued } => {
                write!(
                    f,
                    "comm error on rank {rank}: serial recv would deadlock: waiting on \
                     {waiting_on}, but queued messages are [{queued}]"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A contained panic from one rank of a [`crate::run_threaded_checked`] run.
#[derive(Debug, Clone)]
pub struct RankFailure {
    /// The rank whose closure panicked.
    pub rank: usize,
    /// The panic payload rendered as text (`String`/`&str` payloads verbatim,
    /// anything else as a placeholder).
    pub payload: String,
    /// What the other ranks were doing when this rank died — a snapshot of
    /// the blocked-state registry, for post-mortem diagnosis.
    pub context: String,
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} failed: {}", self.rank, self.payload)?;
        if !self.context.is_empty() {
            write!(f, "\n{}", self.context)?;
        }
        Ok(())
    }
}

impl std::error::Error for RankFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_display_decodes_all_encodings() {
        assert_eq!(tag_display(7), "7");
        assert_eq!(tag_display(TAG_INTERNAL + 2), "internal:Allgather");
        let stamped = TAG_INTERNAL | (3 << OP_SHIFT) | 41;
        assert_eq!(tag_display(stamped), "internal:Alltoallv@epoch41");
        assert_eq!(tag_display(TAG_INTERNAL + 9), "internal:+9");
    }

    #[test]
    fn display_messages_carry_context() {
        let e = CommError::TypeMismatch {
            rank: 2,
            src: 0,
            tag: 7,
            expected: "f64",
            found: "u32",
            found_bytes: 12,
        };
        let s = e.to_string();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("Vec<f64>"), "{s}");
        assert!(s.contains("12 bytes"), "{s}");

        let t = CommError::Timeout {
            rank: 1,
            waiting_on: "recv(src=0, tag=3)".into(),
            table: vec!["rank 0: blocked in barrier".into()],
        };
        let s = t.to_string();
        assert!(s.contains("blocked-rank table"), "{s}");
        assert!(s.contains("DIFFREG_COMM_TIMEOUT_MS"), "{s}");
    }

    #[test]
    fn rank_failure_display() {
        let rf = RankFailure { rank: 3, payload: "boom".into(), context: String::new() };
        assert_eq!(rf.to_string(), "rank 3 failed: boom");
    }
}
