//! Lint identifiers, diagnostics, and the per-site suppression protocol.
//!
//! Every finding the analyzer emits is a [`Diagnostic`] tagged with a
//! [`Lint`]. A finding can be silenced at its site with a suppression
//! comment carrying a mandatory reason:
//!
//! ```text
//! // diffreg-allow(float-eq): exact-zero guard, 0.0 is the computed sentinel
//! if den == 0.0 { ... }
//! ```
//!
//! The comment applies to the *next* code line when it stands alone, or to
//! its own line when it trails code. Several stacked `diffreg-allow`
//! comments all apply to the code line below them. An allow without a
//! reason is ignored (and will itself be reported), so every suppression in
//! the tree documents *why* the invariant is waived.

use std::fmt;

/// The project lints, in registry order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// A rank-dependent branch across which the *resolved* collective
    /// sequence diverges — the interprocedural, path-sensitive upgrade of
    /// the old syntactic `collective-in-rank-branch` lint and the static
    /// counterpart of the runtime collective-ordering contract checker.
    /// Each arm (plus the function continuation, empty for arms that
    /// return early) is lowered through the workspace call graph to its
    /// collective sequence; any mismatch is a guaranteed hang on a real
    /// machine. Symmetric code that merely *computes* differently per rank
    /// no longer fires.
    CollectiveConsistency,
    /// A `try_*` comm result / pending handle bound by a `let` but not
    /// consumed on every control-flow path before scope exit. A dropped
    /// pending operation is a silent protocol desync; a dropped `Result`
    /// swallows a `CommError`.
    UnwaitedHandle,
    /// An allocating call (`Vec::new`, `with_capacity`, `vec!`, `collect`,
    /// `to_vec`, ...) in a function statically reachable from the
    /// `newton.iter` / `newton.pcg` / `interp.eval` telemetry spans without
    /// going through `grid::arena` — the compile-time gate for the
    /// `zero_alloc.rs` steady-state invariant.
    AllocInHotPath,
    /// A `CommError` result that is discarded (`let _ =`), collapsed
    /// (`.ok()`, `.unwrap_or*`) or matched into an empty `Err` arm without
    /// reaching a typed recovery path.
    SwallowedCommError,
    /// `unwrap()` / `expect()` / `panic!` in non-test library code of the
    /// solver crates. Library paths must surface typed errors
    /// (`CommError`, ...) or carry an explicit allow with a reason.
    NoUnwrapInLib,
    /// `==` / `!=` between float-typed operands outside tests. Exact float
    /// equality is almost always wrong after arithmetic; intentional
    /// exact-zero guards must say so in an allow reason.
    FloatEq,
    /// A mutating call or assignment inside `debug_assert!` — the side
    /// effect silently disappears in release builds.
    DebugAssertSideEffect,
    /// An `unsafe` token without a `SAFETY:` comment in the preceding lines.
    UnsafeWithoutSafetyComment,
    /// A `pub fn` at crate root or module scope without a doc comment.
    PubFnMissingDocs,
    /// A library crate root missing the `#![forbid(unsafe_code)]` attribute
    /// (the workspace is unsafe-free; this locks the invariant in).
    ForbidUnsafeMissing,
    /// A `diffreg-allow` comment that suppressed nothing (stale), carries an
    /// unknown lint name, or is missing its reason.
    UnusedAllow,
}

/// All lints, in registry order.
pub const ALL_LINTS: &[Lint] = &[
    Lint::CollectiveConsistency,
    Lint::UnwaitedHandle,
    Lint::AllocInHotPath,
    Lint::SwallowedCommError,
    Lint::NoUnwrapInLib,
    Lint::FloatEq,
    Lint::DebugAssertSideEffect,
    Lint::UnsafeWithoutSafetyComment,
    Lint::PubFnMissingDocs,
    Lint::ForbidUnsafeMissing,
    Lint::UnusedAllow,
];

impl Lint {
    /// The kebab-case name used in output and `diffreg-allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Lint::CollectiveConsistency => "collective-consistency",
            Lint::UnwaitedHandle => "unwaited-handle",
            Lint::AllocInHotPath => "alloc-in-hot-path",
            Lint::SwallowedCommError => "swallowed-comm-error",
            Lint::NoUnwrapInLib => "no-unwrap-in-lib",
            Lint::FloatEq => "float-eq",
            Lint::DebugAssertSideEffect => "debug-assert-side-effect",
            Lint::UnsafeWithoutSafetyComment => "unsafe-without-safety-comment",
            Lint::PubFnMissingDocs => "pub-fn-missing-docs",
            Lint::ForbidUnsafeMissing => "forbid-unsafe-missing",
            Lint::UnusedAllow => "unused-allow",
        }
    }

    /// Parses a lint name as written in a suppression comment.
    pub fn from_name(name: &str) -> Option<Lint> {
        ALL_LINTS.iter().copied().find(|l| l.name() == name)
    }

    /// One-line description for `diffreg-analyzer list`.
    pub fn description(self) -> &'static str {
        match self {
            Lint::CollectiveConsistency => {
                "collective sequence diverges across a rank-dependent branch (static hang proof)"
            }
            Lint::UnwaitedHandle => {
                "try_*/pending comm result not consumed on every path before scope exit"
            }
            Lint::AllocInHotPath => {
                "allocation outside grid::arena in a fn reachable from a hot telemetry span"
            }
            Lint::SwallowedCommError => "CommError dropped or collapsed without typed recovery",
            Lint::NoUnwrapInLib => "unwrap()/expect()/panic! in non-test solver library code",
            Lint::FloatEq => "==/!= between float-typed operands outside tests",
            Lint::DebugAssertSideEffect => "side effect inside debug_assert! (vanishes in release)",
            Lint::UnsafeWithoutSafetyComment => "unsafe without a preceding SAFETY: comment",
            Lint::PubFnMissingDocs => "undocumented pub fn at crate root / module scope",
            Lint::ForbidUnsafeMissing => "library crate root missing #![forbid(unsafe_code)]",
            Lint::UnusedAllow => "stale or malformed diffreg-allow suppression",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Path of the offending file, relative to the repo root.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// 1-based column of the finding.
    pub col: usize,
    /// Human-readable explanation with site context.
    pub message: String,
    /// The trimmed source line (informational in baseline v2; the hash is
    /// the content-addressed key).
    pub snippet: String,
    /// Name of the enclosing function (`""` for file-level findings) —
    /// part of the v2 baseline key.
    pub func: String,
    /// FNV-1a structural hash over (lint, enclosing fn, code tokens of the
    /// finding's line) — the v2 baseline key component that survives both
    /// line-number drift and whitespace/comment reformatting.
    pub shash: u64,
}

impl Diagnostic {
    /// Renders as `path:line:col: [lint] message`.
    pub fn render(&self) -> String {
        format!("{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.lint, self.message)
    }
}

/// A parsed `diffreg-allow` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint being waived.
    pub lint: Option<Lint>,
    /// The lint name as written (for unknown-name reporting).
    pub name: String,
    /// The justification after the colon (trimmed); empty = malformed.
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based column of the comment token.
    pub col: usize,
}

/// Extracts a `diffreg-allow(<lint>): <reason>` clause from a comment body.
pub fn parse_allow(comment: &str, line: usize, col: usize) -> Option<Allow> {
    let start = comment.find("diffreg-allow(")?;
    let rest = &comment[start + "diffreg-allow(".len()..];
    let close = rest.find(')')?;
    let name = rest[..close].trim().to_string();
    let after = &rest[close + 1..];
    let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
    Some(Allow { lint: Lint::from_name(&name), name, reason, line, col })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_round_trip() {
        for &l in ALL_LINTS {
            assert_eq!(Lint::from_name(l.name()), Some(l));
        }
        assert_eq!(Lint::from_name("no-such-lint"), None);
    }

    #[test]
    fn parse_allow_extracts_name_and_reason() {
        let a = parse_allow("// diffreg-allow(float-eq): exact-zero guard", 3, 5)
            .expect("allow parsed");
        assert_eq!(a.lint, Some(Lint::FloatEq));
        assert_eq!(a.reason, "exact-zero guard");
        assert_eq!((a.line, a.col), (3, 5));
    }

    #[test]
    fn parse_allow_flags_missing_reason_and_unknown_lint() {
        let a = parse_allow("// diffreg-allow(float-eq)", 1, 1).expect("parsed");
        assert!(a.reason.is_empty());
        let b = parse_allow("// diffreg-allow(bogus): because", 1, 1).expect("parsed");
        assert!(b.lint.is_none());
        assert_eq!(b.name, "bogus");
        assert!(parse_allow("// ordinary comment", 1, 1).is_none());
    }
}
