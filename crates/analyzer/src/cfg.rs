//! Control-flow graphs lowered from [`crate::parse`] event trees.
//!
//! The CFG models exactly what the path-sensitive lints need: basic blocks
//! of *events* (definitions of tracked values, identifier uses, `?`
//! operators) connected by successor edges, with a distinguished normal
//! exit and error exit (the target of every `?`). Branch arms fork and
//! rejoin; loops get a back edge plus the zero-iteration bypass; `return`
//! jumps straight to the exit. Closures are inlined as straight-line code —
//! conservative for the must-consume analysis (a consume inside a closure
//! counts), which keeps iterator-chain code free of false positives.

use crate::parse::{LetNode, Node};

/// One event inside a basic block.
#[derive(Debug, Clone)]
pub enum Ev {
    /// A tracked value is defined here (a `let` the classifier accepted).
    Def {
        /// Bound variable name.
        name: String,
        /// 1-based source line of the `let`.
        line: usize,
        /// 1-based source column.
        col: usize,
        /// Classifier-provided description of the value (for diagnostics).
        desc: String,
    },
    /// An identifier is mentioned (read, move, method receiver, ...).
    Use(String),
}

/// A basic block: events in order plus successor block ids.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Events in program order.
    pub evs: Vec<Ev>,
    /// Successor block ids.
    pub succ: Vec<usize>,
}

/// A function body CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; ids are indices.
    pub blocks: Vec<Block>,
    /// Entry block id.
    pub entry: usize,
    /// Normal exit block id (fallthrough and `return` land here).
    pub exit: usize,
    /// Error exit block id (`?` propagation lands here).
    pub err_exit: usize,
}

/// Decides whether a `let` defines a value the analysis should track;
/// returns a short description used in diagnostics.
pub type Classify<'c> = &'c dyn Fn(&LetNode) -> Option<String>;

/// Builds the CFG for a lowered function body. `classify` picks which
/// `let` bindings become tracked [`Ev::Def`]s.
pub fn build(body: &[Node], classify: Classify) -> Cfg {
    let mut b = Builder {
        blocks: vec![Block::default(), Block::default(), Block::default()],
        classify,
    };
    // Block 0 = entry, 1 = exit, 2 = err_exit.
    let last = b.seq(0, body);
    b.edge(last, 1);
    Cfg { blocks: b.blocks, entry: 0, exit: 1, err_exit: 2 }
}

struct Builder<'c> {
    blocks: Vec<Block>,
    classify: Classify<'c>,
}

const EXIT: usize = 1;
const ERR_EXIT: usize = 2;

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succ.contains(&to) {
            self.blocks[from].succ.push(to);
        }
    }

    /// Lowers a node sequence starting in block `cur`; returns the block the
    /// fall-through path ends in.
    fn seq(&mut self, mut cur: usize, nodes: &[Node]) -> usize {
        for n in nodes {
            cur = self.node(cur, n);
        }
        cur
    }

    fn node(&mut self, cur: usize, n: &Node) -> usize {
        match n {
            Node::Use { name, .. } => {
                self.blocks[cur].evs.push(Ev::Use(name.clone()));
                cur
            }
            Node::Lit { .. } => cur,
            Node::Try { .. } => {
                // `?`: either continue or leave through the error exit. The
                // error path counts as "consumed" for must-consume (the value
                // never existed / was propagated).
                let next = self.new_block();
                self.edge(cur, next);
                self.edge(cur, ERR_EXIT);
                next
            }
            Node::Call(c) => {
                // The receiver of a method call is a use of that variable
                // (already emitted as Use by the parser? No — the parser
                // suppresses path/field idents; receivers come through here).
                if let Some(recv) = &c.recv {
                    self.blocks[cur].evs.push(Ev::Use(recv.clone()));
                }
                cur
            }
            Node::Let(l) => {
                // Initializer events happen first.
                let cur = self.seq(cur, &l.init);
                if let Some(desc) = (self.classify)(l) {
                    if let Some(name) = &l.name {
                        self.blocks[cur].evs.push(Ev::Def {
                            name: name.clone(),
                            line: l.line,
                            col: l.col,
                            desc,
                        });
                    }
                }
                cur
            }
            Node::Branch(br) => {
                let cur = self.seq(cur, &br.cond);
                let join = self.new_block();
                for arm in &br.arms {
                    let start = self.new_block();
                    self.edge(cur, start);
                    let end = self.seq(start, &arm.body);
                    self.edge(end, join);
                }
                if br.arms.is_empty() {
                    self.edge(cur, join);
                }
                join
            }
            Node::Loop { body, .. } => {
                let header = self.new_block();
                self.edge(cur, header);
                let body_start = self.new_block();
                let after = self.new_block();
                self.edge(header, body_start);
                self.edge(header, after); // zero iterations / loop exit
                let body_end = self.seq(body_start, body);
                self.edge(body_end, header); // back edge
                after
            }
            Node::Return { value, .. } => {
                let cur = self.seq(cur, value);
                self.edge(cur, EXIT);
                // Continuation is unreachable; give it a fresh block with no
                // predecessors so later statements don't leak edges.
                self.new_block()
            }
            Node::Closure { body } => self.seq(cur, body),
            Node::Block(body) => self.seq(cur, body),
        }
    }
}

/// One must-consume violation: a tracked definition with a path to scope
/// exit on which it is never used.
#[derive(Debug, Clone)]
pub struct Leak {
    /// The bound variable name.
    pub name: String,
    /// 1-based line of the definition.
    pub line: usize,
    /// 1-based column of the definition.
    pub col: usize,
    /// Classifier description of the tracked value.
    pub desc: String,
}

/// Finds tracked definitions that are not used on every path from their
/// definition to the normal exit. Paths through the error exit (`?`
/// propagation) are treated as consuming.
pub fn unconsumed_defs(cfg: &Cfg) -> Vec<Leak> {
    let mut leaks = Vec::new();
    for (bid, block) in cfg.blocks.iter().enumerate() {
        for (pos, ev) in block.evs.iter().enumerate() {
            if let Ev::Def { name, line, col, desc } = ev {
                if !consumed_on_all_paths(cfg, bid, pos, name) {
                    leaks.push(Leak {
                        name: name.clone(),
                        line: *line,
                        col: *col,
                        desc: desc.clone(),
                    });
                }
            }
        }
    }
    leaks.sort_by_key(|l| (l.line, l.col));
    leaks
}

/// Greatest-fixpoint backward dataflow: `ok[b]` = every path from the start
/// of block `b` to the exit uses `name`. The definition site checks the
/// remainder of its own block first.
fn consumed_on_all_paths(cfg: &Cfg, def_block: usize, def_pos: usize, name: &str) -> bool {
    let uses_after = |b: usize, from: usize| {
        cfg.blocks[b].evs[from..]
            .iter()
            .any(|e| matches!(e, Ev::Use(n) if n == name))
    };
    let n = cfg.blocks.len();
    // ok[b]: from the *start* of b, every path to exit consumes the value.
    let mut ok = vec![true; n];
    ok[cfg.exit] = false;
    ok[cfg.err_exit] = true; // `?` propagated: value was dropped legitimately
    // Iterate to the greatest fixpoint (monotone decreasing).
    loop {
        let mut changed = false;
        for b in 0..n {
            if b == cfg.exit || b == cfg.err_exit {
                continue;
            }
            let cur = if uses_after(b, 0) {
                true
            } else if cfg.blocks[b].succ.is_empty() {
                // Dangling block (unreachable continuation): vacuously fine.
                true
            } else {
                cfg.blocks[b].succ.iter().all(|&s| ok[s])
            };
            if cur != ok[b] {
                ok[b] = cur;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // From the definition site: rest of the def block, else all successors.
    if uses_after(def_block, def_pos + 1) {
        return true;
    }
    if cfg.blocks[def_block].succ.is_empty() {
        return true;
    }
    cfg.blocks[def_block].succ.iter().all(|&s| ok[s])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scope::SourceFile;
    use std::path::PathBuf;

    fn leaks_of(src: &str) -> Vec<String> {
        let sf = SourceFile::parse(&PathBuf::from("crates/comm/src/demo.rs"), src);
        let ast = parse_file(&sf);
        let classify: crate::cfg::Classify = &|l: &LetNode| {
            let tracked = l.init.iter().any(|n| {
                matches!(n, Node::Call(c) if c.name.starts_with("try_"))
            });
            if tracked {
                Some("pending result".to_string())
            } else {
                None
            }
        };
        let cfg = build(&ast.fns[0].body, classify);
        unconsumed_defs(&cfg).into_iter().map(|l| l.name).collect()
    }

    #[test]
    fn straight_line_consume_is_clean() {
        assert!(leaks_of(
            "fn f(c: &C) {\n    let h = c.try_barrier();\n    h.unwrap();\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn never_consumed_leaks() {
        assert_eq!(
            leaks_of("fn f(c: &C) {\n    let h = c.try_barrier();\n    other();\n}\n"),
            vec!["h"]
        );
    }

    #[test]
    fn one_armed_consume_leaks() {
        let src = "fn f(c: &C, flag: bool) {\n\
                let h = c.try_barrier();\n\
                if flag {\n\
                    h.unwrap();\n\
                }\n\
             }\n";
        assert_eq!(leaks_of(src), vec!["h"]);
    }

    #[test]
    fn both_arms_consume_is_clean() {
        let src = "fn f(c: &C, flag: bool) {\n\
                let h = c.try_barrier();\n\
                if flag {\n\
                    h.unwrap();\n\
                } else {\n\
                    drop(h);\n\
                }\n\
             }\n";
        assert!(leaks_of(src).is_empty());
    }

    #[test]
    fn early_return_path_leaks() {
        let src = "fn f(c: &C, flag: bool) {\n\
                let h = c.try_barrier();\n\
                if flag {\n\
                    return;\n\
                }\n\
                h.unwrap();\n\
             }\n";
        assert_eq!(leaks_of(src), vec!["h"]);
    }

    #[test]
    fn question_mark_path_counts_as_consumed() {
        let src = "fn f(c: &C) -> Result<(), E> {\n\
                let h = c.try_barrier();\n\
                probe(c)?;\n\
                h?;\n\
                Ok(())\n\
             }\n";
        assert!(leaks_of(src).is_empty());
    }

    #[test]
    fn consume_inside_loop_counts() {
        // Conservative: a use inside a loop body counts as consuming even
        // though the loop may run zero times — acceptable noise floor.
        let src = "fn f(c: &C, xs: &[u32]) {\n\
                let h = c.try_barrier();\n\
                let mut sink = Vec::new();\n\
                sink.push(h);\n\
                for x in xs {\n\
                    use_it(x);\n\
                }\n\
             }\n";
        assert!(leaks_of(src).is_empty());
    }
}
