//! The analysis driver: workspace walk, suppression handling, baseline
//! application, and report rendering (human and JSON).

use crate::baseline::Baseline;
use crate::lint::{parse_allow, Diagnostic, Lint};
use crate::lints;
use crate::scope::SourceFile;
use diffreg_telemetry::json::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "figures", "fixtures"];

/// Recursively collects the workspace's `.rs` files, repo-relative, sorted.
/// `fixtures/` directories are excluded — they hold deliberate violations
/// for the analyzer's own tests.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// The outcome of analyzing one file: surviving findings plus the set of
/// allow comments that were actually used.
pub struct FileReport {
    /// Findings that were not suppressed by a `diffreg-allow` comment.
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed at their site (kept for accounting).
    pub suppressed: Vec<Diagnostic>,
}

/// Runs every lint on `file`, applies `diffreg-allow` suppressions, and
/// reports stale/malformed allows as [`Lint::UnusedAllow`] findings.
pub fn analyze_file(file: &SourceFile) -> FileReport {
    let raw = lints::run_all(file);

    // Collect allow comments, per line. Doc comments (`///`, `//!`, `/**`,
    // `/*!`) are documentation, not suppressions — prose that *mentions*
    // the allow syntax must not accidentally suppress anything.
    let mut allows: Vec<(crate::lint::Allow, bool)> = Vec::new(); // (allow, used)
    for t in &file.tokens {
        if t.is_code() {
            continue;
        }
        let is_doc = ["///", "//!", "/**", "/*!"].iter().any(|p| t.text.starts_with(p));
        if is_doc {
            continue;
        }
        if let Some(a) = parse_allow(&t.text, t.line, t.col) {
            allows.push((a, false));
        }
    }

    // Which source lines consist only of comments/whitespace? Allow comments
    // stack: each one applies to the first code line below the comment block.
    let comment_only: Vec<bool> = file
        .lines
        .iter()
        .enumerate()
        .map(|(idx, l)| {
            let trimmed = l.trim();
            trimmed.is_empty()
                || trimmed.starts_with("//")
                || file
                    .tokens
                    .iter()
                    .filter(|t| t.line == idx + 1)
                    .all(|t| !t.is_code())
        })
        .collect();

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for d in raw {
        let mut hit = false;
        for (a, used) in allows.iter_mut() {
            if a.lint != Some(d.lint) || a.reason.is_empty() {
                continue;
            }
            let applies = if a.line == d.line {
                true // trailing comment on the offending line
            } else if a.line < d.line {
                // Stacked block of comment-only lines directly above.
                (a.line..d.line.saturating_sub(1))
                    .all(|l| comment_only.get(l).copied().unwrap_or(false))
                    && a.line < d.line
            } else {
                false
            };
            if applies {
                hit = true;
                *used = true;
                break;
            }
        }
        if hit {
            suppressed.push(d);
        } else {
            findings.push(d);
        }
    }

    // Stale / malformed allows are findings themselves.
    for (a, used) in &allows {
        if *used {
            continue;
        }
        let msg = if a.lint.is_none() {
            format!("diffreg-allow names unknown lint `{}`", a.name)
        } else if a.reason.is_empty() {
            format!("diffreg-allow({}) has no reason — write `: <why>` after it", a.name)
        } else {
            format!("diffreg-allow({}) suppresses nothing here (stale — remove it)", a.name)
        };
        findings.push(Diagnostic {
            lint: Lint::UnusedAllow,
            path: file.path.clone(),
            line: a.line,
            col: a.col,
            message: msg,
            snippet: file.snippet(a.line),
        });
    }
    findings.sort_by_key(|d| (d.line, d.col, d.lint));
    FileReport { findings, suppressed }
}

/// The aggregate result of a `check` run over the workspace.
pub struct CheckReport {
    /// Findings not covered by the baseline — these fail the gate.
    pub new_findings: Vec<Diagnostic>,
    /// Findings covered by the baseline (grandfathered).
    pub baselined: Vec<Diagnostic>,
    /// Per-site suppressed findings (accounting only).
    pub suppressed: usize,
    /// Baseline entries that matched nothing (should be pruned).
    pub stale_baseline: Vec<String>,
    /// Number of files analyzed.
    pub files: usize,
}

impl CheckReport {
    /// True when the gate passes (no new findings).
    pub fn ok(&self) -> bool {
        self.new_findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.new_findings {
            out.push_str(&d.render());
            out.push('\n');
            if !d.snippet.is_empty() {
                out.push_str(&format!("    | {}\n", d.snippet));
            }
        }
        if !self.stale_baseline.is_empty() {
            out.push_str("\nstale baseline entries (run `fix-baseline` to prune):\n");
            for s in &self.stale_baseline {
                out.push_str(&format!("  {s}\n"));
            }
        }
        out.push_str(&format!(
            "\nanalyzer: {} file(s), {} new finding(s), {} baselined, {} suppressed\n",
            self.files,
            self.new_findings.len(),
            self.baselined.len(),
            self.suppressed
        ));
        out
    }

    /// Renders the machine-readable JSON report (telemetry `Json` schema).
    pub fn render_json(&self) -> String {
        fn diag_json(d: &Diagnostic) -> Json {
            Json::obj()
                .set("lint", d.lint.name())
                .set("path", d.path.as_str())
                .set("line", d.line as f64)
                .set("col", d.col as f64)
                .set("message", d.message.as_str())
                .set("snippet", d.snippet.as_str())
        }
        let j = Json::obj()
            .set("schema", "diffreg-analyzer-v1")
            .set("files", self.files as f64)
            .set("ok", self.ok())
            .set("suppressed", self.suppressed as f64)
            .set(
                "new_findings",
                Json::Arr(self.new_findings.iter().map(diag_json).collect()),
            )
            .set("baselined", Json::Arr(self.baselined.iter().map(diag_json).collect()))
            .set(
                "stale_baseline",
                Json::Arr(self.stale_baseline.iter().map(|s| Json::from(s.as_str())).collect()),
            );
        j.to_string()
    }
}

/// Runs the full check over `root`, applying `baseline`.
pub fn check(root: &Path, mut baseline: Baseline) -> std::io::Result<CheckReport> {
    let files = workspace_files(root)?;
    let mut new_findings = Vec::new();
    let mut baselined = Vec::new();
    let mut suppressed = 0usize;
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let sf = SourceFile::parse(rel, &text);
        let rep = analyze_file(&sf);
        suppressed += rep.suppressed.len();
        for d in rep.findings {
            if baseline.matches(&d) {
                baselined.push(d);
            } else {
                new_findings.push(d);
            }
        }
    }
    Ok(CheckReport {
        new_findings,
        baselined,
        suppressed,
        stale_baseline: baseline.stale(),
        files: files.len(),
    })
}

/// Computes the diagnostics that would form a fresh baseline for `root`
/// (all unsuppressed findings except [`Lint::UnusedAllow`], which must
/// always be fixed at the site).
pub fn baseline_candidates(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = workspace_files(root)?;
    let mut out = Vec::new();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let sf = SourceFile::parse(rel, &text);
        out.extend(
            analyze_file(&sf).findings.into_iter().filter(|d| d.lint != Lint::UnusedAllow),
        );
    }
    Ok(out)
}

/// Sanity helper for tests: the distinct lints that fired in a report.
pub fn lints_fired(diags: &[Diagnostic]) -> BTreeSet<Lint> {
    diags.iter().map(|d| d.lint).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn analyze(src: &str) -> FileReport {
        let sf = SourceFile::parse(&PathBuf::from("crates/comm/src/demo.rs"), src);
        analyze_file(&sf)
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let rep = analyze(
            "fn f(c: &C) {\n\
             // diffreg-allow(collective-in-rank-branch): both branches call it symmetrically\n\
             if rank == 0 { c.barrier(); }\n\
             }\n",
        );
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.suppressed.len(), 1);
    }

    #[test]
    fn trailing_allow_suppresses_and_stacked_allows_work() {
        let rep = analyze(
            "fn f(c: &C) {\n\
             // diffreg-allow(no-unwrap-in-lib): lock poisoning is fatal by design\n\
             // diffreg-allow(collective-in-rank-branch): demo of stacking\n\
             if rank == 0 { c.barrier(); m.lock().unwrap(); }\n\
             }\n",
        );
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.suppressed.len(), 2);
    }

    #[test]
    fn allow_without_reason_is_rejected_and_reported() {
        let rep = analyze(
            "fn f(c: &C) {\n\
             // diffreg-allow(collective-in-rank-branch)\n\
             if rank == 0 { c.barrier(); }\n\
             }\n",
        );
        // The original finding survives AND the malformed allow is flagged.
        assert_eq!(rep.findings.len(), 2, "{:?}", rep.findings);
        assert!(rep.findings.iter().any(|d| d.lint == Lint::CollectiveInRankBranch));
        assert!(rep
            .findings
            .iter()
            .any(|d| d.lint == Lint::UnusedAllow && d.message.contains("no reason")));
    }

    #[test]
    fn stale_allow_is_reported() {
        let rep = analyze("// diffreg-allow(float-eq): nothing here anymore\nfn g() {}\n");
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].lint, Lint::UnusedAllow);
        assert!(rep.findings[0].message.contains("stale"));
    }

    #[test]
    fn doc_comments_mentioning_allow_syntax_are_not_suppressions() {
        let rep = analyze(
            "/// Suppress with `// diffreg-allow(float-eq): why` above the line.\n\
             pub fn documented() {}\n",
        );
        // No stale-allow finding for the prose mention (and the doc comment
        // still counts as documentation for the pub fn).
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert!(rep.suppressed.is_empty());
    }

    #[test]
    fn unknown_lint_name_is_reported() {
        let rep = analyze("// diffreg-allow(not-a-lint): whatever\nfn g() {}\n");
        assert_eq!(rep.findings.len(), 1);
        assert!(rep.findings[0].message.contains("unknown lint"));
    }

    #[test]
    fn json_report_parses_back() {
        let rep = CheckReport {
            new_findings: vec![Diagnostic {
                lint: Lint::FloatEq,
                path: "a.rs".into(),
                line: 3,
                col: 9,
                message: "m".into(),
                snippet: "x == 0.0".into(),
            }],
            baselined: vec![],
            suppressed: 2,
            stale_baseline: vec![],
            files: 1,
        };
        let j = Json::parse(&rep.render_json()).expect("valid json");
        assert_eq!(j.get("schema").and_then(|s| s.as_str()), Some("diffreg-analyzer-v1"));
        let arr = j.get("new_findings").and_then(|a| a.as_arr()).expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("lint").and_then(|s| s.as_str()), Some("float-eq"));
    }
}
