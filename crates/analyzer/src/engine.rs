//! The analysis driver: workspace walk, parallel parse/analyze phases,
//! suppression handling, baseline application, and report rendering (human
//! and JSON v2).
//!
//! A `check` run has three phases:
//!
//! 1. **parse** (parallel) — every workspace file is read, lexed, and
//!    parsed to a [`FileAst`];
//! 2. **link** (serial) — one [`CallGraph`] is built over all ASTs, which
//!    also runs the interprocedural analyses (collective-consistency
//!    resolution, hot-set BFS);
//! 3. **analyze** (parallel) — per-file syntactic + dataflow lints run
//!    against the shared graph, allows are applied, findings enriched with
//!    their enclosing function and structural hash.
//!
//! Results are merged in sorted-path order and matched against the baseline
//! serially, so the report is byte-deterministic regardless of thread
//! count.

use crate::baseline::{fnv1a, Baseline};
use crate::callgraph::CallGraph;
use crate::dataflow;
use crate::lint::{parse_allow, Diagnostic, Lint, ALL_LINTS};
use crate::lints;
use crate::parse::{parse_file, FileAst};
use crate::scope::SourceFile;
use diffreg_telemetry::json::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "figures", "fixtures"];

/// Recursively collects the workspace's `.rs` files, repo-relative, sorted.
/// `fixtures/` directories are excluded — they hold deliberate violations
/// for the analyzer's own tests.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// A file after phase 1: source model plus AST.
pub struct ParsedFile {
    /// Lexed/classified source.
    pub sf: SourceFile,
    /// Per-function ASTs.
    pub ast: FileAst,
}

/// The outcome of analyzing one file: surviving findings plus the set of
/// allow comments that were actually used.
pub struct FileReport {
    /// Findings that were not suppressed by a `diffreg-allow` comment.
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed at their site (kept for accounting).
    pub suppressed: Vec<Diagnostic>,
}

/// Runs every lint on `file` standalone: the AST is parsed and a
/// single-file call graph built internally. Used by the fixture harness and
/// one-off callers; the workspace path goes through [`check`] so the graph
/// spans all files.
pub fn analyze_file(file: &SourceFile) -> FileReport {
    let ast = parse_file(file);
    let files = vec![(file.path.clone(), file.class.crate_name.clone(), &ast)];
    let graph = CallGraph::build(&files);
    analyze_parsed(file, &ast, &graph)
}

/// Runs every lint on a parsed file against a prepared (possibly
/// workspace-wide) call graph, applies `diffreg-allow` suppressions, and
/// reports stale/malformed allows as [`Lint::UnusedAllow`] findings.
pub fn analyze_parsed(file: &SourceFile, ast: &FileAst, graph: &CallGraph) -> FileReport {
    let mut raw = lints::run_all(file);
    dataflow::run_dataflow(file, ast, graph, &mut raw);
    for d in &mut raw {
        enrich(d, file, ast);
    }
    raw.sort_by_key(|d| (d.line, d.col, d.lint));

    // Collect allow comments, per line. Doc comments (`///`, `//!`, `/**`,
    // `/*!`) are documentation, not suppressions — prose that *mentions*
    // the allow syntax must not accidentally suppress anything.
    let mut allows: Vec<(crate::lint::Allow, bool)> = Vec::new(); // (allow, used)
    for t in &file.tokens {
        if t.is_code() {
            continue;
        }
        let is_doc = ["///", "//!", "/**", "/*!"].iter().any(|p| t.text.starts_with(p));
        if is_doc {
            continue;
        }
        if let Some(a) = parse_allow(&t.text, t.line, t.col) {
            allows.push((a, false));
        }
    }

    // Which source lines consist only of comments/whitespace? Allow comments
    // stack: each one applies to the first code line below the comment block.
    let comment_only: Vec<bool> = file
        .lines
        .iter()
        .enumerate()
        .map(|(idx, l)| {
            let trimmed = l.trim();
            trimmed.is_empty()
                || trimmed.starts_with("//")
                || file
                    .tokens
                    .iter()
                    .filter(|t| t.line == idx + 1)
                    .all(|t| !t.is_code())
        })
        .collect();

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for d in raw {
        let mut hit = false;
        for (a, used) in allows.iter_mut() {
            if a.lint != Some(d.lint) || a.reason.is_empty() {
                continue;
            }
            let applies = if a.line == d.line {
                true // trailing comment on the offending line
            } else if a.line < d.line {
                // Stacked block of comment-only lines directly above.
                (a.line..d.line.saturating_sub(1))
                    .all(|l| comment_only.get(l).copied().unwrap_or(false))
                    && a.line < d.line
            } else {
                false
            };
            if applies {
                hit = true;
                *used = true;
                break;
            }
        }
        if hit {
            suppressed.push(d);
        } else {
            findings.push(d);
        }
    }

    // Stale / malformed allows are findings themselves.
    for (a, used) in &allows {
        if *used {
            continue;
        }
        let msg = if a.lint.is_none() {
            format!("diffreg-allow names unknown lint `{}`", a.name)
        } else if a.reason.is_empty() {
            format!("diffreg-allow({}) has no reason — write `: <why>` after it", a.name)
        } else {
            format!("diffreg-allow({}) suppresses nothing here (stale — remove it)", a.name)
        };
        let mut d = Diagnostic {
            lint: Lint::UnusedAllow,
            path: file.path.clone(),
            line: a.line,
            col: a.col,
            message: msg,
            snippet: file.snippet(a.line),
            func: String::new(),
            shash: 0,
        };
        enrich(&mut d, file, ast);
        findings.push(d);
    }
    findings.sort_by_key(|d| (d.line, d.col, d.lint));
    FileReport { findings, suppressed }
}

/// Fills a diagnostic's v2 baseline key: enclosing function name and the
/// FNV-1a structural hash over (lint, fn, code tokens of the line).
fn enrich(d: &mut Diagnostic, file: &SourceFile, ast: &FileAst) {
    d.func = ast.enclosing_fn(d.line).map(|f| f.name.clone()).unwrap_or_default();
    let mut parts: Vec<&str> = vec![d.lint.name(), &d.func];
    for &ti in &file.code {
        let t = &file.tokens[ti];
        if t.line == d.line {
            parts.push(&t.text);
        }
    }
    d.shash = fnv1a(&parts);
}

/// The aggregate result of a `check` run over the workspace.
pub struct CheckReport {
    /// Findings not covered by the baseline — these fail the gate.
    pub new_findings: Vec<Diagnostic>,
    /// Findings covered by the baseline (grandfathered).
    pub baselined: Vec<Diagnostic>,
    /// Per-site suppressed findings (accounting only).
    pub suppressed: Vec<Diagnostic>,
    /// Baseline entries that matched nothing (should be pruned).
    pub stale_baseline: Vec<String>,
    /// Number of files analyzed.
    pub files: usize,
}

impl CheckReport {
    /// True when the gate passes (no new findings).
    pub fn ok(&self) -> bool {
        self.new_findings.is_empty()
    }

    /// Per-lint counts as (new, baselined, suppressed), every registered
    /// lint present (zero-filled).
    pub fn counts(&self) -> BTreeMap<&'static str, (usize, usize, usize)> {
        let mut m: BTreeMap<&'static str, (usize, usize, usize)> =
            ALL_LINTS.iter().map(|l| (l.name(), (0, 0, 0))).collect();
        for d in &self.new_findings {
            m.entry(d.lint.name()).or_default().0 += 1;
        }
        for d in &self.baselined {
            m.entry(d.lint.name()).or_default().1 += 1;
        }
        for d in &self.suppressed {
            m.entry(d.lint.name()).or_default().2 += 1;
        }
        m
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.new_findings {
            out.push_str(&d.render());
            out.push('\n');
            if !d.snippet.is_empty() {
                out.push_str(&format!("    | {}\n", d.snippet));
            }
        }
        if !self.stale_baseline.is_empty() {
            out.push_str("\nstale baseline entries (run `fix-baseline` to prune):\n");
            for s in &self.stale_baseline {
                out.push_str(&format!("  {s}\n"));
            }
        }
        out.push_str(&format!(
            "\nanalyzer: {} file(s), {} new finding(s), {} baselined, {} suppressed\n",
            self.files,
            self.new_findings.len(),
            self.baselined.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Renders the machine-readable JSON report, schema
    /// `diffreg-analyzer-v2`: adds per-lint `counts` (zero-filled for every
    /// registered lint, so CI can assert on absent lints too) and the v2
    /// baseline key fields (`func`, `hash`) on each finding.
    pub fn render_json(&self) -> String {
        fn diag_json(d: &Diagnostic) -> Json {
            Json::obj()
                .set("lint", d.lint.name())
                .set("path", d.path.as_str())
                .set("line", d.line as f64)
                .set("col", d.col as f64)
                .set("func", d.func.as_str())
                .set("hash", format!("{:016x}", d.shash).as_str())
                .set("message", d.message.as_str())
                .set("snippet", d.snippet.as_str())
        }
        let mut counts = Json::obj();
        for (name, (new, base, supp)) in self.counts() {
            counts = counts.set(
                name,
                Json::obj()
                    .set("new", new as f64)
                    .set("baselined", base as f64)
                    .set("suppressed", supp as f64),
            );
        }
        let j = Json::obj()
            .set("schema", "diffreg-analyzer-v2")
            .set("files", self.files as f64)
            .set("ok", self.ok())
            .set("suppressed", self.suppressed.len() as f64)
            .set("counts", counts)
            .set(
                "new_findings",
                Json::Arr(self.new_findings.iter().map(diag_json).collect()),
            )
            .set("baselined", Json::Arr(self.baselined.iter().map(diag_json).collect()))
            .set(
                "stale_baseline",
                Json::Arr(self.stale_baseline.iter().map(|s| Json::from(s.as_str())).collect()),
            );
        j.to_string()
    }
}

/// How many analysis threads to use. `jobs = 0` picks
/// `min(available_parallelism, 8)`.
fn thread_count(jobs: usize, items: usize) -> usize {
    let n = if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    };
    n.clamp(1, items.max(1))
}

/// Applies `f` to every index in parallel, preserving index order in the
/// result. Results are deterministic regardless of thread count.
fn parallel_map<T, F>(items: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread_count(jobs, items);
    if threads <= 1 || items <= 1 {
        return (0..items).map(f).collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..items).map(|_| None).collect());
    std::thread::scope(|s| {
        for t in 0..threads {
            let f = &f;
            let slots = &slots;
            s.spawn(move || {
                let mut mine: Vec<(usize, T)> = Vec::new();
                let mut i = t;
                while i < items {
                    mine.push((i, f(i)));
                    i += threads;
                }
                let mut guard = slots.lock().unwrap_or_else(|e| e.into_inner());
                for (i, v) in mine {
                    guard[i] = Some(v);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|o| o.expect("every index produced"))
        .collect()
}

/// Phase 1+2: reads and parses the given files (parallel), then links the
/// workspace call graph (serial).
pub fn parse_workspace(
    root: &Path,
    files: &[PathBuf],
    jobs: usize,
) -> std::io::Result<(Vec<ParsedFile>, CallGraph)> {
    let results: Vec<std::io::Result<ParsedFile>> = parallel_map(files.len(), jobs, |i| {
        let rel = &files[i];
        let text = std::fs::read_to_string(root.join(rel))?;
        let sf = SourceFile::parse(rel, &text);
        let ast = parse_file(&sf);
        Ok(ParsedFile { sf, ast })
    });
    let mut parsed = Vec::with_capacity(results.len());
    for r in results {
        parsed.push(r?);
    }
    let refs: Vec<(String, Option<String>, &FileAst)> = parsed
        .iter()
        .map(|p| (p.sf.path.clone(), p.sf.class.crate_name.clone(), &p.ast))
        .collect();
    let graph = CallGraph::build(&refs);
    Ok((parsed, graph))
}

/// Runs the full check over `root`, applying `baseline`. `paths` (when
/// non-empty) restricts *analysis* to files under the given repo-relative
/// prefixes — the call graph still spans the whole workspace so
/// interprocedural facts stay correct. `jobs = 0` = auto.
pub fn check_with(
    root: &Path,
    mut baseline: Baseline,
    paths: &[String],
    jobs: usize,
) -> std::io::Result<CheckReport> {
    let files = workspace_files(root)?;
    let (parsed, graph) = parse_workspace(root, &files, jobs)?;
    let selected: Vec<usize> = (0..parsed.len())
        .filter(|&i| {
            paths.is_empty() || paths.iter().any(|p| parsed[i].sf.path.starts_with(p.as_str()))
        })
        .collect();
    let reports: Vec<FileReport> = parallel_map(selected.len(), jobs, |k| {
        let p = &parsed[selected[k]];
        analyze_parsed(&p.sf, &p.ast, &graph)
    });
    let mut new_findings = Vec::new();
    let mut baselined = Vec::new();
    let mut suppressed = Vec::new();
    for rep in reports {
        suppressed.extend(rep.suppressed);
        for d in rep.findings {
            if baseline.matches(&d) {
                baselined.push(d);
            } else {
                new_findings.push(d);
            }
        }
    }
    Ok(CheckReport {
        new_findings,
        baselined,
        suppressed,
        stale_baseline: baseline.stale(),
        files: selected.len(),
    })
}

/// Runs the full check over `root`, applying `baseline` (all files, auto
/// thread count).
pub fn check(root: &Path, baseline: Baseline) -> std::io::Result<CheckReport> {
    check_with(root, baseline, &[], 0)
}

/// Computes the diagnostics that would form a fresh baseline for `root`
/// (all unsuppressed findings except [`Lint::UnusedAllow`], which must
/// always be fixed at the site).
pub fn baseline_candidates(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = workspace_files(root)?;
    let (parsed, graph) = parse_workspace(root, &files, 0)?;
    let mut out = Vec::new();
    for p in &parsed {
        out.extend(
            analyze_parsed(&p.sf, &p.ast, &graph)
                .findings
                .into_iter()
                .filter(|d| d.lint != Lint::UnusedAllow),
        );
    }
    Ok(out)
}

/// Sanity helper for tests: the distinct lints that fired in a report.
pub fn lints_fired(diags: &[Diagnostic]) -> BTreeSet<Lint> {
    diags.iter().map(|d| d.lint).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn analyze(src: &str) -> FileReport {
        let sf = SourceFile::parse(&PathBuf::from("crates/comm/src/demo.rs"), src);
        analyze_file(&sf)
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let rep = analyze(
            "fn f(c: &C) {\n\
             // diffreg-allow(collective-consistency): the divergence is this test's point\n\
             if rank == 0 { c.barrier(); }\n\
             }\n",
        );
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.suppressed.len(), 1);
    }

    #[test]
    fn trailing_allow_suppresses_and_stacked_allows_work() {
        let rep = analyze(
            "fn f(c: &C) {\n\
             // diffreg-allow(no-unwrap-in-lib): lock poisoning is fatal by design\n\
             // diffreg-allow(collective-consistency): demo of stacking\n\
             if rank == 0 { c.barrier(); m.lock().unwrap(); }\n\
             }\n",
        );
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.suppressed.len(), 2);
    }

    #[test]
    fn allow_without_reason_is_rejected_and_reported() {
        let rep = analyze(
            "fn f(c: &C) {\n\
             // diffreg-allow(collective-consistency)\n\
             if rank == 0 { c.barrier(); }\n\
             }\n",
        );
        // The original finding survives AND the malformed allow is flagged.
        assert_eq!(rep.findings.len(), 2, "{:?}", rep.findings);
        assert!(rep.findings.iter().any(|d| d.lint == Lint::CollectiveConsistency));
        assert!(rep
            .findings
            .iter()
            .any(|d| d.lint == Lint::UnusedAllow && d.message.contains("no reason")));
    }

    #[test]
    fn stale_allow_is_reported() {
        let rep = analyze("// diffreg-allow(float-eq): nothing here anymore\nfn g() {}\n");
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].lint, Lint::UnusedAllow);
        assert!(rep.findings[0].message.contains("stale"));
    }

    #[test]
    fn doc_comments_mentioning_allow_syntax_are_not_suppressions() {
        let rep = analyze(
            "/// Suppress with `// diffreg-allow(float-eq): why` above the line.\n\
             pub fn documented() {}\n",
        );
        // No stale-allow finding for the prose mention (and the doc comment
        // still counts as documentation for the pub fn).
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert!(rep.suppressed.is_empty());
    }

    #[test]
    fn unknown_lint_name_is_reported() {
        let rep = analyze("// diffreg-allow(not-a-lint): whatever\nfn g() {}\n");
        assert_eq!(rep.findings.len(), 1);
        assert!(rep.findings[0].message.contains("unknown lint"));
    }

    #[test]
    fn findings_carry_enclosing_fn_and_structural_hash() {
        let rep = analyze(
            "fn solve(c: &C) {\n\
                let x = m.lock().unwrap();\n\
             }\n",
        );
        let d = rep
            .findings
            .iter()
            .find(|d| d.lint == Lint::NoUnwrapInLib)
            .expect("unwrap finding");
        assert_eq!(d.func, "solve");
        assert_ne!(d.shash, 0);
        // Same code in a different fn hashes differently (fn is in the key).
        let rep2 = analyze(
            "fn other_name(c: &C) {\n\
                let x = m.lock().unwrap();\n\
             }\n",
        );
        let d2 = rep2
            .findings
            .iter()
            .find(|d| d.lint == Lint::NoUnwrapInLib)
            .expect("unwrap finding");
        assert_ne!(d.shash, d2.shash);
    }

    #[test]
    fn json_report_parses_back_with_v2_counts() {
        let rep = CheckReport {
            new_findings: vec![Diagnostic {
                lint: Lint::FloatEq,
                path: "a.rs".into(),
                line: 3,
                col: 9,
                message: "m".into(),
                snippet: "x == 0.0".into(),
                func: "f".into(),
                shash: 0x1234,
            }],
            baselined: vec![],
            suppressed: vec![],
            stale_baseline: vec![],
            files: 1,
        };
        let j = Json::parse(&rep.render_json()).expect("valid json");
        assert_eq!(j.get("schema").and_then(|s| s.as_str()), Some("diffreg-analyzer-v2"));
        let arr = j.get("new_findings").and_then(|a| a.as_arr()).expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("lint").and_then(|s| s.as_str()), Some("float-eq"));
        assert_eq!(arr[0].get("func").and_then(|s| s.as_str()), Some("f"));
        assert_eq!(arr[0].get("hash").and_then(|s| s.as_str()), Some("0000000000001234"));
        let counts = j.get("counts").expect("counts object");
        let fe = counts.get("float-eq").expect("float-eq entry");
        assert_eq!(fe.get("new").and_then(|v| v.as_f64()), Some(1.0));
        // Every registered lint appears, zero-filled.
        for l in ALL_LINTS {
            assert!(counts.get(l.name()).is_some(), "missing counts for {}", l.name());
        }
    }

    #[test]
    fn parallel_map_is_order_preserving() {
        let v = parallel_map(100, 4, |i| i * 3);
        assert_eq!(v, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        let v1 = parallel_map(7, 1, |i| i + 1);
        assert_eq!(v1, (0..7).map(|i| i + 1).collect::<Vec<_>>());
    }
}
