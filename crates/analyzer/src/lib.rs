//! `diffreg-analyzer` — in-tree static analysis and schedule exploration.
//!
//! Two halves, one goal: turn the invariants the runtime chaos/telemetry
//! layers only check *dynamically* into checks that run on every CI pass
//! without ever executing the solver.
//!
//! * **Lint engine** ([`lexer`], [`lint`], [`lints`], [`scope`],
//!   [`baseline`], [`engine`]) — a small hand-rolled Rust lexer feeds a
//!   registry of workspace-specific lints (collectives inside rank
//!   branches, `unwrap` in library code, float `==`, `debug_assert!` side
//!   effects, undocumented `unsafe`, missing docs on public functions,
//!   missing `#![forbid(unsafe_code)]`). Findings are suppressible per
//!   site with `// diffreg-allow(<lint>): <reason>` and grandfatherable
//!   via a content-addressed baseline file, so the gate is hard from day
//!   one.
//! * **Schedule explorer** ([`sched`]) — a loom-lite bounded-preemption
//!   DFS over the yield points of a cooperative re-implementation of the
//!   [`diffreg_comm::Comm`] trait, catching schedule-dependent deadlocks
//!   and result divergence that stress tests only hit probabilistically.
//!
//! The binary (`cargo run -p diffreg-analyzer -- check`) is wired into
//! `scripts/ci.sh` as a hard gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod lint;
pub mod lints;
pub mod sched;
pub mod scope;
