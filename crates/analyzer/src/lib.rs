//! `diffreg-analyzer` — in-tree static analysis and schedule exploration.
//!
//! Two halves, one goal: turn the invariants the runtime chaos/telemetry
//! layers only check *dynamically* into checks that run on every CI pass
//! without ever executing the solver.
//!
//! * **Analysis engine** ([`lexer`], [`scope`], [`parse`], [`cfg`],
//!   [`callgraph`], [`dataflow`], [`lint`], [`lints`], [`baseline`],
//!   [`engine`]) — a hand-rolled pipeline: lexer → per-function ASTs →
//!   control-flow graphs → workspace call graph → dataflow lints. The
//!   syntactic lints ([`lints`]) catch local hazards (`unwrap` in library
//!   code, float `==`, `debug_assert!` side effects, undocumented
//!   `unsafe`, missing docs, missing `#![forbid(unsafe_code)]`); the
//!   dataflow lints ([`dataflow`]) prove flow-sensitive, interprocedural
//!   properties — collective-sequence consistency across rank-dependent
//!   branches, must-consume handle lifecycles, allocation-free hot paths,
//!   and swallowed `CommError`s. Findings are suppressible per site with
//!   `// diffreg-allow(<lint>): <reason>` and grandfatherable via a
//!   structurally-hashed v2 baseline file, so the gate is hard from day
//!   one.
//! * **Schedule explorer** ([`sched`]) — a loom-lite bounded-preemption
//!   DFS over the yield points of a cooperative re-implementation of the
//!   [`diffreg_comm::Comm`] trait, catching schedule-dependent deadlocks
//!   and result divergence that stress tests only hit probabilistically.
//!
//! The binary (`cargo run -p diffreg-analyzer -- check`) is wired into
//! `scripts/ci.sh` as a hard gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod engine;
pub mod lexer;
pub mod lint;
pub mod lints;
pub mod parse;
pub mod sched;
pub mod scope;
