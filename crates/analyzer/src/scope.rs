//! Source-file model and lightweight structural analysis.
//!
//! [`SourceFile`] owns the text, the token stream, and two structural maps
//! the lints share:
//!
//! * **test regions** — which tokens live under `#[cfg(test)] mod` /
//!   `#[test] fn` items (per-token flag, brace-matched), so library lints
//!   can exempt test code without being fooled by formatting;
//! * **scope kinds** — for each token, whether the innermost enclosing
//!   brace scope is the file top, a `mod`, an `impl`/`trait`, a `fn` body,
//!   or an expression block (used by the pub-fn docs lint).

use crate::lexer::{lex, Token, TokenKind};
use std::path::Path;

/// What kind of item opened the innermost enclosing brace scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// Not inside any brace: file top level (module scope of the crate root).
    File,
    /// Inside a `mod name { ... }` item.
    Mod,
    /// Inside an `impl { ... }` or `trait { ... }` body.
    ImplOrTrait,
    /// Inside a `fn` body.
    Fn,
    /// Any other brace scope (expression block, match body, struct literal,
    /// macro braces, ...).
    Other,
}

/// Classification of a file from its path (drives lint applicability).
#[derive(Debug, Clone)]
pub struct FileClass {
    /// The crate the file belongs to (`comm`, `pfft`, ... or `diffreg` for
    /// the root crate), when it sits under a `src/` directory.
    pub crate_name: Option<String>,
    /// True for files under `tests/`, `benches/`, or `examples/`
    /// directories — entire file counts as test code.
    pub is_test_file: bool,
    /// True for library sources: under `src/` but not `src/bin/`.
    pub is_lib_src: bool,
    /// True for a crate-root `lib.rs`.
    pub is_crate_root: bool,
}

impl FileClass {
    /// Derives the class from a repo-relative path.
    pub fn from_path(path: &Path) -> FileClass {
        let rel: Vec<String> =
            path.iter().map(|c| c.to_string_lossy().into_owned()).collect();
        let has = |name: &str| rel.iter().any(|c| c == name);
        let is_test_file = has("tests") || has("benches") || has("examples");
        let in_src = has("src");
        let in_bin = has("bin");
        let crate_name = if rel.first().map(String::as_str) == Some("crates") {
            rel.get(1).cloned()
        } else if in_src {
            Some("diffreg".to_string())
        } else {
            None
        };
        let file_name = rel.last().cloned().unwrap_or_default();
        let is_crate_root = in_src && !in_bin && file_name == "lib.rs";
        FileClass {
            crate_name,
            is_test_file,
            is_lib_src: in_src && !in_bin && !is_test_file,
            is_crate_root,
        }
    }
}

/// A lexed source file plus the structural maps the lints consume.
pub struct SourceFile {
    /// Repo-relative path (slash-separated in diagnostics).
    pub path: String,
    /// Raw source lines (for snippets and baseline keys).
    pub lines: Vec<String>,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the code tokens (comments filtered).
    pub code: Vec<usize>,
    /// Per-`tokens` index: token is inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
    /// Per-`tokens` index: innermost enclosing scope kind.
    pub scope: Vec<ScopeKind>,
    /// Path-derived classification.
    pub class: FileClass,
}

impl SourceFile {
    /// Lexes and analyzes `text` as the file at repo-relative `path`.
    pub fn parse(path: &Path, text: &str) -> SourceFile {
        let tokens = lex(text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_code())
            .map(|(i, _)| i)
            .collect();
        let (in_test, scope) = structural_maps(&tokens, &code);
        SourceFile {
            path: path.to_string_lossy().replace('\\', "/"),
            lines: text.lines().map(str::to_string).collect(),
            tokens,
            code,
            in_test,
            scope,
            class: FileClass::from_path(path),
        }
    }

    /// The trimmed source text of 1-based line `line` (empty when out of
    /// range), used as the content-addressed baseline key.
    pub fn snippet(&self, line: usize) -> String {
        self.lines.get(line.wrapping_sub(1)).map(|l| l.trim().to_string()).unwrap_or_default()
    }

    /// True if the code token at `tokens` index `ti` is in test code —
    /// either structurally (`#[cfg(test)]` / `#[test]`) or because the whole
    /// file is a test/bench/example file.
    pub fn is_test_token(&self, ti: usize) -> bool {
        self.class.is_test_file || self.in_test.get(ti).copied().unwrap_or(false)
    }
}

/// Computes the per-token test-region flags and scope kinds in one walk
/// over the code tokens.
fn structural_maps(tokens: &[Token], code: &[usize]) -> (Vec<bool>, Vec<ScopeKind>) {
    let n = tokens.len();
    let mut in_test = vec![false; n];
    let mut scope = vec![ScopeKind::File; n];

    // Stack of (scope kind, test-ness) for each open `{`.
    let mut stack: Vec<(ScopeKind, bool)> = Vec::new();
    // Attribute-derived "next item is a test item" flag.
    let mut pending_test = false;
    // First item keyword seen since the last scope boundary, classifying the
    // next `{`.
    let mut item_kw: Option<ScopeKind> = None;

    let mut i = 0usize;
    while i < code.len() {
        let ti = code[i];
        let tok = &tokens[ti];
        let (cur_kind, cur_test) = stack.last().copied().unwrap_or((ScopeKind::File, false));
        in_test[ti] = cur_test || pending_test;
        scope[ti] = cur_kind;

        // Attributes: `#[...]` / `#![...]` — consumed wholly here so their
        // brackets never confuse the scope tracker.
        if tok.is_punct("#") {
            let mut j = i + 1;
            if j < code.len() && tokens[code[j]].is_punct("!") {
                j += 1;
            }
            if j < code.len() && tokens[code[j]].is_punct("[") {
                let mut depth = 0usize;
                let mut idents: Vec<&str> = Vec::new();
                while j < code.len() {
                    let t = &tokens[code[j]];
                    in_test[code[j]] = cur_test || pending_test;
                    scope[code[j]] = cur_kind;
                    if t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if t.kind == TokenKind::Ident {
                        idents.push(&t.text);
                    }
                    j += 1;
                }
                let is_test_attr = idents.first() == Some(&"test")
                    || (idents.contains(&"cfg")
                        && idents.contains(&"test")
                        && !idents.contains(&"not"));
                if is_test_attr {
                    pending_test = true;
                }
                i = j + 1;
                continue;
            }
        }

        match tok.kind {
            TokenKind::Ident => {
                let k = match tok.text.as_str() {
                    "mod" => Some(ScopeKind::Mod),
                    "impl" | "trait" => Some(ScopeKind::ImplOrTrait),
                    "fn" => Some(ScopeKind::Fn),
                    _ => None,
                };
                // Keep the *first* item keyword: `impl Foo for Bar` must not
                // be reclassified by `for`, and `fn f() -> impl Iterator`
                // must stay a fn. Later keywords before the `{` are ignored.
                if let Some(k) = k {
                    if item_kw.is_none() {
                        item_kw = Some(k);
                    }
                }
            }
            TokenKind::Punct => match tok.text.as_str() {
                "{" => {
                    let kind = item_kw.take().unwrap_or(ScopeKind::Other);
                    stack.push((kind, cur_test || pending_test));
                    pending_test = false;
                }
                "}" => {
                    stack.pop();
                    item_kw = None;
                }
                ";" => {
                    item_kw = None;
                    pending_test = false;
                }
                "=" => {
                    // `let f = ...`, `const X: T = ...`: what follows is an
                    // expression, so any `{` belongs to it, not the item.
                    item_kw = None;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    (in_test, scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse(&PathBuf::from("crates/demo/src/lib.rs"), src)
    }

    fn token_at(f: &SourceFile, text: &str) -> usize {
        f.tokens
            .iter()
            .position(|t| t.text == text)
            .unwrap_or_else(|| panic!("token {text:?} not found"))
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let f = sf("fn lib_code() { work(); }\n\
                    #[cfg(test)]\nmod tests {\n    fn helper() { inner(); }\n}\n");
        assert!(!f.in_test[token_at(&f, "work")]);
        assert!(f.in_test[token_at(&f, "inner")]);
    }

    #[test]
    fn test_attr_fn_is_a_test_region_and_cfg_not_test_is_not() {
        let f = sf("#[test]\nfn t() { check(); }\n\
                    #[cfg(not(test))]\nfn prod() { live(); }\n");
        assert!(f.in_test[token_at(&f, "check")]);
        assert!(!f.in_test[token_at(&f, "live")]);
    }

    #[test]
    fn scope_kinds_track_mod_impl_fn() {
        let f = sf("pub fn top() {}\n\
                    mod m { pub fn inner() {} }\n\
                    impl Foo { pub fn method(&self) { let x = Bar { y: 1 }; } }\n");
        assert_eq!(f.scope[token_at(&f, "top")], ScopeKind::File);
        assert_eq!(f.scope[token_at(&f, "inner")], ScopeKind::Mod);
        assert_eq!(f.scope[token_at(&f, "method")], ScopeKind::ImplOrTrait);
        assert_eq!(f.scope[token_at(&f, "Bar")], ScopeKind::Fn);
    }

    #[test]
    fn file_class_from_paths() {
        let c = FileClass::from_path(&PathBuf::from("crates/comm/src/threaded.rs"));
        assert_eq!(c.crate_name.as_deref(), Some("comm"));
        assert!(c.is_lib_src && !c.is_test_file && !c.is_crate_root);
        let t = FileClass::from_path(&PathBuf::from("crates/comm/tests/chaos.rs"));
        assert!(t.is_test_file && !t.is_lib_src);
        let r = FileClass::from_path(&PathBuf::from("crates/fft/src/lib.rs"));
        assert!(r.is_crate_root);
        let b = FileClass::from_path(&PathBuf::from("src/bin/diffreg.rs"));
        assert!(!b.is_lib_src && !b.is_crate_root);
        assert_eq!(b.crate_name.as_deref(), Some("diffreg"));
        let e = FileClass::from_path(&PathBuf::from("examples/quickstart.rs"));
        assert!(e.is_test_file);
    }
}
