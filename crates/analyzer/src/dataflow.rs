//! The dataflow lints: drivers that turn AST/CFG/call-graph facts into
//! [`Diagnostic`]s.
//!
//! Four lints live here (the syntactic ones stay in [`crate::lints`]):
//!
//! * `collective-consistency` — reads the per-branch divergence findings the
//!   [`crate::callgraph::CallGraph`] computed interprocedurally.
//! * `unwaited-handle` — CFG must-consume over `let`-bound comm `try_*`
//!   results and pending handles.
//! * `alloc-in-hot-path` — allocating calls inside the call-graph hot set
//!   rooted at the `newton.iter` / `newton.pcg` / `interp.eval` spans.
//! * `swallowed-comm-error` — `CommError` results discarded, collapsed, or
//!   matched into empty `Err` arms.

use crate::callgraph::CallGraph;
use crate::cfg;
use crate::lexer::TokenKind;
use crate::lint::{Diagnostic, Lint};
use crate::parse::{CallNode, FileAst, LetNode, Node};
use crate::scope::SourceFile;

fn diag(f: &SourceFile, lint: Lint, line: usize, col: usize, message: String) -> Diagnostic {
    Diagnostic {
        lint,
        path: f.path.clone(),
        line,
        col,
        message,
        snippet: f.snippet(line),
        func: String::new(),
        shash: 0,
    }
}

/// Comm operations whose `try_` form returns `Result<_, CommError>` (or a
/// pending handle). `try_into`/`try_fold`-style std conversions are
/// deliberately *not* matched — they carry non-comm error types.
fn comm_try(name: &str) -> bool {
    if let Some(base) = name.strip_prefix("try_") {
        return crate::callgraph::is_collective(base, 2)
            || crate::callgraph::is_collective(base, 0)
            || matches!(base, "send" | "recv" | "recv_any" | "probe" | "split");
    }
    name.starts_with("post_")
}

/// Result-consuming method names: a tracked value followed by one of these
/// has been handled (or deliberately crashed) rather than dropped.
const CONSUMERS: &[&str] = &[
    "unwrap",
    "expect",
    "ok",
    "err",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "is_ok",
    "is_err",
    "expect_err",
    "unwrap_err",
    "wait",
    "test",
];

fn calls_in<'n>(nodes: &'n [Node], out: &mut Vec<&'n CallNode>) {
    for n in nodes {
        match n {
            Node::Call(c) => out.push(c),
            Node::Let(l) => calls_in(&l.init, out),
            Node::Branch(b) => {
                calls_in(&b.cond, out);
                for a in &b.arms {
                    calls_in(&a.body, out);
                }
            }
            Node::Loop { body, .. } | Node::Closure { body } | Node::Block(body) => {
                calls_in(body, out)
            }
            Node::Return { value, .. } => calls_in(value, out),
            _ => {}
        }
    }
}

fn has_try_op(nodes: &[Node]) -> bool {
    nodes.iter().any(|n| match n {
        Node::Try { .. } => true,
        Node::Let(l) => has_try_op(&l.init),
        Node::Block(b) | Node::Closure { body: b } => has_try_op(b),
        Node::Return { value, .. } => has_try_op(value),
        _ => false,
    })
}

/// Does `init` bind an unconsumed comm `try_*` result? (The defining call
/// present, no `?`, and no consumer method applied in the initializer.)
fn init_is_pending(init: &[Node]) -> bool {
    let mut calls = Vec::new();
    calls_in(init, &mut calls);
    let has_pending = calls.iter().any(|c| !c.bang && comm_try(&c.name));
    if !has_pending || has_try_op(init) {
        return false;
    }
    let consumed = calls.iter().any(|c| c.method && CONSUMERS.contains(&c.name.as_str()));
    !consumed
}

/// `unwaited-handle`: a `let`-bound comm `try_*` result / pending handle
/// must be consumed on every CFG path before scope exit.
pub fn unwaited_handle(f: &SourceFile, ast: &FileAst, out: &mut Vec<Diagnostic>) {
    if !f.class.is_lib_src {
        return;
    }
    let classify: cfg::Classify = &|l: &LetNode| {
        if l.name.is_some() && init_is_pending(&l.init) {
            Some("comm try_* result".to_string())
        } else {
            None
        }
    };
    for fun in &ast.fns {
        if fun.in_test {
            continue;
        }
        let graph = cfg::build(&fun.body, classify);
        for leak in cfg::unconsumed_defs(&graph) {
            out.push(diag(
                f,
                Lint::UnwaitedHandle,
                leak.line,
                leak.col,
                format!(
                    "`{}` binds a {} that is not consumed on every path before scope exit: \
                     wait/unwrap/propagate it on all branches (a dropped pending comm op is a \
                     silent protocol desync)",
                    leak.name, leak.desc
                ),
            ));
        }
    }
}

/// `collective-consistency`: surfaces the call-graph findings that belong
/// to this file.
pub fn collective_consistency(
    f: &SourceFile,
    graph: &CallGraph,
    out: &mut Vec<Diagnostic>,
) {
    for c in &graph.consistency {
        let info = &graph.fns[c.fn_idx];
        if info.path != f.path {
            continue;
        }
        out.push(diag(
            f,
            Lint::CollectiveConsistency,
            c.line,
            c.col,
            format!("in `{}`: {}", info.name, c.message),
        ));
    }
}

/// Allocating constructor types for `Type::new()` / `Type::with_capacity()`.
const ALLOC_TYPES: &[&str] =
    &["Vec", "String", "Box", "HashMap", "BTreeMap", "VecDeque", "BinaryHeap", "HashSet"];

/// Method calls that allocate a fresh buffer.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect", "into_boxed_slice"];

/// Arena-routed qualifiers/receivers exempt from the hot-path rule.
fn arena_exempt(c: &CallNode) -> bool {
    let q = c.qual.as_deref().unwrap_or("");
    let r = c.recv.as_deref().unwrap_or("");
    q == "Pool"
        || q == "PooledVec"
        || q.to_lowercase().contains("arena")
        || r.to_lowercase().contains("pool")
        || r.to_lowercase().contains("arena")
}

fn alloc_walk(f: &SourceFile, nodes: &[Node], root: &str, out: &mut Vec<Diagnostic>) {
    let mut calls = Vec::new();
    calls_in(nodes, &mut calls);
    for c in calls {
        let hit = if c.bang {
            matches!(c.name.as_str(), "vec" | "format")
        } else if c.method {
            ALLOC_METHODS.contains(&c.name.as_str())
        } else if c.name == "with_capacity" || c.name == "new" {
            c.qual.as_deref().map(|q| ALLOC_TYPES.contains(&q)).unwrap_or(false)
        } else {
            false
        };
        if hit && !arena_exempt(c) {
            let what = if c.bang {
                format!("{}!", c.name)
            } else if let Some(q) = &c.qual {
                format!("{q}::{}", c.name)
            } else {
                format!(".{}()", c.name)
            };
            out.push(diag(
                f,
                Lint::AllocInHotPath,
                c.line,
                c.col,
                format!(
                    "allocating call `{what}` in a function reachable from the `{root}` hot \
                     span: route the buffer through grid::arena (or hoist it out of the hot \
                     loop) to keep the zero-alloc steady-state invariant"
                ),
            ));
        }
    }
}

/// `alloc-in-hot-path`: allocations in functions statically reachable from
/// the hot telemetry spans, outside `grid::arena` itself.
pub fn alloc_in_hot_path(
    f: &SourceFile,
    ast: &FileAst,
    graph: &CallGraph,
    out: &mut Vec<Diagnostic>,
) {
    if !f.class.is_lib_src || f.path.ends_with("grid/src/arena.rs") {
        return;
    }
    for fun in &ast.fns {
        if fun.in_test {
            continue;
        }
        let Some(idx) = graph.fn_at(&f.path, fun.line) else { continue };
        let Some(root) = graph.hot.get(&idx) else { continue };
        alloc_walk(f, &fun.body, root, out);
    }
}

/// `swallowed-comm-error`, pattern (a): `let _ = c.try_*(...)` — and
/// patterns (c)/(d): empty `Err` match arms and else-less `if let Ok`.
fn swallowed_in_nodes(f: &SourceFile, nodes: &[Node], out: &mut Vec<Diagnostic>) {
    for n in nodes {
        match n {
            Node::Let(l) => {
                if l.underscore && init_is_pending(&l.init) {
                    out.push(diag(
                        f,
                        Lint::SwallowedCommError,
                        l.line,
                        l.col,
                        "`let _ =` discards a comm try_* result: the CommError (and any rank \
                         failure it reports) vanishes — handle it or propagate it"
                            .to_string(),
                    ));
                }
                swallowed_in_nodes(f, &l.init, out);
            }
            Node::Branch(b) => {
                let mut cond_calls = Vec::new();
                calls_in(&b.cond, &mut cond_calls);
                let cond_has_try = cond_calls.iter().any(|c| !c.bang && comm_try(&c.name));
                if b.is_match && cond_has_try {
                    for arm in &b.arms {
                        if arm.pat.starts_with("Err") && arm.body.is_empty() {
                            out.push(diag(
                                f,
                                Lint::SwallowedCommError,
                                arm.line,
                                1,
                                "empty `Err` arm on a comm try_* result: the CommError is \
                                 matched and dropped — log it, recover, or propagate it"
                                    .to_string(),
                            ));
                        }
                    }
                }
                if !b.is_match
                    && cond_has_try
                    && !b.has_else
                    && b.cond_text.starts_with("let Ok")
                {
                    out.push(diag(
                        f,
                        Lint::SwallowedCommError,
                        b.line,
                        b.col,
                        "`if let Ok(..)` on a comm try_* result with no else branch: the \
                         CommError path is silently dropped"
                            .to_string(),
                    ));
                }
                swallowed_in_nodes(f, &b.cond, out);
                for arm in &b.arms {
                    swallowed_in_nodes(f, &arm.body, out);
                }
            }
            Node::Loop { body, .. } | Node::Closure { body } | Node::Block(body) => {
                swallowed_in_nodes(f, body, out)
            }
            Node::Return { value, .. } => swallowed_in_nodes(f, value, out),
            _ => {}
        }
    }
}

/// `swallowed-comm-error`, pattern (b): token-level scan for a `try_*` comm
/// call whose result is immediately collapsed with `.ok()` / `.unwrap_or*`.
fn swallowed_collapse(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &f.code;
    for i in 0..code.len() {
        let ti = code[i];
        if f.is_test_token(ti) {
            continue;
        }
        let tok = &f.tokens[ti];
        if tok.kind != TokenKind::Ident || !comm_try(&tok.text) {
            continue;
        }
        // Must be a call: next token `(`; skip the balanced argument group.
        let mut j = i + 1;
        if !(j < code.len() && f.tokens[code[j]].is_punct("(")) {
            continue;
        }
        let mut depth = 0isize;
        while j < code.len() {
            let t = &f.tokens[code[j]];
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        // `.ok(` / `.unwrap_or(` / `.unwrap_or_default(` right after.
        if j + 3 < code.len()
            && f.tokens[code[j + 1]].is_punct(".")
            && f.tokens[code[j + 2]].kind == TokenKind::Ident
            && matches!(
                f.tokens[code[j + 2]].text.as_str(),
                "ok" | "unwrap_or" | "unwrap_or_default"
            )
            && f.tokens[code[j + 3]].is_punct("(")
        {
            let m = &f.tokens[code[j + 2]];
            out.push(diag(
                f,
                Lint::SwallowedCommError,
                m.line,
                m.col,
                format!(
                    "`.{}()` collapses the CommError from `{}` without a typed recovery \
                     path: match on the error (or propagate it) instead",
                    m.text, tok.text
                ),
            ));
        }
    }
}

/// `swallowed-comm-error`: all patterns, over non-test lib code.
pub fn swallowed_comm_error(f: &SourceFile, ast: &FileAst, out: &mut Vec<Diagnostic>) {
    if !f.class.is_lib_src {
        return;
    }
    for fun in &ast.fns {
        if fun.in_test {
            continue;
        }
        swallowed_in_nodes(f, &fun.body, out);
    }
    swallowed_collapse(f, out);
}

/// Runs all four dataflow lints for one file against a prepared call graph.
pub fn run_dataflow(
    f: &SourceFile,
    ast: &FileAst,
    graph: &CallGraph,
    out: &mut Vec<Diagnostic>,
) {
    collective_consistency(f, graph, out);
    unwaited_handle(f, ast, out);
    alloc_in_hot_path(f, ast, graph, out);
    swallowed_comm_error(f, ast, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parse::parse_file;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<(Lint, usize)> {
        let sf = SourceFile::parse(&PathBuf::from(path), src);
        let ast = parse_file(&sf);
        let files = vec![(sf.path.clone(), sf.class.crate_name.clone(), &ast)];
        let graph = CallGraph::build(&files);
        let mut out = Vec::new();
        run_dataflow(&sf, &ast, &graph, &mut out);
        out.into_iter().map(|d| (d.lint, d.line)).collect()
    }

    #[test]
    fn unwaited_handle_flags_partial_consumption() {
        let got = run(
            "crates/comm/src/x.rs",
            "pub fn f(c: &C, flag: bool) {\n\
                let h = c.try_barrier();\n\
                if flag {\n\
                    h.unwrap();\n\
                }\n\
             }\n",
        );
        assert_eq!(got, vec![(Lint::UnwaitedHandle, 2)]);
    }

    #[test]
    fn unwaited_handle_clean_when_consumed_or_propagated() {
        let got = run(
            "crates/comm/src/x.rs",
            "pub fn f(c: &C) -> Result<(), CommError> {\n\
                let h = c.try_barrier();\n\
                h?;\n\
                let v = c.try_allreduce(&mut [0.0])?;\n\
                let w = c.try_send(1, &buf).map_err(adjust)?;\n\
                Ok(())\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn swallowed_patterns_fire() {
        let got = run(
            "crates/comm/src/x.rs",
            "pub fn f(c: &C) {\n\
                let _ = c.try_barrier();\n\
                let v = c.try_allreduce(&mut [0.0]).ok();\n\
                match c.try_send(1, &buf) {\n\
                    Ok(()) => on_sent(),\n\
                    Err(_) => {}\n\
                }\n\
             }\n",
        );
        assert!(got.contains(&(Lint::SwallowedCommError, 2)), "{got:?}");
        assert!(got.contains(&(Lint::SwallowedCommError, 3)), "{got:?}");
        assert!(got.contains(&(Lint::SwallowedCommError, 6)), "{got:?}");
    }

    #[test]
    fn try_into_is_not_a_comm_result() {
        let got = run(
            "crates/core/src/x.rs",
            "pub fn f(bytes: &[u8]) -> u64 {\n\
                let arr = bytes.try_into().unwrap_or_default();\n\
                u64::from_le_bytes(arr)\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn alloc_in_hot_path_follows_the_call_graph() {
        let got = run(
            "crates/optim/src/x.rs",
            "pub fn hot_root(ws: &mut W) {\n\
                let _g = span(\"newton.iter\");\n\
                inner_step(ws);\n\
             }\n\
             fn inner_step(ws: &mut W) {\n\
                let buf = Vec::with_capacity(64);\n\
                ws.consume(buf);\n\
             }\n\
             pub fn cold_path() -> Vec<f64> {\n\
                vec![0.0; 8]\n\
             }\n",
        );
        assert_eq!(got, vec![(Lint::AllocInHotPath, 6)]);
    }

    #[test]
    fn arena_routed_allocation_is_exempt() {
        let got = run(
            "crates/optim/src/x.rs",
            "pub fn hot_root(ws: &mut W) {\n\
                let _g = span(\"newton.pcg\");\n\
                let buf = ws.pool.take(64);\n\
                ws.consume(buf.into_vec());\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn consistency_finding_lands_on_the_owning_file() {
        let got = run(
            "crates/core/src/x.rs",
            "pub fn entry(c: &C) {\n\
                if c.rank() == 0 {\n\
                    c.barrier();\n\
                } else {\n\
                    c.allreduce(&mut [0.0], Op::Sum);\n\
                }\n\
             }\n",
        );
        assert_eq!(got, vec![(Lint::CollectiveConsistency, 2)]);
    }
}
