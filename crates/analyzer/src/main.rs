//! `diffreg-analyzer` CLI: the static-analysis gate.
//!
//! ```text
//! diffreg-analyzer check [--json] [--root DIR]   # gate: exit 1 on new findings
//! diffreg-analyzer fix-baseline [--root DIR]     # rewrite ANALYZER_BASELINE.txt
//! diffreg-analyzer list                          # describe the registered lints
//! ```
//!
//! Exit codes: 0 clean, 1 new findings (gate fails), 2 usage/IO error.

#![forbid(unsafe_code)]

use diffreg_analyzer::baseline::{Baseline, BASELINE_FILE};
use diffreg_analyzer::engine;
use diffreg_analyzer::lint::ALL_LINTS;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: diffreg-analyzer <check [--json] [--root DIR] | fix-baseline [--root DIR] | list>"
    );
    ExitCode::from(2)
}

/// Finds the workspace root: `--root` if given, else walk up from the
/// current directory to the first ancestor holding a `crates/` directory.
fn find_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    match cmd.as_str() {
        "list" => {
            for l in ALL_LINTS {
                println!("{:<28} {}", l.name(), l.description());
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let Some(root) = find_root(root_arg) else {
                eprintln!("diffreg-analyzer: cannot locate workspace root (try --root)");
                return ExitCode::from(2);
            };
            let baseline_text =
                std::fs::read_to_string(root.join(BASELINE_FILE)).unwrap_or_default();
            let baseline = Baseline::parse(&baseline_text);
            let report = match engine::check(&root, baseline) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("diffreg-analyzer: {e}");
                    return ExitCode::from(2);
                }
            };
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        "fix-baseline" => {
            let Some(root) = find_root(root_arg) else {
                eprintln!("diffreg-analyzer: cannot locate workspace root (try --root)");
                return ExitCode::from(2);
            };
            let diags = match engine::baseline_candidates(&root) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("diffreg-analyzer: {e}");
                    return ExitCode::from(2);
                }
            };
            let body = Baseline::render(&diags);
            if let Err(e) = std::fs::write(root.join(BASELINE_FILE), &body) {
                eprintln!("diffreg-analyzer: write {BASELINE_FILE}: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {} with {} entr(ies)", BASELINE_FILE, diags.len());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
