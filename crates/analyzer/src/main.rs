//! `diffreg-analyzer` CLI: the static-analysis gate.
//!
//! ```text
//! diffreg-analyzer check [--json] [--root DIR] [--jobs N] [--paths a,b]
//!                                                # gate: exit 1 on new findings
//! diffreg-analyzer fix-baseline [--root DIR]     # rewrite ANALYZER_BASELINE.txt
//! diffreg-analyzer bench [--samples N] [--root DIR]
//!                                                # time `check`, write diffreg-bench-v1
//! diffreg-analyzer list                          # describe the registered lints
//! ```
//!
//! Exit codes: 0 clean, 1 new findings (gate fails), 2 usage/IO error.

#![forbid(unsafe_code)]

use diffreg_analyzer::baseline::{Baseline, BASELINE_FILE};
use diffreg_analyzer::engine;
use diffreg_analyzer::lint::ALL_LINTS;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: diffreg-analyzer <check [--json] [--root DIR] [--jobs N] [--paths P1,P2] \
         | fix-baseline [--root DIR] | bench [--samples N] [--root DIR] | list>"
    );
    ExitCode::from(2)
}

/// Finds the workspace root: `--root` if given, else walk up from the
/// current directory to the first ancestor holding a `crates/` directory.
fn find_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(r) = explicit {
        return Some(r);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn load_baseline(root: &std::path::Path) -> Baseline {
    let text = std::fs::read_to_string(root.join(BASELINE_FILE)).unwrap_or_default();
    Baseline::parse(&text)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut jobs: usize = 0;
    let mut paths: Vec<String> = Vec::new();
    let mut samples: usize = 3;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--jobs" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--paths" => match args.next() {
                Some(list) => {
                    paths.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => return usage(),
            },
            "--samples" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => samples = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    match cmd.as_str() {
        "list" => {
            for l in ALL_LINTS {
                println!("{:<28} {}", l.name(), l.description());
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let Some(root) = find_root(root_arg) else {
                eprintln!("diffreg-analyzer: cannot locate workspace root (try --root)");
                return ExitCode::from(2);
            };
            let report = match engine::check_with(&root, load_baseline(&root), &paths, jobs) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("diffreg-analyzer: {e}");
                    return ExitCode::from(2);
                }
            };
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        "bench" => {
            let Some(root) = find_root(root_arg) else {
                eprintln!("diffreg-analyzer: cannot locate workspace root (try --root)");
                return ExitCode::from(2);
            };
            let mut times = Vec::with_capacity(samples);
            let mut last = None;
            for _ in 0..samples {
                let t0 = std::time::Instant::now();
                match engine::check_with(&root, load_baseline(&root), &[], jobs) {
                    Ok(r) => {
                        times.push(t0.elapsed().as_secs_f64());
                        last = Some(r);
                    }
                    Err(e) => {
                        eprintln!("diffreg-analyzer: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            let report = last.expect("samples > 0");
            let mut rec = diffreg_telemetry::BenchRecord::new("analyzer/check", times)
                .with_extra("files", report.files as f64);
            for (name, (new, base, supp)) in report.counts() {
                rec = rec.with_extra(format!("lint/{name}"), (new + base + supp) as f64);
            }
            let mut suite = diffreg_telemetry::BenchSuite::new("analyzer");
            suite.push(rec);
            let dir = std::env::var("DIFFREG_RESULTS_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| root.join("results"));
            match suite.write_results(&dir) {
                Ok(path) => {
                    println!(
                        "analyzer bench: {} file(s), median {:.3}s over {} sample(s) -> {}",
                        report.files,
                        suite.records[0].median_s(),
                        samples,
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("diffreg-analyzer: write results: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "fix-baseline" => {
            let Some(root) = find_root(root_arg) else {
                eprintln!("diffreg-analyzer: cannot locate workspace root (try --root)");
                return ExitCode::from(2);
            };
            let diags = match engine::baseline_candidates(&root) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("diffreg-analyzer: {e}");
                    return ExitCode::from(2);
                }
            };
            let body = Baseline::render(&diags);
            if let Err(e) = std::fs::write(root.join(BASELINE_FILE), &body) {
                eprintln!("diffreg-analyzer: write {BASELINE_FILE}: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {} with {} entr(ies)", BASELINE_FILE, diags.len());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
