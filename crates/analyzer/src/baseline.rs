//! The checked-in baseline of grandfathered findings.
//!
//! A finding in the baseline is reported but does not fail the gate, so the
//! analyzer could be landed with hard-gate semantics *before* every legacy
//! site was burned down. Entries are content-addressed — keyed on
//! `(lint, path, trimmed source line)` rather than line numbers — so
//! unrelated edits above a grandfathered site do not invalidate it, while
//! *any* edit to the offending line itself forces the finding to be fixed
//! or explicitly allowed.
//!
//! Workflow:
//! * `diffreg-analyzer check` — new findings fail; baselined ones count.
//! * `diffreg-analyzer fix-baseline` — rewrites the file from the current
//!   findings (use after burning entries down, never to hide new ones).

use crate::lint::Diagnostic;
use std::collections::HashMap;

/// The baseline file name, at the repository root.
pub const BASELINE_FILE: &str = "ANALYZER_BASELINE.txt";

/// A multiset of grandfathered findings keyed on content.
#[derive(Debug, Default)]
pub struct Baseline {
    /// `(lint name, path, trimmed line)` -> count.
    entries: HashMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses the baseline file format: tab-separated
    /// `lint<TAB>path<TAB>trimmed line`, `#` comments and blanks ignored.
    pub fn parse(text: &str) -> Baseline {
        let mut entries: HashMap<(String, String, String), usize> = HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(lint), Some(path), Some(snippet)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            *entries
                .entry((lint.to_string(), path.to_string(), snippet.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of entries (multiset cardinality).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// True when the baseline holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes one matching entry for `d` if present; returns true when the
    /// finding is grandfathered.
    pub fn matches(&mut self, d: &Diagnostic) -> bool {
        let key = (d.lint.to_string(), d.path.clone(), d.snippet.clone());
        match self.entries.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    self.entries.remove(&key);
                }
                true
            }
            _ => false,
        }
    }

    /// Entries that matched no current finding — fixed or drifted lines that
    /// should be pruned with `fix-baseline`.
    pub fn stale(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .entries
            .iter()
            .map(|((l, p, s), n)| {
                if *n > 1 {
                    format!("{l}\t{p}\t{s}  (x{n})")
                } else {
                    format!("{l}\t{p}\t{s}")
                }
            })
            .collect();
        v.sort();
        v
    }

    /// Serializes `diags` as a fresh baseline file body.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut lines: Vec<String> = diags
            .iter()
            .map(|d| format!("{}\t{}\t{}", d.lint, d.path, d.snippet))
            .collect();
        lines.sort();
        let mut out = String::from(
            "# diffreg-analyzer baseline: grandfathered findings, one per line as\n\
             # <lint>\\t<path>\\t<trimmed source line>.\n\
             # Regenerate with: cargo run -p diffreg-analyzer -- fix-baseline\n\
             # Policy: burn entries down over time; never add new ones to dodge the gate.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Lint;

    fn d(lint: Lint, path: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            lint,
            path: path.into(),
            line: 10,
            col: 2,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn round_trip_and_multiset_matching() {
        let d1 = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "foo.unwrap();");
        let d2 = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "foo.unwrap();");
        let d3 = d(Lint::FloatEq, "crates/y/src/b.rs", "a == 0.0");
        let text = Baseline::render(&[d1.clone(), d2.clone(), d3.clone()]);
        let mut b = Baseline::parse(&text);
        assert_eq!(b.len(), 3);
        assert!(b.matches(&d1));
        assert!(b.matches(&d2));
        // Third identical finding is NOT covered (multiset semantics).
        assert!(!b.matches(&d1));
        assert!(b.matches(&d3));
        assert!(b.stale().is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let text = "no-unwrap-in-lib\tcrates/x/src/a.rs\tgone.unwrap();\n";
        let b = Baseline::parse(text);
        assert_eq!(b.stale().len(), 1);
        assert!(b.stale()[0].contains("gone.unwrap()"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\n# more\n");
        assert!(b.is_empty());
    }
}
