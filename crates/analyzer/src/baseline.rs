//! The checked-in baseline of grandfathered findings (v2 format).
//!
//! A finding in the baseline is reported but does not fail the gate, so a
//! new lint can be landed with hard-gate semantics *before* every legacy
//! site is burned down. v2 entries are keyed on
//! `(lint, path, enclosing function, structural hash)` where the hash is
//! FNV-1a-64 over the lint name, the enclosing function name, and the code
//! tokens of the offending line — so neither line-number drift *nor*
//! whitespace/comment reformatting churns the file, while any real edit to
//! the offending code invalidates the entry and forces a fix or an explicit
//! allow.
//!
//! File format, tab-separated:
//!
//! ```text
//! <lint>\t<path>\t<function>\t<hash-hex>\t<trimmed source line>
//! ```
//!
//! The trailing snippet is informational (for humans reading diffs); only
//! the first four fields are matched. Legacy v1 lines
//! (`lint\tpath\tsnippet`) are counted as unmatchable and surface as stale,
//! so a stray v1 file fails loudly instead of silently granting amnesty.
//!
//! Workflow:
//! * `diffreg-analyzer check` — new findings fail; baselined ones count.
//! * `diffreg-analyzer fix-baseline` — rewrites the file from the current
//!   findings (use after burning entries down, never to hide new ones).

use crate::lint::Diagnostic;
use std::collections::HashMap;

/// The baseline file name, at the repository root.
pub const BASELINE_FILE: &str = "ANALYZER_BASELINE.txt";

/// FNV-1a 64-bit over a byte stream — the structural hash primitive.
pub fn fnv1a(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Field separator so ("ab","c") != ("a","bc").
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A multiset of grandfathered findings keyed on the v2 structural key.
#[derive(Debug, Default)]
pub struct Baseline {
    /// `(lint name, path, function, hash)` -> count.
    entries: HashMap<(String, String, String, u64), usize>,
    /// Display strings of entries kept for stale reporting.
    display: HashMap<(String, String, String, u64), String>,
    /// v1-format lines found in the file (unmatchable; always stale).
    legacy: Vec<String>,
}

impl Baseline {
    /// Parses the baseline file. v2 lines have five tab-separated fields;
    /// three-field lines are collected as legacy v1 entries (never matched).
    /// `#` comments and blanks are ignored.
    pub fn parse(text: &str) -> Baseline {
        let mut b = Baseline::default();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(5, '\t').collect();
            if parts.len() == 5 {
                if let Ok(hash) = u64::from_str_radix(parts[3], 16) {
                    let key = (
                        parts[0].to_string(),
                        parts[1].to_string(),
                        parts[2].to_string(),
                        hash,
                    );
                    b.display.entry(key.clone()).or_insert_with(|| line.to_string());
                    *b.entries.entry(key).or_insert(0) += 1;
                    continue;
                }
            }
            b.legacy.push(line.to_string());
        }
        b
    }

    /// Number of entries (multiset cardinality, legacy lines included).
    pub fn len(&self) -> usize {
        self.entries.values().sum::<usize>() + self.legacy.len()
    }

    /// True when the baseline holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.legacy.is_empty()
    }

    /// Consumes one matching entry for `d` if present; returns true when the
    /// finding is grandfathered.
    pub fn matches(&mut self, d: &Diagnostic) -> bool {
        let key = (d.lint.to_string(), d.path.clone(), d.func.clone(), d.shash);
        match self.entries.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    self.entries.remove(&key);
                }
                true
            }
            _ => false,
        }
    }

    /// Entries that matched no current finding — fixed or edited sites that
    /// should be pruned with `fix-baseline` — plus any legacy v1 lines.
    pub fn stale(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .entries
            .iter()
            .map(|(key, n)| {
                let shown = self
                    .display
                    .get(key)
                    .cloned()
                    .unwrap_or_else(|| format!("{}\t{}\t{}\t{:016x}", key.0, key.1, key.2, key.3));
                if *n > 1 {
                    format!("{shown}  (x{n})")
                } else {
                    shown
                }
            })
            .collect();
        for l in &self.legacy {
            v.push(format!("{l}  (legacy v1 entry: regenerate with fix-baseline)"));
        }
        v.sort();
        v
    }

    /// Serializes `diags` as a fresh v2 baseline file body.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut lines: Vec<String> = diags
            .iter()
            .map(|d| {
                format!("{}\t{}\t{}\t{:016x}\t{}", d.lint, d.path, d.func, d.shash, d.snippet)
            })
            .collect();
        lines.sort();
        let mut out = String::from(
            "# diffreg-analyzer baseline v2: grandfathered findings, one per line as\n\
             # <lint>\\t<path>\\t<enclosing fn>\\t<structural hash>\\t<trimmed source line>.\n\
             # The hash is FNV-1a-64 over (lint, fn, code tokens of the line): entries\n\
             # survive line drift and reformatting, but any real edit invalidates them.\n\
             # Regenerate with: cargo run -p diffreg-analyzer -- fix-baseline\n\
             # Policy: burn entries down over time; never add new ones to dodge the gate.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Lint;

    fn d(lint: Lint, path: &str, func: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            lint,
            path: path.into(),
            line: 10,
            col: 2,
            message: "m".into(),
            snippet: snippet.into(),
            func: func.into(),
            shash: fnv1a(&[lint.name(), func, snippet]),
        }
    }

    #[test]
    fn round_trip_and_multiset_matching() {
        let d1 = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "f", "foo.unwrap();");
        let d2 = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "f", "foo.unwrap();");
        let d3 = d(Lint::FloatEq, "crates/y/src/b.rs", "g", "a == 0.0");
        let text = Baseline::render(&[d1.clone(), d2.clone(), d3.clone()]);
        let mut b = Baseline::parse(&text);
        assert_eq!(b.len(), 3);
        assert!(b.matches(&d1));
        assert!(b.matches(&d2));
        // Third identical finding is NOT covered (multiset semantics).
        assert!(!b.matches(&d1));
        assert!(b.matches(&d3));
        assert!(b.stale().is_empty());
    }

    #[test]
    fn hash_mismatch_is_not_grandfathered() {
        let old = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "f", "foo.unwrap();");
        let text = Baseline::render(&[old]);
        let mut b = Baseline::parse(&text);
        // Same site, but the offending line was edited → different hash.
        let edited = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "f", "bar.unwrap();");
        assert!(!b.matches(&edited));
        assert_eq!(b.stale().len(), 1);
    }

    #[test]
    fn same_code_different_function_is_distinct() {
        let in_f = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "f", "x.unwrap();");
        let text = Baseline::render(std::slice::from_ref(&in_f));
        let mut b = Baseline::parse(&text);
        let in_g = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "g", "x.unwrap();");
        assert!(!b.matches(&in_g), "keys must include the enclosing function");
        assert!(b.matches(&in_f));
    }

    #[test]
    fn legacy_v1_lines_are_stale_not_matched() {
        let text = "no-unwrap-in-lib\tcrates/x/src/a.rs\tfoo.unwrap();\n";
        let mut b = Baseline::parse(text);
        assert_eq!(b.len(), 1);
        let d1 = d(Lint::NoUnwrapInLib, "crates/x/src/a.rs", "f", "foo.unwrap();");
        assert!(!b.matches(&d1));
        assert_eq!(b.stale().len(), 1);
        assert!(b.stale()[0].contains("legacy v1"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\n# more\n");
        assert!(b.is_empty());
    }

    #[test]
    fn fnv_separates_field_boundaries() {
        assert_ne!(fnv1a(&["ab", "c"]), fnv1a(&["a", "bc"]));
        assert_ne!(fnv1a(&["x"]), fnv1a(&["x", ""]));
    }
}
