//! A small, line/column-tracking Rust lexer.
//!
//! This is not a full grammar — it is exactly the token model the project
//! lints need, with the failure modes that break naive `grep`-style linting
//! handled correctly:
//!
//! * **block comments nest** (`/* outer /* inner */ still comment */`),
//! * **raw strings** carry arbitrary hash fences (`r#"..."#`, `br##"..."##`)
//!   and can contain `"` and `//` without ending the literal,
//! * **char literals vs lifetimes** are disambiguated (`'a'` is a char,
//!   `'a` in `&'a str` is a lifetime, `'"'` is a char containing a quote),
//! * **byte strings / byte chars** (`b"..."`, `b'x'`) and escape sequences
//!   (`'\''`, `"\""`) are handled,
//! * every token records its **1-based line and column**, so diagnostics
//!   point at real source locations.
//!
//! Comments are *kept* as tokens: the lint engine needs them for
//! `// diffreg-allow(...)` suppressions and `// SAFETY:` audits. Use
//! [`Token::is_code`] to filter them out when scanning program structure.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not separate keywords).
    Ident,
    /// A lifetime such as `'a` or `'static` (including the quote).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String literal `"..."` (escapes resolved lexically, not decoded).
    Str,
    /// Raw string literal `r"..."` / `r#"..."#` (any fence depth).
    RawStr,
    /// Byte-string literal `b"..."` or raw byte string `br#"..."#`.
    ByteStr,
    /// Char literal `'x'` (including escapes such as `'\''`).
    Char,
    /// Byte-char literal `b'x'`.
    ByteChar,
    /// Punctuation / operator. Multi-character operators that matter to the
    /// lints (`==`, `!=`, `<=`, `>=`, `=>`, `->`, `::`, `&&`, `||`, `..`,
    /// compound assignments) are joined into one token.
    Punct,
    /// `// ...` line comment (doc comments included), text without newline.
    LineComment,
    /// `/* ... */` block comment (doc comments included), nesting handled.
    BlockComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

impl Token {
    /// True for tokens that are program code (everything but comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// True for any string-ish literal (plain, raw, byte, or char).
    pub fn is_literal(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::ByteStr
                | TokenKind::Char
                | TokenKind::ByteChar
                | TokenKind::Number
        )
    }
}

/// Multi-character operators joined into single [`TokenKind::Punct`] tokens,
/// longest first so maximal munch works.
const JOINED_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "=>", "->", "::", "&&", "||", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into a token stream. Never fails: unterminated literals are
/// closed at end of file (the lint pass runs on code that already compiles,
/// so this only matters for fixtures).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { chars: src.chars().collect(), src, pos: 0, line: 1, col: 1, out: Vec::new() }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.out.push(Token { kind, text, line, col });
    }

    fn run(mut self) -> Vec<Token> {
        let _ = self.src;
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col, TokenKind::Str, String::new()),
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.is_raw_start(1) => {
                    self.raw_string(line, col, TokenKind::RawStr)
                }
                'b' if self.peek(1) == Some('"') => {
                    let mut text = String::new();
                    text.push(self.bump().unwrap_or('b'));
                    self.string(line, col, TokenKind::ByteStr, text);
                }
                'b' if self.peek(1) == Some('\'') => {
                    let mut text = String::new();
                    text.push(self.bump().unwrap_or('b'));
                    self.char_lit(line, col, TokenKind::ByteChar, text);
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_start(2) => {
                    self.raw_string(line, col, TokenKind::ByteStr)
                }
                '\'' => self.quote(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                _ => self.punct(line, col),
            }
        }
        self.out
    }

    /// Is the text at offset `from` (relative to `pos`, pointing after the
    /// `r` / `br` prefix) a raw-string fence: zero or more `#` then `"` ?
    fn is_raw_start(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push('/');
                text.push('*');
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push('*');
                text.push('/');
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    /// Lexes a `"..."` string whose opening quote is at the cursor. `text`
    /// may already hold a consumed prefix (`b`).
    fn string(&mut self, line: usize, col: usize, kind: TokenKind, mut text: String) {
        text.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                continue;
            }
            text.push(c);
            self.bump();
            if c == '"' {
                break;
            }
        }
        self.push(kind, text, line, col);
    }

    /// Lexes `r#"..."#` / `br##"..."##`: cursor on the `r` or `b`.
    fn raw_string(&mut self, line: usize, col: usize, kind: TokenKind) {
        let mut text = String::new();
        // Consume prefix letters (r or br).
        while matches!(self.peek(0), Some('r' | 'b')) {
            text.push(self.bump().unwrap_or('r'));
        }
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) == Some('"') {
            text.push('"');
            self.bump();
        }
        // Scan to `"` followed by `fence` hashes.
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                for i in 0..fence {
                    if self.peek(1 + i) != Some('#') {
                        text.push('"');
                        self.bump();
                        continue 'outer;
                    }
                }
                text.push('"');
                self.bump();
                for _ in 0..fence {
                    text.push('#');
                    self.bump();
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(kind, text, line, col);
    }

    /// Lexes a char literal whose opening `'` is at the cursor. `text` may
    /// already hold a consumed `b` prefix.
    fn char_lit(&mut self, line: usize, col: usize, kind: TokenKind, mut text: String) {
        text.push(self.bump().unwrap_or('\'')); // opening quote
        if self.peek(0) == Some('\\') {
            text.push('\\');
            self.bump();
            if let Some(e) = self.bump() {
                text.push(e);
            }
            // Multi-char escapes (\x41, \u{...}) — consume to closing quote.
            while let Some(c) = self.peek(0) {
                if c == '\'' {
                    break;
                }
                text.push(c);
                self.bump();
            }
        } else if let Some(c) = self.bump() {
            text.push(c);
        }
        if self.peek(0) == Some('\'') {
            text.push('\'');
            self.bump();
        }
        self.push(kind, text, line, col);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime). A quote starts a
    /// lifetime when it is followed by an identifier character that is *not*
    /// closed by another quote right after one character — i.e. `'a'` is a
    /// char, `'ab...` or `'a,` is a lifetime. `'\...` is always a char.
    fn quote(&mut self, line: usize, col: usize) {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\'')); // the quote
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
        } else {
            self.char_lit(line, col, TokenKind::Char, String::new());
        }
    }

    fn number(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        // Integer / prefix part (0x, 0b, 0o handled by the same char class).
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: a '.' followed by a digit (not `..` or a method).
        if self.peek(0) == Some('.') {
            if let Some(d) = self.peek(1) {
                if d.is_ascii_digit() {
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Exponent sign (1e-3): the alnum scan above eats `e`, grab `-3`.
        if (text.ends_with('e') || text.ends_with('E'))
            && matches!(self.peek(0), Some('+' | '-'))
            && self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false)
        {
            text.push(self.bump().unwrap_or('-'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokenKind::Number, text, line, col);
    }

    fn ident(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn punct(&mut self, line: usize, col: usize) {
        for op in JOINED_PUNCT {
            if op.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c)) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, (*op).to_string(), line, col);
                return;
            }
        }
        let c = self.bump().unwrap_or(' ');
        self.push(TokenKind::Punct, c.to_string(), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "/* x /* y */ z */");
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn raw_strings_hide_quotes_and_comments() {
        let toks = kinds(r####"let s = r#"not // a "comment" */"#;"####);
        let raw = toks.iter().find(|t| t.0 == TokenKind::RawStr).expect("raw string token");
        assert!(raw.1.contains("not // a"));
        assert!(toks.iter().all(|t| t.0 != TokenKind::LineComment));
    }

    #[test]
    fn raw_byte_string() {
        let toks = kinds(r###"let s = br##"x"# y"##;"###);
        let raw = toks.iter().find(|t| t.0 == TokenKind::ByteStr).expect("byte raw string");
        assert!(raw.1.contains(r##"x"# y"##), "{}", raw.1);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'b'; let q = '\"'; let e = '\\''; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.1 == "'a"));
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3, "{chars:?}");
        assert_eq!(chars[1].1, "'\"'");
        assert_eq!(chars[2].1, "'\\''");
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("ab\n  cd == 1.5e-3");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col, toks[1].text.as_str()), (2, 3, "cd"));
        assert_eq!(toks[2].text, "==");
        assert_eq!(toks[3].kind, TokenKind::Number);
        assert_eq!(toks[3].text, "1.5e-3");
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0..10 1.0 0xff_u32 2.5f64 1e9 x.abs()");
        assert_eq!(toks[0], (TokenKind::Number, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct, "..".into()));
        assert_eq!(toks[2], (TokenKind::Number, "10".into()));
        assert_eq!(toks[3], (TokenKind::Number, "1.0".into()));
        assert_eq!(toks[4], (TokenKind::Number, "0xff_u32".into()));
        assert_eq!(toks[5], (TokenKind::Number, "2.5f64".into()));
        assert_eq!(toks[6], (TokenKind::Number, "1e9".into()));
        // `x.abs()` must not lex `.a` into the number path.
        assert_eq!(toks[7], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[8], (TokenKind::Punct, ".".into()));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(toks.iter().any(|t| t.0 == TokenKind::ByteStr && t.1 == "b\"bytes\""));
        assert!(toks.iter().any(|t| t.0 == TokenKind::ByteChar && t.1 == "b'x'"));
    }

    #[test]
    fn joined_operators() {
        let toks = kinds("a != b && c == d || e <= f .. g ..= h");
        let puncts: Vec<_> =
            toks.iter().filter(|t| t.0 == TokenKind::Punct).map(|t| t.1.as_str()).collect();
        assert_eq!(puncts, vec!["!=", "&&", "==", "||", "<=", "..", "..="]);
    }

    #[test]
    fn static_lifetime_and_string_escapes() {
        let toks = kinds(r#"let s: &'static str = "a \" b"; "#);
        assert!(toks.iter().any(|t| t.0 == TokenKind::Lifetime && t.1 == "'static"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Str && t.1 == r#""a \" b""#));
    }
}
