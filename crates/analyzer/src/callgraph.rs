//! Workspace call graph with function effect summaries.
//!
//! Built once per `check` run from every parsed file, the graph powers the
//! two interprocedural lints:
//!
//! * **collective-consistency** — each function body is lowered to an
//!   *effect stream* (collective calls, calls to other workspace functions,
//!   loops, branches, returns). Calls are resolved and spliced (memoized,
//!   recursion-safe), and every branch whose condition mentions a rank is
//!   checked: all arms, each extended with the continuation of the
//!   enclosing function (empty for arms that return early), must resolve to
//!   structurally identical collective sequences. This catches divergence
//!   the old syntactic lint could not see — e.g. two helper functions with
//!   different collective footprints selected by a rank test, or an early
//!   `return` on one rank skipping a barrier issued by the others.
//! * **alloc-in-hot-path** — functions carrying the `newton.iter`,
//!   `newton.pcg`, or `interp.eval` telemetry spans are hot roots; the
//!   transitive callee set (BFS over resolved calls) is the static hot set
//!   that must stay allocation-free outside `grid::arena`.

use crate::parse::{FileAst, Node};
use std::collections::{HashMap, HashSet};

/// Telemetry span labels whose enclosing functions root the hot set.
pub const HOT_SPANS: &[&str] = &["newton.iter", "newton.pcg", "interp.eval"];

/// Comm-trait collective operations (method names). `try_`-prefixed
/// variants are recognized automatically; `split` only counts with two
/// arguments (distinguishing it from `str::split`).
const COLLECTIVE_BASE: &[&str] = &[
    "barrier",
    "allreduce",
    "allreduce_usize",
    "broadcast",
    "bcast",
    "allgather",
    "alltoallv",
    "sum_f64",
    "max_f64",
    "min_f64",
];

/// Is a method call `name(...)` with `argc` arguments a collective?
pub fn is_collective(name: &str, argc: usize) -> bool {
    let base = name.strip_prefix("try_").unwrap_or(name);
    if base == "split" {
        return argc == 2;
    }
    COLLECTIVE_BASE.contains(&base)
}

/// A call site recorded in a function summary.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name.
    pub name: String,
    /// `qual::name` qualifier segment, when present.
    pub qual: Option<String>,
    /// True for `.name(...)` method syntax.
    pub method: bool,
    /// Argument count.
    pub argc: usize,
    /// 1-based source line.
    pub line: usize,
}

/// One effect in a function's lowered stream.
#[derive(Debug, Clone)]
pub enum Eff {
    /// A collective operation.
    Coll(String),
    /// A call that may resolve to a workspace function.
    Call {
        /// Called name.
        name: String,
        /// Path qualifier segment.
        qual: Option<String>,
    },
    /// A loop body (executed zero or more times).
    Loop(Vec<Eff>),
    /// A branch: condition metadata plus per-arm streams.
    Alt(AltEff),
    /// An early `return`.
    Ret,
}

/// Branch metadata in an effect stream.
#[derive(Debug, Clone)]
pub struct AltEff {
    /// 1-based line of the `if`/`match`.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Condition text for diagnostics.
    pub cond_text: String,
    /// True when the condition mentions a rank.
    pub rank: bool,
    /// Per-arm effect streams.
    pub arms: Vec<Vec<Eff>>,
}

/// Summary of one function in the workspace.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Repo-relative path of the defining file.
    pub path: String,
    /// Crate name, when under `crates/<name>/`.
    pub crate_name: Option<String>,
    /// Function name.
    pub name: String,
    /// Plain `pub` visibility.
    pub is_pub: bool,
    /// Defined in test code.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// All call sites in the body.
    pub calls: Vec<CallSite>,
    /// Telemetry span labels opened in the body (`span("...")`).
    pub spans: Vec<String>,
    /// Lowered effect stream.
    pub effs: Vec<Eff>,
}

/// A collective-consistency violation found at graph build time.
#[derive(Debug, Clone)]
pub struct ConsistencyFinding {
    /// Index of the function the divergent branch is in.
    pub fn_idx: usize,
    /// 1-based line of the branch.
    pub line: usize,
    /// 1-based column of the branch.
    pub col: usize,
    /// Human-readable divergence description.
    pub message: String,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All function summaries.
    pub fns: Vec<FnInfo>,
    by_name: HashMap<String, Vec<usize>>,
    /// Hot-set membership: fn index → root span label.
    pub hot: HashMap<usize, String>,
    /// All collective-consistency findings, computed at build time.
    pub consistency: Vec<ConsistencyFinding>,
}

/// A resolved effect node (calls spliced, for structural comparison).
#[derive(Debug, Clone)]
enum RNode {
    /// Collective operation by name.
    C(String),
    /// Loop body.
    L(Vec<RNode>),
    /// Branch; per arm: (stream, terminates). `site` is Some for branches
    /// owned by the function under analysis (None once spliced in from a
    /// callee — those are flagged in the callee's own pass).
    A {
        rank: bool,
        site: Option<(usize, usize, String)>,
        arms: Vec<(Vec<RNode>, bool)>,
    },
    /// Unresolvable call that may or may not contain collectives.
    O(String),
}

impl CallGraph {
    /// Builds the graph (and runs the interprocedural analyses) from the
    /// parsed files. `files` pairs each repo-relative path with its AST and
    /// crate name.
    pub fn build(files: &[(String, Option<String>, &FileAst)]) -> CallGraph {
        let mut fns = Vec::new();
        for (path, crate_name, ast) in files {
            for f in &ast.fns {
                let mut calls = Vec::new();
                let mut spans = Vec::new();
                collect_calls(&f.body, &mut calls, &mut spans);
                let effs = lower(&f.body);
                fns.push(FnInfo {
                    path: path.clone(),
                    crate_name: crate_name.clone(),
                    name: f.name.clone(),
                    is_pub: f.is_pub,
                    in_test: f.in_test,
                    line: f.line,
                    calls,
                    spans,
                    effs,
                });
            }
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut g = CallGraph { fns, by_name, hot: HashMap::new(), consistency: Vec::new() };
        g.compute_hot_set();
        g.check_consistency();
        g
    }

    /// Resolves a call site from function `from` to a unique workspace
    /// function, preferring same-file then same-crate candidates. Ambiguous
    /// common names resolve to `None`.
    pub fn resolve(&self, name: &str, qual: Option<&str>, from: usize) -> Option<usize> {
        let cands = self.by_name.get(name)?;
        let from_path = &self.fns[from].path;
        let from_crate = &self.fns[from].crate_name;
        // Qualifier filter: `mod::f()` must come from a file path mentioning
        // the qualifier (e.g. `solvers::step` → .../solvers.rs). Type
        // qualifiers (`Vec::new`) simply fail the filter and fall through to
        // the unqualified logic below.
        let filtered: Vec<usize> = match qual {
            Some(q) => {
                let seg = format!("/{q}.rs");
                let segd = format!("/{q}/");
                cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.fns[i].path.ends_with(&seg) || self.fns[i].path.contains(&segd)
                    })
                    .collect()
            }
            None => cands.clone(),
        };
        let pool = if filtered.is_empty() { cands.clone() } else { filtered };
        if pool.len() == 1 {
            return Some(pool[0]);
        }
        if pool.len() > 4 {
            return None; // too common a name (`new`, `len`, ...): give up
        }
        let same_file: Vec<usize> =
            pool.iter().copied().filter(|&i| &self.fns[i].path == from_path).collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        let same_crate: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_name == *from_crate)
            .collect();
        if same_crate.len() == 1 {
            return Some(same_crate[0]);
        }
        None
    }

    /// Index of the function defined in `path` whose `fn` keyword is on
    /// `line`.
    pub fn fn_at(&self, path: &str, line: usize) -> Option<usize> {
        self.fns.iter().position(|f| f.path == path && f.line == line)
    }

    fn compute_hot_set(&mut self) {
        let mut queue: Vec<usize> = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            for s in &f.spans {
                if HOT_SPANS.contains(&s.as_str()) {
                    self.hot.insert(i, s.clone());
                    queue.push(i);
                    break;
                }
            }
        }
        while let Some(i) = queue.pop() {
            let root = self.hot[&i].clone();
            let calls = self.fns[i].calls.clone();
            for c in &calls {
                if let Some(j) = self.resolve(&c.name, c.qual.as_deref(), i) {
                    if let std::collections::hash_map::Entry::Vacant(e) = self.hot.entry(j) {
                        e.insert(root.clone());
                        queue.push(j);
                    }
                }
            }
        }
    }

    // ---- collective-consistency -------------------------------------

    fn check_consistency(&mut self) {
        // Phase 1: resolve every function's effect stream (memoized).
        let mut memo: Vec<Option<Vec<RNode>>> = vec![None; self.fns.len()];
        for i in 0..memo.len() {
            let mut visiting = HashSet::new();
            self.resolve_stream(i, &mut memo, &mut visiting);
        }
        // Phase 2: per-function site checks.
        let mut findings = Vec::new();
        for (i, m) in memo.iter().enumerate() {
            let stream = m.clone().unwrap_or_default();
            let mut out = Vec::new();
            check_stream(&stream, &[], &mut out);
            for (line, col, cond, detail) in out {
                findings.push(ConsistencyFinding {
                    fn_idx: i,
                    line,
                    col,
                    message: format!(
                        "collective sequence diverges across this rank-dependent branch \
                         (`{cond}`): {detail}"
                    ),
                });
            }
        }
        findings.sort_by_key(|f| (self.fns[f.fn_idx].path.clone(), f.line, f.col));
        self.consistency = findings;
    }

    /// Resolves function `i`'s effect stream, splicing known callees.
    fn resolve_stream(
        &self,
        i: usize,
        memo: &mut Vec<Option<Vec<RNode>>>,
        visiting: &mut HashSet<usize>,
    ) -> Vec<RNode> {
        if let Some(s) = &memo[i] {
            return s.clone();
        }
        if !visiting.insert(i) {
            return Vec::new(); // recursion: assume no collectives in the cycle
        }
        let effs = self.fns[i].effs.clone();
        let stream = self.resolve_effs(&effs, i, memo, visiting, true);
        visiting.remove(&i);
        memo[i] = Some(stream.clone());
        stream
    }

    fn resolve_effs(
        &self,
        effs: &[Eff],
        from: usize,
        memo: &mut Vec<Option<Vec<RNode>>>,
        visiting: &mut HashSet<usize>,
        own: bool,
    ) -> Vec<RNode> {
        let mut out = Vec::new();
        for e in effs {
            match e {
                Eff::Coll(name) => out.push(RNode::C(name.clone())),
                Eff::Call { name, qual } => {
                    match self.resolve(name, qual.as_deref(), from) {
                        Some(j) => {
                            let spliced = self.resolve_stream(j, memo, visiting);
                            // Spliced branch sites belong to the callee:
                            // strip ownership so they are not re-flagged here.
                            out.extend(spliced.into_iter().map(strip_site));
                        }
                        None => {
                            // Unknown call: if the bare name is in the graph
                            // but ambiguous with differing footprints it
                            // could hide collectives — represent opaquely
                            // only when some candidate has collectives.
                            if let Some(cands) = self.by_name.get(name) {
                                let any_coll = cands
                                    .iter()
                                    .any(|&j| effs_have_coll(&self.fns[j].effs));
                                if any_coll {
                                    out.push(RNode::O(name.clone()));
                                }
                            }
                            // Names not in the graph (std, methods on
                            // non-workspace types): assume collective-free.
                        }
                    }
                }
                Eff::Loop(body) => {
                    let b = self.resolve_effs(body, from, memo, visiting, own);
                    out.push(RNode::L(b));
                }
                Eff::Alt(a) => {
                    let arms: Vec<(Vec<RNode>, bool)> = a
                        .arms
                        .iter()
                        .map(|arm| {
                            let r = self.resolve_effs(arm, from, memo, visiting, own);
                            let term = stream_terminates(arm);
                            (r, term)
                        })
                        .collect();
                    out.push(RNode::A {
                        rank: a.rank,
                        site: if own {
                            Some((a.line, a.col, a.cond_text.clone()))
                        } else {
                            None
                        },
                        arms,
                    });
                }
                Eff::Ret => break, // code after a top-level return is dead
            }
        }
        out
    }
}

fn strip_site(n: RNode) -> RNode {
    match n {
        RNode::A { rank, arms, .. } => RNode::A {
            rank,
            site: None,
            arms: arms
                .into_iter()
                .map(|(s, t)| (s.into_iter().map(strip_site).collect(), t))
                .collect(),
        },
        RNode::L(b) => RNode::L(b.into_iter().map(strip_site).collect()),
        other => other,
    }
}

/// Does a raw effect stream end in a `return` on every path? (Shallow: a
/// top-level `Ret`, or a trailing Alt all of whose arms terminate.)
fn stream_terminates(effs: &[Eff]) -> bool {
    for e in effs {
        match e {
            Eff::Ret => return true,
            Eff::Alt(a) if !a.arms.is_empty() && a.arms.iter().all(|x| stream_terminates(x)) => {
                return true
            }
            _ => {}
        }
    }
    false
}

fn effs_have_coll(effs: &[Eff]) -> bool {
    effs.iter().any(|e| match e {
        Eff::Coll(_) => true,
        Eff::Loop(b) => effs_have_coll(b),
        Eff::Alt(a) => a.arms.iter().any(|x| effs_have_coll(x)),
        _ => false,
    })
}

fn rnodes_have_coll(s: &[RNode]) -> bool {
    s.iter().any(|n| match n {
        RNode::C(_) => true,
        RNode::O(_) => true,
        RNode::L(b) => rnodes_have_coll(b),
        RNode::A { arms, .. } => arms.iter().any(|(b, _)| rnodes_have_coll(b)),
    })
}

/// Drops collective-free structure from a resolved stream, so comparison is
/// about collective *content*: a loop or branch that issues no collectives
/// (and, for branch arms, does not return early) cannot change the
/// collective sequence, and keeping it would flag rank branches whose arms
/// differ only in local computation shape.
fn normalize(s: &[RNode]) -> Vec<RNode> {
    let mut out = Vec::new();
    for n in s {
        match n {
            RNode::C(x) => out.push(RNode::C(x.clone())),
            RNode::O(x) => out.push(RNode::O(x.clone())),
            RNode::L(b) => {
                let nb = normalize(b);
                if !nb.is_empty() {
                    out.push(RNode::L(nb));
                }
            }
            RNode::A { rank, site, arms } => {
                let narms: Vec<(Vec<RNode>, bool)> =
                    arms.iter().map(|(b, t)| (normalize(b), *t)).collect();
                // An alternation is only observable if some arm issues a
                // collective or terminates the function early.
                if narms.iter().any(|(b, t)| !b.is_empty() || *t) {
                    out.push(RNode::A { rank: *rank, site: site.clone(), arms: narms });
                }
            }
        }
    }
    out
}

fn rnode_eq(a: &RNode, b: &RNode) -> bool {
    match (a, b) {
        (RNode::C(x), RNode::C(y)) => x == y,
        (RNode::O(x), RNode::O(y)) => x == y,
        (RNode::L(x), RNode::L(y)) => rseq_eq(x, y),
        (RNode::A { arms: x, .. }, RNode::A { arms: y, .. }) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|((s1, t1), (s2, t2))| t1 == t2 && rseq_eq(s1, s2))
        }
        _ => false,
    }
}

fn rseq_eq(a: &[RNode], b: &[RNode]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| rnode_eq(x, y))
}

/// Renders a resolved stream as a short human-readable sequence.
fn render_seq(s: &[RNode]) -> String {
    let mut parts = Vec::new();
    for n in s {
        match n {
            RNode::C(name) => parts.push(name.clone()),
            RNode::O(name) => parts.push(format!("{name}?")),
            RNode::L(b) => parts.push(format!("loop[{}]", render_seq(b))),
            RNode::A { arms, .. } => {
                let inner: Vec<String> =
                    arms.iter().map(|(b, _)| render_seq(b)).collect();
                parts.push(format!("({})", inner.join(" | ")));
            }
        }
        if parts.len() >= 8 {
            parts.push("...".to_string());
            break;
        }
    }
    if parts.is_empty() {
        "<none>".to_string()
    } else {
        parts.join(" -> ")
    }
}

/// Walks a resolved stream checking every owned rank-dependent branch:
/// each arm extended with the function continuation (empty when the arm
/// returns early) must yield the same collective sequence.
fn check_stream(
    effs: &[RNode],
    cont: &[RNode],
    out: &mut Vec<(usize, usize, String, String)>,
) {
    for (i, n) in effs.iter().enumerate() {
        match n {
            RNode::A { rank, site, arms } => {
                // Continuation after this branch inside the function.
                let mut rest: Vec<RNode> = effs[i + 1..].to_vec();
                rest.extend_from_slice(cont);
                if *rank {
                    if let Some((line, col, cond)) = site {
                        let fulls: Vec<Vec<RNode>> = arms
                            .iter()
                            .map(|(seq, term)| {
                                let mut v = seq.clone();
                                if !term {
                                    v.extend(rest.iter().cloned());
                                }
                                normalize(&v)
                            })
                            .collect();
                        let diverges = fulls
                            .windows(2)
                            .any(|w| !rseq_eq(&w[0], &w[1]));
                        let any_coll = fulls.iter().any(|s| rnodes_have_coll(s));
                        if diverges && any_coll {
                            let shown: Vec<String> = fulls
                                .iter()
                                .take(3)
                                .map(|s| render_seq(s))
                                .collect();
                            out.push((
                                *line,
                                *col,
                                cond.clone(),
                                format!("per-path sequences [{}]", shown.join("] vs [")),
                            ));
                        }
                    }
                }
                // Recurse into owned arms with their real continuation.
                if site.is_some() {
                    for (seq, term) in arms {
                        let arm_cont: &[RNode] = if *term { &[] } else { &rest };
                        check_stream(seq, arm_cont, out);
                    }
                }
            }
            RNode::L(body) => check_stream(body, &[], out),
            _ => {}
        }
    }
}

/// Collects call sites and telemetry span labels from a lowered body.
fn collect_calls(nodes: &[Node], calls: &mut Vec<CallSite>, spans: &mut Vec<String>) {
    for (i, n) in nodes.iter().enumerate() {
        match n {
            Node::Call(c) => {
                if !c.bang {
                    calls.push(CallSite {
                        name: c.name.clone(),
                        qual: c.qual.clone(),
                        method: c.method,
                        argc: c.argc,
                        line: c.line,
                    });
                }
                if c.name == "span" {
                    // `span("label")`: the label literal follows the call
                    // event in the flattened stream.
                    if let Some(Node::Lit { text, .. }) = nodes.get(i + 1) {
                        let label = text.trim_matches('"');
                        spans.push(label.to_string());
                    }
                }
            }
            Node::Let(l) => collect_calls(&l.init, calls, spans),
            Node::Branch(b) => {
                collect_calls(&b.cond, calls, spans);
                for a in &b.arms {
                    collect_calls(&a.body, calls, spans);
                }
            }
            Node::Loop { body, .. } | Node::Closure { body } | Node::Block(body) => {
                collect_calls(body, calls, spans)
            }
            Node::Return { value, .. } => collect_calls(value, calls, spans),
            _ => {}
        }
    }
}

/// Lowers a parsed body to an effect stream.
pub fn lower(nodes: &[Node]) -> Vec<Eff> {
    let mut out = Vec::new();
    lower_into(nodes, &mut out);
    out
}

fn lower_into(nodes: &[Node], out: &mut Vec<Eff>) {
    for n in nodes {
        match n {
            Node::Call(c) => {
                if c.bang {
                    continue; // macros: no collectives hide in macro calls here
                }
                if c.method && is_collective(&c.name, c.argc) {
                    out.push(Eff::Coll(c.name.clone()));
                } else {
                    out.push(Eff::Call { name: c.name.clone(), qual: c.qual.clone() });
                }
            }
            Node::Let(l) => lower_into(&l.init, out),
            Node::Branch(b) => {
                lower_into(&b.cond, out);
                let arms: Vec<Vec<Eff>> = b.arms.iter().map(|a| lower(&a.body)).collect();
                out.push(Eff::Alt(AltEff {
                    line: b.line,
                    col: b.col,
                    cond_text: b.cond_text.clone(),
                    rank: b.mentions_rank,
                    arms,
                }));
            }
            Node::Loop { body, line: _ } => {
                let b = lower(body);
                out.push(Eff::Loop(b));
            }
            Node::Return { value, .. } => {
                lower_into(value, out);
                out.push(Eff::Ret);
            }
            Node::Closure { body } => {
                // A closure's effects run where it is *called*; almost all
                // closures here are invoked in place (map/fold/run_gang), so
                // inline them — conservative in the right direction for
                // consistency checking.
                lower_into(body, out);
            }
            Node::Block(body) => lower_into(body, out),
            Node::Use { .. } | Node::Lit { .. } | Node::Try { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scope::SourceFile;
    use std::path::PathBuf;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, Option<String>, FileAst)> = files
            .iter()
            .map(|(path, src)| {
                let sf = SourceFile::parse(&PathBuf::from(path), src);
                let crate_name = sf.class.crate_name.clone();
                (sf.path.clone(), crate_name, parse_file(&sf))
            })
            .collect();
        let refs: Vec<(String, Option<String>, &FileAst)> =
            parsed.iter().map(|(p, c, a)| (p.clone(), c.clone(), a)).collect();
        CallGraph::build(&refs)
    }

    #[test]
    fn rank_divergent_direct_collectives_are_flagged() {
        let g = graph_of(&[(
            "crates/comm/src/a.rs",
            "pub fn entry(c: &C) {\n\
                if c.rank() == 0 {\n\
                    c.barrier();\n\
                } else {\n\
                    c.allreduce(&mut [0.0], Op::Sum);\n\
                }\n\
             }\n",
        )]);
        assert_eq!(g.consistency.len(), 1);
        assert_eq!(g.consistency[0].line, 2);
    }

    #[test]
    fn symmetric_branches_are_clean() {
        let g = graph_of(&[(
            "crates/comm/src/a.rs",
            "pub fn entry(c: &C) {\n\
                if c.rank() == 0 {\n\
                    prepare_root();\n\
                }\n\
                c.barrier();\n\
             }\n\
             fn prepare_root() {}\n",
        )]);
        assert!(g.consistency.is_empty(), "{:?}", g.consistency);
    }

    #[test]
    fn divergence_through_helpers_is_caught_interprocedurally() {
        let g = graph_of(&[(
            "crates/comm/src/a.rs",
            "pub fn entry(c: &C) {\n\
                if c.rank() == 0 {\n\
                    warm(c);\n\
                } else {\n\
                    cold(c);\n\
                }\n\
             }\n\
             fn warm(c: &C) {\n    c.allreduce(&mut [0.0], Op::Sum);\n}\n\
             fn cold(c: &C) {\n    c.barrier();\n}\n",
        )]);
        assert_eq!(g.consistency.len(), 1, "{:?}", g.consistency);
        assert_eq!(g.consistency[0].line, 2);
    }

    #[test]
    fn identical_helpers_through_branches_are_clean() {
        let g = graph_of(&[(
            "crates/comm/src/a.rs",
            "pub fn entry(c: &C) {\n\
                if c.rank() == 0 {\n\
                    warm(c);\n\
                } else {\n\
                    cold(c);\n\
                }\n\
             }\n\
             fn warm(c: &C) {\n    log_warm();\n    c.barrier();\n}\n\
             fn cold(c: &C) {\n    c.barrier();\n}\n",
        )]);
        assert!(g.consistency.is_empty(), "{:?}", g.consistency);
    }

    #[test]
    fn early_return_skipping_a_collective_is_flagged() {
        let g = graph_of(&[(
            "crates/comm/src/a.rs",
            "pub fn entry(c: &C) {\n\
                if c.rank() != 0 {\n\
                    return;\n\
                }\n\
                c.barrier();\n\
             }\n",
        )]);
        assert_eq!(g.consistency.len(), 1, "{:?}", g.consistency);
    }

    #[test]
    fn early_return_with_no_collectives_after_is_clean() {
        let g = graph_of(&[(
            "crates/comm/src/a.rs",
            "pub fn entry(c: &C) -> usize {\n\
                if c.rank() != 0 {\n\
                    return 0;\n\
                }\n\
                local_work()\n\
             }\n",
        )]);
        assert!(g.consistency.is_empty(), "{:?}", g.consistency);
    }

    #[test]
    fn rank_gated_send_without_collectives_is_clean() {
        // p2p sends may legitimately be rank-dependent.
        let g = graph_of(&[(
            "crates/comm/src/a.rs",
            "pub fn entry(c: &C) {\n\
                if c.rank() == 0 {\n\
                    c.send(1, &buf);\n\
                } else {\n\
                    c.recv(0, &mut buf);\n\
                }\n\
                c.barrier();\n\
             }\n",
        )]);
        assert!(g.consistency.is_empty(), "{:?}", g.consistency);
    }

    #[test]
    fn hot_set_follows_calls_from_span_roots() {
        let g = graph_of(&[(
            "crates/optim/src/a.rs",
            "pub fn newton_iter(ws: &mut W) {\n\
                let _g = span(\"newton.iter\");\n\
                step(ws);\n\
             }\n\
             fn step(ws: &mut W) {\n    inner(ws);\n}\n\
             fn inner(_ws: &mut W) {}\n\
             fn unrelated() {}\n",
        )]);
        let hot_names: Vec<&str> = g
            .hot
            .keys()
            .map(|&i| g.fns[i].name.as_str())
            .collect();
        assert!(hot_names.contains(&"newton_iter"));
        assert!(hot_names.contains(&"step"));
        assert!(hot_names.contains(&"inner"));
        assert!(!hot_names.contains(&"unrelated"));
    }

    #[test]
    fn collective_split_is_argc_sensitive() {
        assert!(is_collective("split", 2));
        assert!(!is_collective("split", 1));
        assert!(is_collective("try_barrier", 0));
        assert!(is_collective("allgather", 1));
        assert!(!is_collective("send", 2));
    }
}
