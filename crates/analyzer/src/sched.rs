//! `analyzer::sched` — a loom-lite schedule explorer for the
//! message-passing runtime.
//!
//! The simulated MPI backend (`diffreg_comm::ThreadComm`) runs one OS
//! thread per rank, so a rank-dependent branch around a collective is a
//! *schedule-dependent* hang: a test can pass a thousand times and still
//! deadlock on the machine where the OS scheduler picks a different
//! interleaving. This module removes the OS from the loop:
//!
//! * [`SchedComm`] is a cooperative re-implementation of the
//!   [`Comm`] trait whose message-level protocols mirror `ThreadComm`
//!   exactly (buffered tag-matched sends, centralized barrier,
//!   gather-to-root/fan-out allreduce, pairwise alltoallv, communicator
//!   splits). Every communication call is a **yield point**: the rank
//!   thread parks and a deterministic scheduler decides who runs next.
//! * [`Explorer`] drives a DFS over those yield points under a
//!   **bounded-preemption budget** (CHESS-style): within the budget the
//!   interleaving space is explored exhaustively; beyond it, a seeded
//!   deterministic default schedule is followed.
//! * Each execution is bit-reproducible from its **schedule** (the list of
//!   rank choices) and the explorer is bit-reproducible from its **seed**,
//!   so a failing interleaving replays exactly ([`Explorer::replay`], and
//!   the seed line printed in [`ExploreReport::summary`]).
//!
//! Detected defects:
//! * **deadlock** — every unfinished rank is parked and no parked
//!   operation can make progress (e.g. a rank-gated `barrier`): reported
//!   with a who-waits-on-what table and the exact schedule;
//! * **divergence** — two schedules complete but produce different
//!   per-rank results (nondeterminism, e.g. via [`SchedComm::recv_any`]);
//! * **rank panic** — a rank's closure panics under some schedule.

use diffreg_comm::{CollOp, Comm, CommData, CommStats, ReduceOp, TAG_INTERNAL};
use diffreg_testkit::Rng;
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Panic payload used to unwind rank threads when an execution is torn
/// down (deadlock detected, step limit hit). Never user-visible.
struct SchedAbort;

/// Installs a process-wide panic hook that silences [`SchedAbort`] unwinds
/// (they are control flow, not failures) and delegates everything else.
fn install_quiet_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SchedAbort>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// A buffered message in flight: `(comm, src_global, tag)` key plus payload.
struct Envelope {
    comm: usize,
    src: usize,
    tag: u64,
    type_name: &'static str,
    bytes: usize,
    payload: Box<dyn Any + Send>,
}

/// What a parked rank wants to do next (the yield-point descriptor).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// Buffered send: always ready.
    Send { to: usize },
    /// Receive from a specific source: ready iff a matching envelope is
    /// buffered.
    Recv { comm: usize, from: usize, tag: u64 },
    /// Receive from any source (`MPI_ANY_SOURCE`): ready iff any envelope
    /// with the tag is buffered. The intentional nondeterminism hook.
    RecvAny { comm: usize, tag: u64 },
    /// Barrier arrival for generation `gen` of `comm`'s barrier.
    Barrier { comm: usize, gen: u64 },
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Send { to } => write!(f, "send(to={to})"),
            Op::Recv { from, tag, .. } => write!(f, "recv(src={from}, tag={tag})"),
            Op::RecvAny { tag, .. } => write!(f, "recv_any(tag={tag})"),
            Op::Barrier { comm, gen } => write!(f, "barrier(comm={comm}, gen={gen})"),
        }
    }
}

/// Per-communicator barrier state (generation counter).
struct BarState {
    gen: u64,
}

/// A registered communicator: its members as global ranks, in comm order.
struct CommGroup {
    members: Vec<usize>,
}

/// The shared world state of one execution.
struct Core {
    /// Parked-op slot per global rank (None = running or finished).
    want: Vec<Option<Op>>,
    /// Ranks whose closure returned or unwound.
    finished: Vec<bool>,
    /// Mailboxes per destination global rank, in arrival order.
    mail: Vec<Vec<Envelope>>,
    /// Registered communicators; id 0 is the world.
    comms: Vec<CommGroup>,
    /// Barrier state per communicator.
    bars: Vec<BarState>,
    /// The rank currently granted a step (None while scheduling).
    granted: Option<usize>,
    /// Execution teardown flag: parked ranks unwind with [`SchedAbort`].
    poisoned: bool,
    /// First user panic observed: (rank, rendered payload).
    panic: Option<(usize, String)>,
    /// Per-global-rank traffic counters.
    stats: Vec<CommStats>,
}

struct Shared {
    mx: Mutex<Core>,
    cv: Condvar,
}

impl Shared {
    fn new(ranks: usize) -> Arc<Shared> {
        Arc::new(Shared {
            mx: Mutex::new(Core {
                want: vec![None; ranks],
                finished: vec![false; ranks],
                mail: (0..ranks).map(|_| Vec::new()).collect(),
                comms: vec![CommGroup { members: (0..ranks).collect() }],
                bars: vec![BarState { gen: 0 }],
                granted: None,
                poisoned: false,
                panic: None,
                stats: vec![CommStats::default(); ranks],
            }),
            cv: Condvar::new(),
        })
    }
}

/// Is rank `r` at a stable yield point (or finished)?
///
/// A rank whose parked barrier op references an already-advanced
/// generation has been *released* — it just has not woken from its
/// condvar wait yet and will clear its `want` and keep running without a
/// grant. The scheduler must treat such a rank as running, otherwise the
/// stale want is misread as a blocked op and a spurious deadlock is
/// declared.
fn parked(core: &Core, r: usize) -> bool {
    if core.finished[r] {
        return true;
    }
    match &core.want[r] {
        None => false,
        Some(Op::Barrier { comm, gen }) => core.bars[*comm].gen == *gen,
        Some(_) => true,
    }
}

/// Is `op` of global rank `r` able to make progress right now?
fn ready(core: &Core, r: usize, op: &Op) -> bool {
    match op {
        Op::Send { .. } => true,
        Op::Recv { comm, from, tag } => core.mail[r]
            .iter()
            .any(|e| e.comm == *comm && e.src == *from && e.tag == *tag),
        Op::RecvAny { comm, tag } => {
            core.mail[r].iter().any(|e| e.comm == *comm && e.tag == *tag)
        }
        Op::Barrier { comm, gen } => {
            if core.bars[*comm].gen != *gen {
                return false; // stale want from a just-released generation
            }
            core.comms[*comm].members.iter().all(|&m| {
                matches!(core.want[m], Some(Op::Barrier { comm: c, gen: g })
                    if c == *comm && g == *gen)
            })
        }
    }
}

/// One rank's endpoint of the cooperative communicator.
///
/// Implements the full [`Comm`] trait with the same message-level protocols
/// as `ThreadComm`, plus [`SchedComm::recv_any`] for modelling
/// `MPI_ANY_SOURCE`-style nondeterminism.
pub struct SchedComm {
    shared: Arc<Shared>,
    /// This endpoint's global (world) rank.
    grank: usize,
    /// Communicator id (0 = world).
    comm_id: usize,
    /// Rank within the communicator.
    rank: usize,
    /// Members of the communicator as global ranks, in comm order.
    members: Vec<usize>,
}

impl SchedComm {
    /// Parks at a yield point wanting `op`; once granted, runs `effect`
    /// atomically on the world state and returns its value.
    fn step<T>(&self, op: Op, effect: impl FnOnce(&mut Core) -> T) -> T {
        let mut core = self.shared.mx.lock().unwrap_or_else(|e| e.into_inner());
        if core.poisoned {
            drop(core);
            std::panic::panic_any(SchedAbort);
        }
        let is_barrier_gen = match &op {
            Op::Barrier { comm, gen } => Some((*comm, *gen)),
            _ => None,
        };
        core.want[self.grank] = Some(op);
        self.shared.cv.notify_all();
        loop {
            if core.poisoned {
                core.want[self.grank] = None;
                drop(core);
                std::panic::panic_any(SchedAbort);
            }
            // Barrier release: the generation advanced while we were parked.
            if let Some((comm, gen)) = is_barrier_gen {
                if core.bars[comm].gen != gen {
                    core.want[self.grank] = None;
                    self.shared.cv.notify_all();
                    return effect(&mut core);
                }
            }
            if core.granted == Some(self.grank) {
                break;
            }
            core = self.shared.cv.wait(core).unwrap_or_else(|e| e.into_inner());
        }
        core.granted = None;
        core.want[self.grank] = None;
        let out = effect(&mut core);
        self.shared.cv.notify_all();
        out
    }

    fn send_raw(&self, dst_local: usize, tag: u64, type_name: &'static str, bytes: usize, payload: Box<dyn Any + Send>) {
        assert!(dst_local < self.members.len(), "send to out-of-range rank {dst_local}");
        let to = self.members[dst_local];
        let comm = self.comm_id;
        let me = self.grank;
        self.step(Op::Send { to }, move |core| {
            if to != me {
                core.stats[me].messages_sent += 1;
                core.stats[me].bytes_sent += bytes as u64;
            }
            core.mail[to].push(Envelope { comm, src: me, tag, type_name, bytes, payload });
        });
    }

    fn recv_raw(&self, src_local: usize, tag: u64) -> Envelope {
        assert!(src_local < self.members.len(), "recv from out-of-range rank {src_local}");
        let from = self.members[src_local];
        let comm = self.comm_id;
        let me = self.grank;
        self.step(Op::Recv { comm, from, tag }, move |core| {
            let pos = core.mail[me]
                .iter()
                .position(|e| e.comm == comm && e.src == from && e.tag == tag)
                .expect("scheduler granted recv without a matching envelope");
            let env = core.mail[me].remove(pos);
            if env.src != me {
                core.stats[me].messages_received += 1;
                core.stats[me].bytes_received += env.bytes as u64;
            }
            env
        })
    }

    /// Receives the next buffered message with `tag` from *any* source
    /// (`MPI_ANY_SOURCE`): returns `(source rank, payload)`. This is the
    /// one deliberately schedule-dependent primitive — the explorer's
    /// divergence detector exists to catch results that depend on it.
    pub fn recv_any<T: CommData>(&self, tag: u64) -> (usize, Vec<T>) {
        let comm = self.comm_id;
        let me = self.grank;
        let env = self.step(Op::RecvAny { comm, tag }, move |core| {
            let pos = core.mail[me]
                .iter()
                .position(|e| e.comm == comm && e.tag == tag)
                .expect("scheduler granted recv_any without a matching envelope");
            let env = core.mail[me].remove(pos);
            if env.src != me {
                core.stats[me].messages_received += 1;
                core.stats[me].bytes_received += env.bytes as u64;
            }
            env
        });
        let src_local = self
            .members
            .iter()
            .position(|&g| g == env.src)
            .expect("recv_any envelope from outside the communicator");
        let data = env
            .payload
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| {
                panic!(
                    "sched recv_any type mismatch: expected Vec<{}>, got {} ({} bytes)",
                    std::any::type_name::<T>(),
                    env.type_name,
                    env.bytes
                )
            });
        (src_local, *data)
    }

    fn coll_tag(op: CollOp) -> u64 {
        TAG_INTERNAL + op as u64
    }
}

impl Comm for SchedComm {
    type Sub = SchedComm;

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn barrier(&self) {
        let comm = self.comm_id;
        let core = self.shared.mx.lock().unwrap_or_else(|e| e.into_inner());
        let gen = core.bars[comm].gen;
        drop(core);
        self.step(Op::Barrier { comm, gen }, move |core| {
            // Only the granted rank advances the generation; released peers
            // run this effect too but observe the already-bumped counter.
            if core.bars[comm].gen == gen {
                core.bars[comm].gen += 1;
            }
        });
        // Re-park is unnecessary: either we were granted (and released the
        // generation) or the generation advanced past us while parked.
    }

    fn send<T: CommData>(&self, dst: usize, tag: u64, data: Vec<T>) {
        let bytes = data.len() * std::mem::size_of::<T>();
        self.send_raw(dst, tag, std::any::type_name::<T>(), bytes, Box::new(data));
    }

    fn recv<T: CommData>(&self, src: usize, tag: u64) -> Vec<T> {
        let env = self.recv_raw(src, tag);
        *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "sched recv type mismatch from rank {src} tag {tag}: expected Vec<{}>, got {} \
                 ({} bytes)",
                std::any::type_name::<T>(),
                env.type_name,
                env.bytes
            )
        })
    }

    fn broadcast<T: CommData + Clone>(&self, root: usize, data: &mut Vec<T>) {
        if self.size() == 1 {
            return;
        }
        let tag = Self::coll_tag(CollOp::Broadcast);
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, tag, data.clone());
                }
            }
        } else {
            *data = self.recv(root, tag);
        }
    }

    fn allgather<T: CommData + Clone>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        let tag = Self::coll_tag(CollOp::Allgather);
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
        for dst in 0..self.size() {
            if dst != self.rank {
                self.send(dst, tag, data.clone());
            }
        }
        for src in 0..self.size() {
            if src == self.rank {
                out.push(data.clone());
            } else {
                out.push(self.recv(src, tag));
            }
        }
        out
    }

    fn alltoallv<T: CommData>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(parts.len(), self.size(), "alltoallv part count");
        let tag = Self::coll_tag(CollOp::Alltoallv);
        let mut own: Option<Vec<T>> = None;
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == self.rank {
                own = Some(part);
            } else {
                self.send(dst, tag, part);
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(own.take().expect("own alltoallv part"));
            } else {
                out.push(self.recv(src, tag));
            }
        }
        out
    }

    fn allreduce(&self, vals: &mut [f64], op: ReduceOp) {
        if self.size() == 1 {
            return;
        }
        let send_tag = Self::coll_tag(CollOp::ReduceSend);
        let result_tag = Self::coll_tag(CollOp::ReduceResult);
        if self.rank == 0 {
            let mut acc = vals.to_vec();
            for src in 1..self.size() {
                let part: Vec<f64> = self.recv(src, send_tag);
                assert_eq!(part.len(), acc.len(), "allreduce contribution length");
                for (a, b) in acc.iter_mut().zip(part) {
                    *a = op.apply(*a, b);
                }
            }
            for dst in 1..self.size() {
                self.send(dst, result_tag, acc.clone());
            }
            vals.copy_from_slice(&acc);
        } else {
            self.send(0, send_tag, vals.to_vec());
            let acc: Vec<f64> = self.recv(0, result_tag);
            assert_eq!(acc.len(), vals.len(), "allreduce result length");
            vals.copy_from_slice(&acc);
        }
    }

    fn allreduce_usize(&self, vals: &mut [usize], op: ReduceOp) {
        if self.size() == 1 {
            return;
        }
        let send_tag = Self::coll_tag(CollOp::ReduceUsizeSend);
        let result_tag = Self::coll_tag(CollOp::ReduceUsizeResult);
        // diffreg-allow(collective-consistency): interior of the collective implementation — rank 0 is the aggregation root by protocol design
        if self.rank == 0 {
            let mut acc = vals.to_vec();
            for src in 1..self.size() {
                let part: Vec<usize> = self.recv(src, send_tag);
                assert_eq!(part.len(), acc.len(), "allreduce_usize contribution length");
                for (a, b) in acc.iter_mut().zip(part) {
                    *a = op.apply_usize(*a, b);
                }
            }
            for dst in 1..self.size() {
                self.send(dst, result_tag, acc.clone());
            }
            vals.copy_from_slice(&acc);
        } else {
            self.send(0, send_tag, vals.to_vec());
            let acc: Vec<usize> = self.recv(0, result_tag);
            vals.copy_from_slice(&acc);
        }
    }

    fn split(&self, color: usize, key: usize) -> SchedComm {
        let infos = self.allgather(vec![(color, key, self.rank)]);
        let mut group: Vec<(usize, usize, usize)> =
            infos.into_iter().map(|v| v[0]).filter(|&(c, _, _)| c == color).collect();
        group.sort_by_key(|&(_, k, r)| (k, r));
        let rank = group
            .iter()
            .position(|&(_, _, r)| r == self.rank)
            .expect("split: caller not in its own color group");
        let members: Vec<usize> = group.iter().map(|&(_, _, r)| self.members[r]).collect();
        // Register (or find) the communicator for this member list. All
        // members compute the identical list, so the id is agreed without
        // extra traffic.
        let mut core = self.shared.mx.lock().unwrap_or_else(|e| e.into_inner());
        let comm_id = match core.comms.iter().position(|g| g.members == members) {
            Some(id) => id,
            None => {
                core.comms.push(CommGroup { members: members.clone() });
                core.bars.push(BarState { gen: 0 });
                core.comms.len() - 1
            }
        };
        drop(core);
        SchedComm {
            shared: self.shared.clone(),
            grank: self.grank,
            comm_id,
            rank,
            members,
        }
    }

    fn stats(&self) -> CommStats {
        let core = self.shared.mx.lock().unwrap_or_else(|e| e.into_inner());
        core.stats[self.grank]
    }

    fn reset_stats(&self) {
        let mut core = self.shared.mx.lock().unwrap_or_else(|e| e.into_inner());
        core.stats[self.grank] = CommStats::default();
    }
}

/// A deadlock found by the explorer: the schedule that reaches it and the
/// who-waits-on-what table at the stuck state.
#[derive(Debug, Clone)]
pub struct DeadlockInfo {
    /// The exact schedule (chosen global rank per step) reaching the stuck
    /// state; feed to [`Explorer::replay`].
    pub schedule: Vec<usize>,
    /// One line per rank: finished / blocked-in-op.
    pub table: Vec<String>,
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "deadlock after {} steps; blocked-rank table:", self.schedule.len())?;
        for line in &self.table {
            writeln!(f, "  {line}")?;
        }
        write!(f, "  schedule: {:?}", self.schedule)
    }
}

/// Two completing schedules with different per-rank results.
#[derive(Debug, Clone)]
pub struct DivergenceInfo<R> {
    /// The reference schedule and its results.
    pub schedule_a: Vec<usize>,
    /// The diverging schedule and its results.
    pub schedule_b: Vec<usize>,
    /// Results under `schedule_a`.
    pub results_a: Vec<R>,
    /// Results under `schedule_b`.
    pub results_b: Vec<R>,
}

/// The outcome of one scheduled execution.
#[derive(Debug)]
pub enum RunOutcome<R> {
    /// Every rank completed; per-rank results indexed by world rank.
    Done(Vec<R>),
    /// No parked operation could make progress.
    Deadlock(DeadlockInfo),
    /// A rank's closure panicked: (rank, payload text, schedule).
    Panic(usize, String, Vec<usize>),
    /// The per-execution step bound was exceeded (livelock guard).
    StepLimit(Vec<usize>),
}

/// Aggregate result of an exploration.
#[derive(Debug)]
pub struct ExploreReport<R> {
    /// Number of executions run.
    pub schedules: usize,
    /// True when the bounded-preemption schedule space was fully explored
    /// (as opposed to stopping at `max_schedules` or at the first defect).
    pub exhausted: bool,
    /// First deadlock found, if any.
    pub deadlock: Option<DeadlockInfo>,
    /// First cross-schedule result divergence, if any.
    pub divergence: Option<DivergenceInfo<R>>,
    /// First rank panic, if any: (rank, payload, schedule).
    pub panic: Option<(usize, String, Vec<usize>)>,
    /// The reference (first completing) per-rank results.
    pub reference: Option<Vec<R>>,
    /// The seed the exploration ran under (exploration order is a pure
    /// function of it — rerunning with the same seed finds the same
    /// counterexample, bitwise).
    pub seed: u64,
}

impl<R: fmt::Debug> ExploreReport<R> {
    /// True when no defect was found.
    pub fn ok(&self) -> bool {
        self.deadlock.is_none() && self.divergence.is_none() && self.panic.is_none()
    }

    /// Human-readable verdict, including the replay line on failure.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "sched: explored {} schedule(s) (exhausted={}, seed=0x{:x})\n",
            self.schedules, self.exhausted, self.seed
        );
        if let Some(d) = &self.deadlock {
            s.push_str(&format!("DEADLOCK: {d}\n"));
            s.push_str(&format!(
                "replay with: Explorer::new(p).seeded(0x{:x}).replay(&{:?}, f)\n",
                self.seed, d.schedule
            ));
        }
        if let Some(dv) = &self.divergence {
            s.push_str(&format!(
                "DIVERGENCE: schedule {:?} -> {:?}\n         vs schedule {:?} -> {:?}\n",
                dv.schedule_a, dv.results_a, dv.schedule_b, dv.results_b
            ));
        }
        if let Some((r, p, sch)) = &self.panic {
            s.push_str(&format!("PANIC on rank {r}: {p}\n  schedule: {sch:?}\n"));
        }
        if self.ok() {
            s.push_str("no deadlock, no divergence, no panic\n");
        }
        s
    }
}

/// The bounded-preemption DFS explorer over [`SchedComm`] programs.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Number of world ranks.
    pub ranks: usize,
    /// Preemption budget per schedule (CHESS-style bound): switches away
    /// from a still-runnable rank beyond this count are not explored.
    pub max_preemptions: usize,
    /// Hard cap on the number of executions.
    pub max_schedules: usize,
    /// Per-execution step bound (livelock guard).
    pub max_steps: usize,
    /// Exploration seed (orders free choices deterministically).
    pub seed: u64,
}

impl Explorer {
    /// A default explorer over `ranks` ranks: preemption budget 2,
    /// at most 4096 schedules, 10⁴ steps per schedule, fixed seed.
    pub fn new(ranks: usize) -> Explorer {
        Explorer {
            ranks,
            max_preemptions: 2,
            max_schedules: 4096,
            max_steps: 10_000,
            seed: 0xD1FF_5EED,
        }
    }

    /// Builder: sets the exploration seed.
    pub fn seeded(mut self, seed: u64) -> Explorer {
        self.seed = seed;
        self
    }

    /// Builder: sets the preemption budget.
    pub fn preemptions(mut self, n: usize) -> Explorer {
        self.max_preemptions = n;
        self
    }

    /// Builder: caps the number of explored schedules.
    pub fn budget(mut self, n: usize) -> Explorer {
        self.max_schedules = n;
        self
    }

    /// Runs one execution under `schedule` (free choices beyond it follow
    /// the seeded default). Use to reproduce a counterexample exactly.
    pub fn replay<R, F>(&self, schedule: &[usize], f: F) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(&SchedComm) -> R + Sync,
    {
        let mut rng = Rng::new(self.seed);
        self.run_once(&f, schedule, &mut rng).0
    }

    /// Explores the schedule space of `f`, stopping at the first defect,
    /// at `max_schedules`, or when the bounded space is exhausted.
    pub fn explore<R, F>(&self, f: F) -> ExploreReport<R>
    where
        R: Send + Clone + PartialEq + fmt::Debug,
        F: Fn(&SchedComm) -> R + Sync,
    {
        let mut report = ExploreReport {
            schedules: 0,
            exhausted: false,
            deadlock: None,
            divergence: None,
            panic: None,
            reference: None,
            seed: self.seed,
        };
        let mut rng = Rng::new(self.seed);
        // DFS stack of schedule prefixes still to try.
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        let mut ref_schedule: Vec<usize> = Vec::new();
        while let Some(prefix) = stack.pop() {
            if report.schedules >= self.max_schedules {
                return report; // budget hit: not exhausted
            }
            report.schedules += 1;
            let (outcome, branches) = self.run_once(&f, &prefix, &mut rng);
            match outcome {
                RunOutcome::Done(results) => match &report.reference {
                    None => {
                        report.reference = Some(results);
                        ref_schedule = branches.schedule.clone();
                    }
                    Some(reference) => {
                        if *reference != results {
                            report.divergence = Some(DivergenceInfo {
                                schedule_a: ref_schedule.clone(),
                                schedule_b: branches.schedule.clone(),
                                results_a: reference.clone(),
                                results_b: results,
                            });
                            return report;
                        }
                    }
                },
                RunOutcome::Deadlock(info) => {
                    report.deadlock = Some(info);
                    return report;
                }
                RunOutcome::Panic(r, p, sch) => {
                    report.panic = Some((r, p, sch));
                    return report;
                }
                RunOutcome::StepLimit(sch) => {
                    report.panic = Some((
                        usize::MAX,
                        format!("step limit {} exceeded (livelock?)", self.max_steps),
                        sch,
                    ));
                    return report;
                }
            }
            // Expand unexplored alternatives, deepest-first.
            for (k, alts) in branches.alternatives.into_iter().enumerate().rev() {
                for alt in alts {
                    let mut p = branches.schedule[..k].to_vec();
                    p.push(alt);
                    stack.push(p);
                }
            }
        }
        report.exhausted = true;
        report
    }

    /// Runs one execution, following `prefix` then seeded defaults.
    /// Returns the outcome plus the executed schedule and, per step, the
    /// unexplored alternative choices (empty inside the prefix).
    fn run_once<R, F>(&self, f: &F, prefix: &[usize], rng: &mut Rng) -> (RunOutcome<R>, Branches)
    where
        R: Send,
        F: Fn(&SchedComm) -> R + Sync,
    {
        install_quiet_hook();
        let shared = Shared::new(self.ranks);
        let mut schedule: Vec<usize> = Vec::new();
        let mut alternatives: Vec<Vec<usize>> = Vec::new();
        let mut results: Vec<Option<R>> = (0..self.ranks).map(|_| None).collect();
        let mut deadlock: Option<DeadlockInfo> = None;
        let mut step_limit = false;

        let nranks = self.ranks;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.ranks);
            for r in 0..self.ranks {
                let shared = shared.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm = SchedComm {
                        shared: shared.clone(),
                        grank: r,
                        comm_id: 0,
                        rank: r,
                        members: (0..nranks).collect(),
                    };
                    let res = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    let mut core = shared.mx.lock().unwrap_or_else(|e| e.into_inner());
                    core.want[r] = None;
                    core.finished[r] = true;
                    let out = match res {
                        Ok(v) => Some(v),
                        Err(p) if p.downcast_ref::<SchedAbort>().is_some() => None,
                        Err(p) => {
                            if core.panic.is_none() {
                                core.panic = Some((r, payload_text(p)));
                            }
                            None
                        }
                    };
                    shared.cv.notify_all();
                    out
                }));
            }

            // The scheduler loop (runs on the caller's thread).
            let mut preemptions = 0usize;
            let mut core = shared.mx.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Wait until every rank is parked or finished (ranks with a
                // stale barrier want are self-releasing: still running).
                while !(0..self.ranks).all(|r| parked(&core, r)) {
                    core = shared.cv.wait(core).unwrap_or_else(|e| e.into_inner());
                }
                if core.panic.is_some() || (0..self.ranks).all(|r| core.finished[r]) {
                    // Poison so any still-parked peers unwind instead of
                    // waiting forever for a grant (keeps the joins below
                    // from hanging after a rank panic).
                    core.poisoned = true;
                    shared.cv.notify_all();
                    break;
                }
                let ready_set: Vec<usize> = (0..self.ranks)
                    .filter(|&r| {
                        !core.finished[r]
                            && core.want[r].as_ref().map(|op| ready(&core, r, op)).unwrap_or(false)
                    })
                    .collect();
                if ready_set.is_empty() {
                    // Deadlock: snapshot the table, tear the execution down.
                    let table: Vec<String> = (0..self.ranks)
                        .map(|r| {
                            if core.finished[r] {
                                format!("rank {r}: finished")
                            } else {
                                match &core.want[r] {
                                    Some(op) => format!("rank {r}: blocked in {op}"),
                                    None => format!("rank {r}: running"),
                                }
                            }
                        })
                        .collect();
                    deadlock = Some(DeadlockInfo { schedule: schedule.clone(), table });
                    core.poisoned = true;
                    shared.cv.notify_all();
                    break;
                }
                if schedule.len() >= self.max_steps {
                    step_limit = true;
                    core.poisoned = true;
                    shared.cv.notify_all();
                    break;
                }
                let k = schedule.len();
                let prev = schedule.last().copied();
                let cost = |c: usize| -> usize {
                    match prev {
                        Some(p) if p != c && ready_set.contains(&p) => 1,
                        _ => 0,
                    }
                };
                let chosen = if k < prefix.len() {
                    // Forced choice from the DFS prefix. A prefix is only
                    // ever built from previously observed ready sets, so it
                    // must still be ready here (executions are
                    // deterministic); fall back to a default otherwise.
                    if ready_set.contains(&prefix[k]) {
                        prefix[k]
                    } else {
                        ready_set[0]
                    }
                } else {
                    // Free choice: seeded shuffle, preemption-bounded.
                    let mut order = ready_set.clone();
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.index(i + 1));
                    }
                    *order
                        .iter()
                        .find(|&&c| preemptions + cost(c) <= self.max_preemptions)
                        .unwrap_or(&order[0])
                };
                preemptions += cost(chosen);
                // Record the unexplored alternatives for DFS expansion
                // (only beyond the prefix — the prefix's branch points were
                // expanded when the prefix was generated).
                let alts: Vec<usize> = if k < prefix.len() {
                    Vec::new()
                } else {
                    ready_set
                        .iter()
                        .copied()
                        .filter(|&c| c != chosen && preemptions + cost(c) <= self.max_preemptions)
                        .collect()
                };
                schedule.push(chosen);
                alternatives.push(alts);
                core.granted = Some(chosen);
                shared.cv.notify_all();
                while core.granted.is_some() {
                    core = shared.cv.wait(core).unwrap_or_else(|e| e.into_inner());
                }
            }
            drop(core);
            for (r, h) in handles.into_iter().enumerate() {
                if let Ok(Some(v)) = h.join().map_err(|_| ()) {
                    results[r] = Some(v);
                }
            }
        });

        let core = shared.mx.lock().unwrap_or_else(|e| e.into_inner());
        let outcome = if let Some((r, p)) = core.panic.clone() {
            RunOutcome::Panic(r, p, schedule.clone())
        } else if let Some(d) = deadlock {
            RunOutcome::Deadlock(d)
        } else if step_limit {
            RunOutcome::StepLimit(schedule.clone())
        } else if results.iter().all(Option::is_some) {
            RunOutcome::Done(results.into_iter().map(|r| r.expect("checked Some")).collect())
        } else {
            RunOutcome::Panic(
                usize::MAX,
                "rank aborted without result".into(),
                schedule.clone(),
            )
        };
        (outcome, Branches { schedule, alternatives })
    }
}

/// Rendered panic payload (mirrors `comm::threaded`).
fn payload_text(p: Box<dyn Any + Send>) -> String {
    match p.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".into(),
        },
    }
}

/// The executed schedule of one run plus the per-step unexplored choices.
struct Branches {
    schedule: Vec<usize>,
    alternatives: Vec<Vec<usize>>,
}
