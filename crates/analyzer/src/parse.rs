//! Recursive-descent parser: token stream → per-function ASTs.
//!
//! This is not a full Rust parser — it recovers exactly the structure the
//! dataflow lints need: function items with their bodies lowered to an
//! *event tree*. Each body is a sequence of [`Node`]s in (approximate)
//! evaluation order: call sites, identifier uses, string literals, `?`
//! operators, `let` bindings, branches (`if`/`else`, `match`), loops,
//! returns, and closures. Everything else (operators, literals, types,
//! casts) is structure-free and skipped. On anything it cannot parse the
//! parser degrades gracefully — unknown tokens are consumed without
//! producing events, never panicking — so arbitrary workspace code is safe
//! input.

use crate::lexer::TokenKind;
use crate::scope::SourceFile;

/// A call site event: `name(...)`, `recv.name(...)`, `qual::name(...)`, or
/// `name!(...)` for macros.
#[derive(Debug, Clone, PartialEq)]
pub struct CallNode {
    /// The called name (method, function, or macro name without `!`).
    pub name: String,
    /// True for `.name(...)` method-call syntax.
    pub method: bool,
    /// True for `name!(...)` macro invocations.
    pub bang: bool,
    /// The path segment immediately before `::name` (e.g. `Vec` in
    /// `Vec::with_capacity`), when present.
    pub qual: Option<String>,
    /// The receiver identifier directly before the `.`, for simple
    /// `ident.name(...)` chains.
    pub recv: Option<String>,
    /// Number of top-level arguments.
    pub argc: usize,
    /// 1-based source line of the call name.
    pub line: usize,
    /// 1-based source column of the call name.
    pub col: usize,
}

/// A `let` binding statement.
#[derive(Debug, Clone, PartialEq)]
pub struct LetNode {
    /// The bound name for simple `let x` / `let mut x` patterns.
    pub name: Option<String>,
    /// True for `let _ = ...` (explicit discard).
    pub underscore: bool,
    /// Initializer events, in evaluation order (empty for `let x;`).
    pub init: Vec<Node>,
    /// 1-based line of the `let` keyword.
    pub line: usize,
    /// 1-based column of the `let` keyword.
    pub col: usize,
}

/// One arm of a [`BranchNode`]: a pattern (or `if`/`else` side) plus body.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Pattern text for `match` arms (`"then"` / `"else"` for `if`).
    pub pat: String,
    /// Arm body events.
    pub body: Vec<Node>,
    /// 1-based line the arm starts on.
    pub line: usize,
}

/// An `if`/`else` chain or `match` expression.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchNode {
    /// True for `match`, false for `if`.
    pub is_match: bool,
    /// Condition / scrutinee events, in evaluation order.
    pub cond: Vec<Node>,
    /// Condition text (truncated), for diagnostics.
    pub cond_text: String,
    /// True when the condition mentions an identifier containing `rank`.
    pub mentions_rank: bool,
    /// The branch arms. An `if` without `else` gets an implicit empty arm.
    pub arms: Vec<Arm>,
    /// False when the `if` has no `else` (the implicit arm was added).
    pub has_else: bool,
    /// 1-based line of the `if`/`match` keyword.
    pub line: usize,
    /// 1-based column of the `if`/`match` keyword.
    pub col: usize,
}

/// One event in a lowered function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A call site.
    Call(CallNode),
    /// A string-literal operand (kept for `span("...")` detection).
    Lit {
        /// Literal text including quotes.
        text: String,
        /// 1-based source line.
        line: usize,
    },
    /// A plain identifier mention (variable read/write/move).
    Use {
        /// The identifier.
        name: String,
        /// 1-based source line.
        line: usize,
    },
    /// The `?` operator.
    Try {
        /// 1-based source line.
        line: usize,
    },
    /// A `let` binding.
    Let(LetNode),
    /// An `if`/`else` chain or `match`.
    Branch(BranchNode),
    /// A `loop`/`while`/`for` body (condition events folded in front).
    Loop {
        /// Condition + body events (executed per iteration).
        body: Vec<Node>,
        /// 1-based line of the loop keyword.
        line: usize,
    },
    /// A `return` (value events inside).
    Return {
        /// Events of the returned value expression.
        value: Vec<Node>,
        /// 1-based source line.
        line: usize,
    },
    /// A closure literal (body events; executed zero or more times).
    Closure {
        /// Closure body events.
        body: Vec<Node>,
    },
    /// A nested block or struct literal.
    Block(Vec<Node>),
}

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// True for plain `pub` visibility (`pub(crate)` etc. count as private).
    pub is_pub: bool,
    /// True when the function lives in test code (`#[cfg(test)]`/`#[test]`
    /// regions or a tests/benches/examples file).
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Lowered body events.
    pub body: Vec<Node>,
}

/// All function items of one source file, in source order.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// The functions (nested fns appear as their own entries).
    pub fns: Vec<FnDef>,
}

impl FileAst {
    /// The innermost function whose body span contains 1-based `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.line)
    }
}

/// Parses every function item in `f` (including fns nested in impls, mods,
/// and other fns).
pub fn parse_file(f: &SourceFile) -> FileAst {
    let mut fns = Vec::new();
    let code = &f.code;
    for i in 0..code.len() {
        let tok = &f.tokens[code[i]];
        if !(tok.kind == TokenKind::Ident && tok.text == "fn") {
            continue;
        }
        // `fn` must introduce a named item (not an `fn(...)` pointer type).
        let Some(&name_ti) = code.get(i + 1) else { continue };
        let name_tok = &f.tokens[name_ti];
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Find the body `{` (or `;` for a bodyless trait signature) at
        // paren/bracket depth 0.
        let mut j = i + 2;
        let mut depth = 0isize;
        let mut body_start = None;
        while let Some(&ti) = code.get(j) {
            let t = &f.tokens[ti];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(body_start) = body_start else { continue };
        let mut p = Parser { f, i: body_start, last_line: tok.line };
        let body = p.parse_block();
        let end_line = p.last_line;
        fns.push(FnDef {
            name: name_tok.text.clone(),
            is_pub: is_pub_at(f, i),
            in_test: f.is_test_token(code[i]),
            line: tok.line,
            end_line,
            body,
        });
    }
    FileAst { fns }
}

/// Is the `fn` keyword at code position `i` preceded by a plain `pub`
/// (allowing `const`/`async`/`unsafe`/`extern "C"` qualifiers between)?
fn is_pub_at(f: &SourceFile, i: usize) -> bool {
    let code = &f.code;
    let mut k = i;
    while k > 0 {
        k -= 1;
        let t = &f.tokens[code[k]];
        let is_qual = (t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern"))
            || t.kind == TokenKind::Str;
        if is_qual {
            continue;
        }
        // `pub(crate)` / `pub(super)`: restricted, not public API.
        return t.kind == TokenKind::Ident && t.text == "pub";
    }
    false
}

/// What stops an expression scan (always at local delimiter depth 0).
#[derive(Clone, Copy, PartialEq)]
enum Stop {
    /// `;` (consumed) or `}` (left in place): statement position.
    Stmt,
    /// `,` or `)` (left in place): call argument.
    Arg,
    /// `{` (left in place): `if`/`while`/`match` condition.
    Brace,
    /// `,` (consumed) or `}` (left in place): match-arm expression body.
    MatchArm,
    /// `)` (left in place): parenthesized group.
    Paren,
    /// `]` (left in place): bracketed group.
    Bracket,
}

struct Parser<'a> {
    f: &'a SourceFile,
    /// Position in `f.code`.
    i: usize,
    /// Line of the most recently consumed token (for body end tracking).
    last_line: usize,
}

impl<'a> Parser<'a> {
    fn tok_at(&self, k: usize) -> Option<&'a crate::lexer::Token> {
        self.f.code.get(k).map(|&ti| &self.f.tokens[ti])
    }

    fn cur(&self) -> Option<&'a crate::lexer::Token> {
        self.tok_at(self.i)
    }

    fn peek(&self, off: usize) -> Option<&'a crate::lexer::Token> {
        self.tok_at(self.i + off)
    }

    fn prev(&self) -> Option<&'a crate::lexer::Token> {
        if self.i == 0 {
            None
        } else {
            self.tok_at(self.i - 1)
        }
    }

    fn bump(&mut self) {
        if let Some(t) = self.cur() {
            self.last_line = t.line;
        }
        self.i += 1;
    }

    fn at_punct(&self, s: &str) -> bool {
        self.cur().map(|t| t.is_punct(s)).unwrap_or(false)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.cur().map(|t| t.is_ident(s)).unwrap_or(false)
    }

    fn eof(&self) -> bool {
        self.i >= self.f.code.len()
    }

    /// Parses a `{ ... }` block; leaves the position after the closing `}`.
    fn parse_block(&mut self) -> Vec<Node> {
        let mut out = Vec::new();
        if !self.at_punct("{") {
            return out;
        }
        self.bump();
        while !self.eof() && !self.at_punct("}") {
            self.parse_stmt(&mut out);
        }
        self.bump(); // `}`
        out
    }

    fn parse_stmt(&mut self, out: &mut Vec<Node>) {
        let Some(tok) = self.cur() else { return };
        if tok.kind == TokenKind::Ident {
            match tok.text.as_str() {
                "let" => {
                    out.push(self.parse_let());
                    return;
                }
                "fn" => {
                    // Nested fn item: its body is parsed as a separate FnDef
                    // by the top-level scan; skip it here.
                    self.skip_item_with_body();
                    return;
                }
                "struct" | "enum" | "trait" | "impl" | "mod" | "use" | "type" | "static"
                | "const" => {
                    self.skip_item_with_body();
                    return;
                }
                "if" => {
                    let n = self.parse_if();
                    out.push(Node::Branch(n));
                    return;
                }
                "match" => {
                    let n = self.parse_match();
                    out.push(Node::Branch(n));
                    return;
                }
                "while" => {
                    let line = tok.line;
                    self.bump();
                    let mut body = Vec::new();
                    self.parse_expr(&mut body, Stop::Brace);
                    let mut block = self.parse_block();
                    body.append(&mut block);
                    out.push(Node::Loop { body, line });
                    return;
                }
                "for" => {
                    let line = tok.line;
                    self.bump();
                    // Skip the pattern up to `in` at depth 0 (no events).
                    self.skip_until_ident("in");
                    let mut body = Vec::new();
                    self.parse_expr(&mut body, Stop::Brace);
                    let mut block = self.parse_block();
                    body.append(&mut block);
                    out.push(Node::Loop { body, line });
                    return;
                }
                "loop" => {
                    let line = tok.line;
                    self.bump();
                    let body = self.parse_block();
                    out.push(Node::Loop { body, line });
                    return;
                }
                "return" => {
                    let line = tok.line;
                    self.bump();
                    let mut value = Vec::new();
                    self.parse_expr(&mut value, Stop::Stmt);
                    out.push(Node::Return { value, line });
                    return;
                }
                "break" | "continue" => {
                    self.bump();
                    self.parse_expr(out, Stop::Stmt);
                    return;
                }
                "unsafe" => {
                    self.bump();
                    if self.at_punct("{") {
                        out.push(Node::Block(self.parse_block()));
                    }
                    return;
                }
                _ => {}
            }
        }
        if self.at_punct("{") {
            out.push(Node::Block(self.parse_block()));
            return;
        }
        if self.at_punct(";") {
            self.bump();
            return;
        }
        self.parse_expr(out, Stop::Stmt);
    }

    /// Skips a non-fn item: to the first `{` at depth 0 then over the
    /// balanced braces, or to a `;` at depth 0, whichever comes first.
    fn skip_item_with_body(&mut self) {
        let mut depth = 0isize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    "{" if depth == 0 => {
                        self.skip_balanced("{", "}");
                        // `struct S { .. }` has no trailing `;`; `impl` etc.
                        // likewise. A stray `;` is consumed by parse_stmt.
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Consumes the opening delimiter and skips to just past its match.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0isize;
        while let Some(t) = self.cur() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    fn skip_until_ident(&mut self, kw: &str) {
        let mut depth = 0isize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
            } else if depth == 0 && t.is_ident(kw) {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    fn parse_let(&mut self) -> Node {
        let (line, col) = self.cur().map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.bump(); // `let`
        // Pattern: tokens up to `=`, `;`, or `:` at depth 0.
        let mut pat_idents: Vec<String> = Vec::new();
        let mut underscore = false;
        let mut depth = 0isize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" | ";" | ":" if depth == 0 => break,
                    "_" => {}
                    _ => {}
                }
                if t.text == "_" && depth == 0 {
                    underscore = true;
                }
            } else if t.kind == TokenKind::Ident {
                if t.text == "_" {
                    underscore = true;
                } else if !matches!(t.text.as_str(), "mut" | "ref" | "box") {
                    pat_idents.push(t.text.clone());
                }
            }
            self.bump();
        }
        // Optional type annotation: skip to `=` or `;` at depth 0.
        if self.at_punct(":") {
            let mut depth = 0isize;
            while let Some(t) = self.cur() {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" | ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                self.bump();
            }
        }
        let mut init = Vec::new();
        if self.at_punct("=") {
            self.bump();
            self.parse_expr(&mut init, Stop::Stmt);
            // `let ... = expr else { ... };` — the diverging else block.
            if self.at_ident("else") {
                self.bump();
                init.push(Node::Block(self.parse_block()));
                if self.at_punct(";") {
                    self.bump();
                }
            }
        } else if self.at_punct(";") {
            self.bump();
        }
        let name =
            if pat_idents.len() == 1 && !underscore { Some(pat_idents.remove(0)) } else { None };
        Node::Let(LetNode { name, underscore, init, line, col })
    }

    /// Scans ahead (without consuming) to the `{` at depth 0 and returns
    /// `(condition text, mentions_rank)`.
    fn scan_cond_text(&self) -> (String, bool) {
        let mut text = String::new();
        let mut mentions_rank = false;
        let mut depth = 0isize;
        let mut k = self.i;
        while let Some(t) = self.tok_at(k) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokenKind::Ident && t.text.to_lowercase().contains("rank") {
                mentions_rank = true;
            }
            if text.len() < 60 {
                if !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(&t.text);
            }
            k += 1;
        }
        (text, mentions_rank)
    }

    fn parse_if(&mut self) -> BranchNode {
        let (line, col) = self.cur().map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.bump(); // `if`
        let (cond_text, mentions_rank) = self.scan_cond_text();
        let mut cond = Vec::new();
        self.parse_expr(&mut cond, Stop::Brace);
        let then_line = self.cur().map(|t| t.line).unwrap_or(line);
        let then = self.parse_block();
        let mut arms =
            vec![Arm { pat: "then".to_string(), body: then, line: then_line }];
        let mut has_else = false;
        if self.at_ident("else") {
            has_else = true;
            let else_line = self.cur().map(|t| t.line).unwrap_or(line);
            self.bump();
            if self.at_ident("if") {
                let nested = self.parse_if();
                // `else if`: an implicit-else chain still falls through, so
                // the chain's else-ness propagates from the nested if.
                has_else = nested.has_else;
                arms.push(Arm {
                    pat: "else".to_string(),
                    body: vec![Node::Branch(nested)],
                    line: else_line,
                });
            } else {
                arms.push(Arm { pat: "else".to_string(), body: self.parse_block(), line: else_line });
            }
        }
        if !has_else {
            // Implicit empty else arm: the fall-through path.
            arms.push(Arm { pat: "else".to_string(), body: Vec::new(), line });
        }
        BranchNode { is_match: false, cond, cond_text, mentions_rank, arms, has_else, line, col }
    }

    fn parse_match(&mut self) -> BranchNode {
        let (line, col) = self.cur().map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.bump(); // `match`
        let (cond_text, mentions_rank) = self.scan_cond_text();
        let mut cond = Vec::new();
        self.parse_expr(&mut cond, Stop::Brace);
        let mut arms = Vec::new();
        if self.at_punct("{") {
            self.bump();
            while !self.eof() && !self.at_punct("}") {
                // Pattern (with optional guard) up to `=>` at depth 0.
                let pat_line = self.cur().map(|t| t.line).unwrap_or(line);
                let mut pat = String::new();
                let mut depth = 0isize;
                while let Some(t) = self.cur() {
                    if t.kind == TokenKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "=>" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    if pat.len() < 40 {
                        if !pat.is_empty()
                            && !t.is_punct("(")
                            && !t.is_punct(")")
                            && !self.prev().map(|p| p.is_punct("(")).unwrap_or(false)
                        {
                            pat.push(' ');
                        }
                        pat.push_str(&t.text);
                    }
                    self.bump();
                }
                if !self.at_punct("=>") {
                    break; // malformed; bail out of the arm loop
                }
                self.bump(); // `=>`
                let mut body = Vec::new();
                if self.at_punct("{") {
                    body = self.parse_block();
                    if self.at_punct(",") {
                        self.bump();
                    }
                } else {
                    self.parse_expr(&mut body, Stop::MatchArm);
                }
                arms.push(Arm { pat: pat.trim().to_string(), body, line: pat_line });
            }
            self.bump(); // `}`
        }
        BranchNode { is_match: true, cond, cond_text, mentions_rank, arms, has_else: true, line, col }
    }

    /// Can a `|` at the current position start a closure? (Heuristic on the
    /// previous code token.)
    fn closure_position(&self) -> bool {
        match self.prev() {
            None => true,
            Some(p) => {
                p.is_punct("(")
                    || p.is_punct(",")
                    || p.is_punct("=")
                    || p.is_punct("=>")
                    || p.is_punct("{")
                    || p.is_punct(";")
                    || p.is_punct(":")
                    || p.is_punct("&&")
                    || p.is_ident("return")
                    || p.is_ident("move")
                    || p.is_ident("else")
            }
        }
    }

    /// Parses expression events until the `stop` terminator at depth 0.
    fn parse_expr(&mut self, out: &mut Vec<Node>, stop: Stop) {
        while let Some(tok) = self.cur() {
            // Terminators (local depth is always 0: delimiters recurse).
            if tok.kind == TokenKind::Punct {
                match (stop, tok.text.as_str()) {
                    (Stop::Stmt, ";") => {
                        self.bump();
                        return;
                    }
                    (Stop::Stmt, "}")
                    | (Stop::Arg, ",")
                    | (Stop::Arg, ")")
                    | (Stop::Brace, "{")
                    | (Stop::MatchArm, "}")
                    | (Stop::Paren, ")")
                    | (Stop::Bracket, "]") => return,
                    (Stop::MatchArm, ",") => {
                        self.bump();
                        return;
                    }
                    // Stray closers: never cross an unbalanced boundary.
                    (_, ")") | (_, "]") | (_, "}") => return,
                    _ => {}
                }
            }
            match tok.kind {
                TokenKind::Ident => match tok.text.as_str() {
                    "if" => {
                        let n = self.parse_if();
                        out.push(Node::Branch(n));
                    }
                    "match" => {
                        let n = self.parse_match();
                        out.push(Node::Branch(n));
                    }
                    "loop" => {
                        let line = tok.line;
                        self.bump();
                        let body = self.parse_block();
                        out.push(Node::Loop { body, line });
                    }
                    "while" => {
                        let line = tok.line;
                        self.bump();
                        let mut body = Vec::new();
                        self.parse_expr(&mut body, Stop::Brace);
                        let mut block = self.parse_block();
                        body.append(&mut block);
                        out.push(Node::Loop { body, line });
                    }
                    "return" => {
                        let line = tok.line;
                        self.bump();
                        let mut value = Vec::new();
                        // The value extends to the enclosing terminator,
                        // which stays in place for the outer loop.
                        self.parse_value_until(&mut value, stop);
                        out.push(Node::Return { value, line });
                    }
                    "let" => {
                        // `if let` / `while let` pattern inside a condition:
                        // consume the pattern (no events) up to `=`.
                        self.bump();
                        let mut depth = 0isize;
                        while let Some(t) = self.cur() {
                            if t.kind == TokenKind::Punct {
                                match t.text.as_str() {
                                    "(" | "[" | "{" => depth += 1,
                                    ")" | "]" | "}" => depth -= 1,
                                    "=" if depth == 0 => break,
                                    _ => {}
                                }
                            }
                            self.bump();
                        }
                        if self.at_punct("=") {
                            self.bump();
                        }
                    }
                    "as" => {
                        // Cast: skip the type path.
                        self.bump();
                        while let Some(t) = self.cur() {
                            if t.kind == TokenKind::Ident || t.is_punct("::") {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    "move" | "mut" | "ref" | "unsafe" | "in" | "dyn" | "impl" | "where"
                    | "true" | "false" | "self" | "Self" | "crate" | "super" => {
                        self.bump();
                    }
                    _ => self.parse_ident(out),
                },
                TokenKind::Str | TokenKind::RawStr => {
                    out.push(Node::Lit { text: tok.text.clone(), line: tok.line });
                    self.bump();
                }
                TokenKind::Punct => match tok.text.as_str() {
                    "(" => {
                        self.bump();
                        self.parse_expr(out, Stop::Paren);
                        if self.at_punct(")") {
                            self.bump();
                        }
                    }
                    "[" => {
                        self.bump();
                        self.parse_expr(out, Stop::Bracket);
                        if self.at_punct("]") {
                            self.bump();
                        }
                    }
                    "{" => out.push(Node::Block(self.parse_block())),
                    "?" => {
                        out.push(Node::Try { line: tok.line });
                        self.bump();
                    }
                    "|" | "||" if self.closure_position() => {
                        let empty_params = tok.text == "||";
                        self.bump();
                        if !empty_params {
                            // Parameters to the closing `|` (no events).
                            let mut depth = 0isize;
                            while let Some(t) = self.cur() {
                                if t.kind == TokenKind::Punct {
                                    match t.text.as_str() {
                                        "(" | "[" | "<" => depth += 1,
                                        ")" | "]" | ">" => depth -= 1,
                                        "|" if depth == 0 => break,
                                        _ => {}
                                    }
                                }
                                self.bump();
                            }
                            if self.at_punct("|") {
                                self.bump();
                            }
                        }
                        // Optional `-> Type` return annotation.
                        if self.at_punct("->") {
                            self.bump();
                            while let Some(t) = self.cur() {
                                if t.kind == TokenKind::Ident
                                    || t.is_punct("::")
                                    || t.is_punct("&")
                                {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        let mut body = Vec::new();
                        if self.at_punct("{") {
                            body = self.parse_block();
                        } else {
                            self.parse_value_until(&mut body, stop);
                        }
                        out.push(Node::Closure { body });
                    }
                    "::" => {
                        self.bump();
                        // Turbofish `::<...>`: skip the generic args.
                        if self.at_punct("<") {
                            self.skip_generics();
                        }
                    }
                    _ => self.bump(),
                },
                _ => self.bump(),
            }
        }
    }

    /// Parses a value expression that extends to the enclosing `stop`
    /// terminator but leaves the terminator for the caller (used for
    /// `return expr` and closure-body tails inside larger expressions).
    fn parse_value_until(&mut self, out: &mut Vec<Node>, stop: Stop) {
        match stop {
            Stop::Stmt => {
                self.parse_expr(out, Stop::Stmt);
            }
            other => {
                // Reuse the same non-consuming terminators.
                self.parse_expr(out, other);
            }
        }
    }

    /// Skips `<...>` generic arguments (handles `>>` closing two levels).
    fn skip_generics(&mut self) {
        let mut depth = 0isize;
        while let Some(t) = self.cur() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    /// Handles a plain identifier: call, macro call, path segment, field
    /// access, or variable use.
    fn parse_ident(&mut self, out: &mut Vec<Node>) {
        let tok = match self.cur() {
            Some(t) => t,
            None => return,
        };
        let name = tok.text.clone();
        let (line, col) = (tok.line, tok.col);
        let prev_dot = self.prev().map(|p| p.is_punct(".")).unwrap_or(false);
        let prev_colons = self.prev().map(|p| p.is_punct("::")).unwrap_or(false);
        let next = self.peek(1);
        let next_is = |s: &str| next.map(|t| t.is_punct(s)).unwrap_or(false);

        // Macro call: `name!(...)` / `name![...]` / `name!{...}`.
        if next_is("!") {
            let after = self.peek(2);
            let delim = after.map(|t| t.text.clone()).unwrap_or_default();
            if matches!(delim.as_str(), "(" | "[" | "{") {
                self.bump(); // name
                self.bump(); // !
                out.push(Node::Call(CallNode {
                    name,
                    method: false,
                    bang: true,
                    qual: None,
                    recv: None,
                    argc: 0,
                    line,
                    col,
                }));
                match delim.as_str() {
                    "(" => {
                        self.bump();
                        self.parse_macro_body(out, ")");
                    }
                    "[" => {
                        self.bump();
                        self.parse_macro_body(out, "]");
                    }
                    _ => {
                        out.push(Node::Block(self.parse_block()));
                    }
                }
                return;
            }
        }

        // Call: `name(...)`.
        if next_is("(") {
            let qual = if prev_colons {
                self.tok_at(self.i.wrapping_sub(2))
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
            } else {
                None
            };
            let recv = if prev_dot {
                self.tok_at(self.i.wrapping_sub(2))
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
            } else {
                None
            };
            self.bump(); // name
            self.bump(); // `(`
            let call_idx = out.len();
            out.push(Node::Call(CallNode {
                name,
                method: prev_dot,
                bang: false,
                qual,
                recv,
                argc: 0,
                line,
                col,
            }));
            let mut argc = 0usize;
            if !self.at_punct(")") {
                loop {
                    argc += 1;
                    self.parse_expr(out, Stop::Arg);
                    if self.at_punct(",") {
                        self.bump();
                        if self.at_punct(")") {
                            break;
                        }
                    } else {
                        break;
                    }
                }
            }
            if self.at_punct(")") {
                self.bump();
            }
            if let Node::Call(c) = &mut out[call_idx] {
                c.argc = argc;
            }
            return;
        }

        // Path segment (`seg::`), field access (`.field`), or plain use.
        self.bump();
        if next_is("::") || prev_dot {
            return; // type/module path segment or field name: not a variable
        }
        out.push(Node::Use { name, line });
    }

    /// Parses macro body tokens as a best-effort expression list up to the
    /// matching closer.
    fn parse_macro_body(&mut self, out: &mut Vec<Node>, close: &str) {
        let stop = if close == ")" { Stop::Paren } else { Stop::Bracket };
        loop {
            self.parse_expr(out, stop);
            if self.at_punct(";") || self.at_punct(",") {
                self.bump();
                continue;
            }
            break;
        }
        if self.at_punct(close) {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ast(src: &str) -> FileAst {
        let sf = SourceFile::parse(&PathBuf::from("crates/comm/src/demo.rs"), src);
        parse_file(&sf)
    }

    fn calls(nodes: &[Node], out: &mut Vec<String>) {
        for n in nodes {
            match n {
                Node::Call(c) => {
                    out.push(c.name.clone());
                }
                Node::Let(l) => calls(&l.init, out),
                Node::Branch(b) => {
                    calls(&b.cond, out);
                    for a in &b.arms {
                        calls(&a.body, out);
                    }
                }
                Node::Loop { body, .. }
                | Node::Closure { body }
                | Node::Block(body)
                | Node::Return { value: body, .. } => calls(body, out),
                _ => {}
            }
        }
    }

    #[test]
    fn finds_fns_with_spans_and_visibility() {
        let a = ast(
            "pub fn outer(c: &C) -> usize {\n    inner(c)\n}\n\
             fn inner(c: &C) -> usize {\n    c.rank()\n}\n\
             pub(crate) fn restricted() {}\n",
        );
        assert_eq!(a.fns.len(), 3);
        assert!(a.fns[0].is_pub && a.fns[0].name == "outer");
        assert!(!a.fns[1].is_pub && a.fns[1].name == "inner");
        assert!(!a.fns[2].is_pub, "pub(crate) is not public API");
        assert_eq!(a.fns[0].line, 1);
        assert_eq!(a.fns[0].end_line, 3);
        assert_eq!(a.enclosing_fn(2).map(|f| f.name.as_str()), Some("outer"));
        assert_eq!(a.enclosing_fn(5).map(|f| f.name.as_str()), Some("inner"));
    }

    #[test]
    fn lowers_calls_branches_and_lets() {
        let a = ast(
            "fn f(c: &C, flag: bool) {\n\
                let h = c.try_barrier();\n\
                if c.rank() == 0 {\n\
                    c.allreduce(&mut [0.0], Op::Sum);\n\
                } else {\n\
                    helper(c);\n\
                }\n\
                consume(h);\n\
             }\n",
        );
        let f = &a.fns[0];
        let lets: Vec<&LetNode> = f
            .body
            .iter()
            .filter_map(|n| if let Node::Let(l) = n { Some(l) } else { None })
            .collect();
        assert_eq!(lets.len(), 1);
        assert_eq!(lets[0].name.as_deref(), Some("h"));
        let branch = f
            .body
            .iter()
            .find_map(|n| if let Node::Branch(b) = n { Some(b) } else { None })
            .expect("if branch");
        assert!(branch.mentions_rank);
        assert!(branch.has_else);
        assert_eq!(branch.arms.len(), 2);
        let mut cs = Vec::new();
        calls(&branch.arms[0].body, &mut cs);
        assert_eq!(cs, vec!["allreduce"]);
        let mut cs = Vec::new();
        calls(&branch.arms[1].body, &mut cs);
        assert_eq!(cs, vec!["helper"]);
    }

    #[test]
    fn method_calls_record_receiver_qualifier_and_argc() {
        let a = ast(
            "fn f(c: &C, s: &str) {\n\
                let sub = c.split(1, 0);\n\
                let parts = s.split(',');\n\
                let v = Vec::with_capacity(8);\n\
             }\n",
        );
        let mut found = Vec::new();
        fn walk(nodes: &[Node], out: &mut Vec<CallNode>) {
            for n in nodes {
                match n {
                    Node::Call(c) => out.push(c.clone()),
                    Node::Let(l) => walk(&l.init, out),
                    _ => {}
                }
            }
        }
        walk(&a.fns[0].body, &mut found);
        let comm_split = &found[0];
        assert!(comm_split.method && comm_split.argc == 2);
        assert_eq!(comm_split.recv.as_deref(), Some("c"));
        let str_split = &found[1];
        assert!(str_split.method && str_split.argc == 1);
        let with_cap = &found[2];
        assert!(!with_cap.method);
        assert_eq!(with_cap.qual.as_deref(), Some("Vec"));
    }

    #[test]
    fn if_without_else_gets_implicit_empty_arm() {
        let a = ast("fn f(c: &C) {\n    if c.rank() == 0 {\n        c.barrier();\n    }\n}\n");
        let b = a
            .fns[0]
            .body
            .iter()
            .find_map(|n| if let Node::Branch(b) = n { Some(b) } else { None })
            .expect("branch");
        assert!(!b.has_else);
        assert_eq!(b.arms.len(), 2);
        assert!(b.arms[1].body.is_empty());
    }

    #[test]
    fn match_arms_and_early_return_are_lowered() {
        let a = ast(
            "fn f(c: &C) -> usize {\n\
                match c.try_barrier() {\n\
                    Ok(()) => {}\n\
                    Err(_) => {}\n\
                }\n\
                if c.rank() != 0 {\n\
                    return 0;\n\
                }\n\
                c.rank()\n\
             }\n",
        );
        let f = &a.fns[0];
        let m = f
            .body
            .iter()
            .find_map(|n| {
                if let Node::Branch(b) = n {
                    if b.is_match {
                        return Some(b);
                    }
                }
                None
            })
            .expect("match");
        assert_eq!(m.arms.len(), 2);
        assert!(m.arms[1].pat.starts_with("Err"));
        let has_ret = f.body.iter().any(|n| {
            if let Node::Branch(b) = n {
                !b.is_match && b.arms[0].body.iter().any(|x| matches!(x, Node::Return { .. }))
            } else {
                false
            }
        });
        assert!(has_ret, "return inside rank branch must be lowered");
    }

    #[test]
    fn closures_string_literals_and_try_are_events() {
        let a = ast(
            "fn f(c: &C) -> Result<(), E> {\n\
                let _g = span(\"newton.iter\");\n\
                let out = (0..4).map(|i| i + 1).collect();\n\
                c.try_allreduce(&mut [1.0])?;\n\
                Ok(())\n\
             }\n",
        );
        let f = &a.fns[0];
        fn find_lit(nodes: &[Node]) -> Option<String> {
            for n in nodes {
                match n {
                    Node::Lit { text, .. } => return Some(text.clone()),
                    Node::Let(l) => {
                        if let Some(t) = find_lit(&l.init) {
                            return Some(t);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        assert_eq!(find_lit(&f.body).as_deref(), Some("\"newton.iter\""));
        fn has_try(nodes: &[Node]) -> bool {
            nodes.iter().any(|n| match n {
                Node::Try { .. } => true,
                Node::Let(l) => has_try(&l.init),
                Node::Block(b) | Node::Closure { body: b } => has_try(b),
                _ => false,
            })
        }
        assert!(has_try(&f.body));
        fn has_closure(nodes: &[Node]) -> bool {
            nodes.iter().any(|n| match n {
                Node::Closure { .. } => true,
                Node::Let(l) => has_closure(&l.init),
                _ => false,
            })
        }
        assert!(has_closure(&f.body));
    }
}
