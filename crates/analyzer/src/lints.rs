//! The lint implementations.
//!
//! Each lint is a pure function from a [`SourceFile`] to diagnostics. They
//! all operate on the lexed token stream (never on raw text), so string
//! literals, raw strings, and comments can never produce false call sites.

use crate::lexer::TokenKind;
use crate::lint::{Diagnostic, Lint};
use crate::scope::{ScopeKind, SourceFile};

/// Crates whose non-test library code must not `unwrap()`/`expect()`/
/// `panic!` (they form the distributed solve path).
pub const NO_UNWRAP_CRATES: &[&str] =
    &["comm", "fft", "pfft", "grid", "spectral", "interp", "transport", "optim", "core"];

fn diag(f: &SourceFile, lint: Lint, line: usize, col: usize, message: String) -> Diagnostic {
    Diagnostic {
        lint,
        path: f.path.clone(),
        line,
        col,
        message,
        snippet: f.snippet(line),
        func: String::new(),
        shash: 0,
    }
}

/// `no-unwrap-in-lib`: `unwrap()` / `expect()` / `panic!` in non-test
/// library code of the solver crates.
pub fn no_unwrap_in_lib(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let in_scope = f
        .class
        .crate_name
        .as_deref()
        .map(|c| NO_UNWRAP_CRATES.contains(&c))
        .unwrap_or(false)
        && f.class.is_lib_src;
    if !in_scope {
        return;
    }
    let code = &f.code;
    for i in 0..code.len() {
        let ti = code[i];
        if f.is_test_token(ti) {
            continue;
        }
        let tok = &f.tokens[ti];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |s: &str| i + 1 < code.len() && f.tokens[code[i + 1]].is_punct(s);
        let prev_is_dot = i > 0 && f.tokens[code[i - 1]].is_punct(".");
        let hit = match tok.text.as_str() {
            "unwrap" | "expect" => prev_is_dot && next_is("("),
            "panic" => next_is("!"),
            _ => false,
        };
        if hit {
            let what = if tok.text == "panic" { "panic!" } else { &tok.text };
            out.push(diag(
                f,
                Lint::NoUnwrapInLib,
                tok.line,
                tok.col,
                format!(
                    "`{what}` in solver library code: return a typed error (CommError, ...) \
                     or annotate with diffreg-allow and a reason"
                ),
            ));
        }
    }
}

/// True when a number token denotes a float.
fn is_float_number(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    if text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    if text.contains('.') {
        return true;
    }
    // Decimal exponent form without a dot: 1e9, 2E-3.
    let has_exp = text
        .char_indices()
        .any(|(i, c)| i > 0 && (c == 'e' || c == 'E'))
        && text.chars().all(|c| c.is_ascii_digit() || matches!(c, 'e' | 'E' | '+' | '-' | '_'));
    has_exp
}

/// Tokens that terminate an operand scan around `==` / `!=`.
fn operand_boundary(text: &str) -> bool {
    matches!(
        text,
        "," | ";"
            | "&&"
            | "||"
            | "="
            | "=="
            | "!="
            | "<"
            | ">"
            | "<="
            | ">="
            | "=>"
            | "{"
            | "}"
            | "return"
            | "if"
            | "else"
            | "while"
            | "match"
            | "let"
            | "?"
    )
}

/// `float-eq`: `==`/`!=` with a float-typed operand, outside tests.
pub fn float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &f.code;
    for i in 0..code.len() {
        let ti = code[i];
        let tok = &f.tokens[ti];
        if tok.kind != TokenKind::Punct || (tok.text != "==" && tok.text != "!=") {
            continue;
        }
        if f.is_test_token(ti) {
            continue;
        }
        let mut float_operand = false;
        // Left operand: walk back, skipping matched () / [] groups.
        let mut depth = 0isize;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &f.tokens[code[j]];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ")" | "]" => depth += 1,
                    "(" | "[" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    _ if depth == 0 && operand_boundary(&t.text) => break,
                    _ => {}
                }
            } else if depth == 0 && t.kind == TokenKind::Ident && operand_boundary(&t.text) {
                break;
            }
            if float_token(f, code, j) {
                float_operand = true;
            }
        }
        // Right operand: walk forward symmetrically.
        let mut depth = 0isize;
        let mut j = i + 1;
        while j < code.len() {
            let t = &f.tokens[code[j]];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    _ if depth == 0 && operand_boundary(&t.text) => break,
                    _ => {}
                }
            } else if depth == 0 && t.kind == TokenKind::Ident && operand_boundary(&t.text) {
                break;
            }
            if float_token(f, code, j) {
                float_operand = true;
            }
            j += 1;
        }
        if float_operand {
            out.push(diag(
                f,
                Lint::FloatEq,
                tok.line,
                tok.col,
                format!(
                    "`{}` between float-typed operands: use an epsilon/ULP comparison, or \
                     annotate an intentional exact comparison with diffreg-allow and a reason",
                    tok.text
                ),
            ));
        }
    }
}

/// Is the code token at position `j` evidence of a float-typed operand
/// (float literal, `f32`/`f64` path or cast)?
fn float_token(f: &SourceFile, code: &[usize], j: usize) -> bool {
    let t = &f.tokens[code[j]];
    match t.kind {
        TokenKind::Number => is_float_number(&t.text),
        TokenKind::Ident => t.text == "f32" || t.text == "f64",
        _ => false,
    }
}

/// Method names treated as mutating inside `debug_assert!` bodies.
const MUTATING_METHODS: &[&str] = &[
    "push", "pop", "insert", "remove", "clear", "take", "replace", "truncate", "drain", "retain",
    "fill", "extend", "next", "swap", "sort", "dedup", "reverse", "write", "store", "fetch_add",
    "fetch_sub", "advance", "append", "resize",
];

/// `debug-assert-side-effect`: assignment / mutation inside `debug_assert!`.
pub fn debug_assert_side_effect(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &f.code;
    let mut i = 0usize;
    while i < code.len() {
        let tok = &f.tokens[code[i]];
        let is_da = tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "debug_assert" | "debug_assert_eq" | "debug_assert_ne")
            && i + 2 < code.len()
            && f.tokens[code[i + 1]].is_punct("!")
            && f.tokens[code[i + 2]].is_punct("(");
        if !is_da {
            i += 1;
            continue;
        }
        let macro_name = tok.text.clone();
        // Scan the macro body to the matching `)`.
        let mut depth = 0isize;
        let mut j = i + 2;
        while j < code.len() {
            let t = &f.tokens[code[j]];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                        out.push(diag(
                            f,
                            Lint::DebugAssertSideEffect,
                            t.line,
                            t.col,
                            format!(
                                "assignment `{}` inside `{macro_name}!`: the mutation silently \
                                 disappears in release builds",
                                t.text
                            ),
                        ));
                    }
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident
                && MUTATING_METHODS.contains(&t.text.as_str())
                && j > 0
                && f.tokens[code[j - 1]].is_punct(".")
                && j + 1 < code.len()
                && f.tokens[code[j + 1]].is_punct("(")
            {
                out.push(diag(
                    f,
                    Lint::DebugAssertSideEffect,
                    t.line,
                    t.col,
                    format!(
                        "mutating call `.{}()` inside `{macro_name}!`: the side effect silently \
                         disappears in release builds",
                        t.text
                    ),
                ));
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// `unsafe-without-safety-comment`: an `unsafe` keyword with no `SAFETY:`
/// comment on the same line or the three lines above.
pub fn unsafe_without_safety_comment(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for &ti in &f.code {
        let tok = &f.tokens[ti];
        if !(tok.kind == TokenKind::Ident && tok.text == "unsafe") {
            continue;
        }
        let lo = tok.line.saturating_sub(3);
        let documented = f.tokens.iter().any(|t| {
            !t.is_code() && t.line >= lo && t.line <= tok.line && t.text.contains("SAFETY")
        });
        if !documented {
            out.push(diag(
                f,
                Lint::UnsafeWithoutSafetyComment,
                tok.line,
                tok.col,
                "`unsafe` without a preceding `// SAFETY:` comment explaining why the \
                 invariants hold"
                    .to_string(),
            ));
        }
    }
}

/// `pub-fn-missing-docs`: a `pub fn` at crate root or module scope with no
/// doc comment (or `#[doc = ...]`) attached.
pub fn pub_fn_missing_docs(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.class.is_lib_src {
        return;
    }
    let code = &f.code;
    for i in 0..code.len() {
        let ti = code[i];
        let tok = &f.tokens[ti];
        if !(tok.kind == TokenKind::Ident && tok.text == "pub") {
            continue;
        }
        if f.is_test_token(ti) {
            continue;
        }
        if !matches!(f.scope[ti], ScopeKind::File | ScopeKind::Mod) {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        let mut j = i + 1;
        if j < code.len() && f.tokens[code[j]].is_punct("(") {
            while j < code.len() && !f.tokens[code[j]].is_punct(")") {
                j += 1;
            }
            continue;
        }
        // Allow qualifiers between `pub` and `fn`.
        while j < code.len()
            && matches!(f.tokens[code[j]].text.as_str(), "const" | "async" | "unsafe" | "extern")
        {
            j += 1;
        }
        if !(j < code.len() && f.tokens[code[j]].is_ident("fn")) {
            continue;
        }
        let fn_name = f
            .tokens
            .get(code.get(j + 1).copied().unwrap_or(usize::MAX))
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if has_doc(f, i) {
            continue;
        }
        out.push(diag(
            f,
            Lint::PubFnMissingDocs,
            tok.line,
            tok.col,
            format!("public function `{fn_name}` at module scope has no doc comment"),
        ));
    }
}

/// Does the item whose first code token is at code-position `i` carry a doc
/// comment or `#[doc ...]` attribute? Walks backwards over attributes and
/// comments.
fn has_doc(f: &SourceFile, i: usize) -> bool {
    let mut k = f.code[i]; // index into `tokens` of the `pub` keyword
    while k > 0 {
        k -= 1;
        let t = &f.tokens[k];
        if !t.is_code() {
            if t.text.starts_with("///") || t.text.starts_with("/**") {
                return true;
            }
            // Ordinary comment: keep scanning upward.
            continue;
        }
        if t.is_punct("]") {
            // Walk back over the attribute group; check for `doc`.
            let mut depth = 0isize;
            let mut is_doc = false;
            loop {
                let a = &f.tokens[k];
                if a.is_punct("]") {
                    depth += 1;
                } else if a.is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("doc") {
                    is_doc = true;
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if is_doc {
                return true;
            }
            // Step over the attribute's leading `#` and keep scanning.
            if k > 0 && f.tokens[k - 1].is_punct("#") {
                k -= 1;
            }
            continue;
        }
        return false;
    }
    false
}

/// `forbid-unsafe-missing`: library crate roots must carry
/// `#![forbid(unsafe_code)]`.
pub fn forbid_unsafe_missing(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.class.is_crate_root {
        return;
    }
    let code = &f.code;
    let mut found = false;
    for i in 0..code.len().saturating_sub(6) {
        if f.tokens[code[i]].is_punct("#")
            && f.tokens[code[i + 1]].is_punct("!")
            && f.tokens[code[i + 2]].is_punct("[")
            && f.tokens[code[i + 3]].is_ident("forbid")
            && f.tokens[code[i + 4]].is_punct("(")
            && f.tokens[code[i + 5]].is_ident("unsafe_code")
        {
            found = true;
            break;
        }
    }
    if !found {
        out.push(diag(
            f,
            Lint::ForbidUnsafeMissing,
            1,
            1,
            "library crate root is missing `#![forbid(unsafe_code)]` (the workspace is \
             unsafe-free; lock the invariant in)"
                .to_string(),
        ));
    }
}

/// Runs every *syntactic* lint over one file (the dataflow lints live in
/// [`crate::dataflow`]; suppressions and baselines are applied by the
/// engine, not here).
pub fn run_all(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    no_unwrap_in_lib(f, &mut out);
    float_eq(f, &mut out);
    debug_assert_side_effect(f, &mut out);
    unsafe_without_safety_comment(f, &mut out);
    pub_fn_missing_docs(f, &mut out);
    forbid_unsafe_missing(f, &mut out);
    out.sort_by_key(|d| (d.line, d.col, d.lint));
    out
}
