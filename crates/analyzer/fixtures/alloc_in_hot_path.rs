//@ path: crates/optim/src/fixture_hot.rs
fn hot_inner(n: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    v
}
fn newton_like(t: &Telemetry, n: usize) {
    let _s = t.span("newton.iter");
    let v = hot_inner(n);
    consume(v);
}
fn arena_routed(pool: &Pool, n: usize) {
    let _s = pool.t.span("newton.pcg");
    let v = pool.take(n);
    consume_pooled(v);
}
fn cold_setup(n: usize) -> Vec<f64> {
    vec![0.0; n]
}
