//@ path: crates/pfft/src/fixture_unwrap.rs
fn f(o: Option<u32>) -> u32 {
    o.unwrap()
}
fn g(r: Result<u32, ()>) -> u32 {
    r.expect("boom")
}
fn h() {
    panic!("kaboom");
}
#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1).unwrap();
    }
}
