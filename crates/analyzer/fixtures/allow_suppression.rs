//@ path: crates/comm/src/fixture_allow.rs
fn f(o: Option<u32>, x: f64) -> u32 {
    // diffreg-allow(no-unwrap-in-lib): fixture demonstrates site suppression
    let v = o.unwrap();
    // diffreg-allow(float-eq): exact sentinel comparison is intentional here
    if x == 0.0 {
        return 0;
    }
    // diffreg-allow(float-eq): stale, nothing below fires
    v
}
