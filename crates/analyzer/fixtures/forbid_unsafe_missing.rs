//@ path: crates/demo/src/lib.rs
//! A crate root without `#![forbid(unsafe_code)]`.
fn private() {}
