//@ path: crates/demo2/src/lib.rs
//! A crate root that carries the attribute: clean.
#![forbid(unsafe_code)]
fn private() {}
