//@ path: crates/comm/src/fixture_handles.rs
fn lossy(c: &impl Comm, buf: &mut [f64]) {
    let h = c.try_send(1, buf);
    if buf[0] > 0.0 {
        h.wait();
    }
}
fn propagated(c: &impl Comm, buf: &mut [f64]) -> Result<(), CommError> {
    let h = c.try_send(1, buf);
    h?;
    Ok(())
}
fn consumed_everywhere(c: &impl Comm, buf: &mut [f64]) {
    let h = c.try_recv(0, buf);
    if buf[0] > 0.0 {
        h.wait();
    } else {
        drop(h);
    }
}
