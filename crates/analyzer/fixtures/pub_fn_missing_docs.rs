//@ path: crates/telemetry/src/fixture_docs.rs
pub fn undocumented() {}
/// Documented: passes.
pub fn documented() {}
pub(crate) fn internal_is_exempt() {}
#[doc = "attr-documented: passes"]
pub fn attr_documented() {}
mod inner {
    pub fn also_undocumented() {}
}
