//@ path: crates/grid/src/fixture_da.rs
fn f(v: &mut Vec<u32>, mut n: u32) {
    debug_assert!(v.pop().is_some());
    debug_assert_eq!({ n += 1; n }, 1);
    debug_assert!(!v.is_empty());
}
