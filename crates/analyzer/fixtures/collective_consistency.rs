//@ path: crates/comm/src/fixture_consistency.rs
fn leader_path(c: &impl Comm) {
    c.barrier();
}
fn worker_path(c: &impl Comm, v: &mut [f64]) {
    c.allreduce(v, ReduceOp::Sum);
}
fn drive(c: &impl Comm, v: &mut [f64]) {
    if c.rank() == 0 {
        leader_path(c);
    } else {
        worker_path(c, v);
    }
}
fn symmetric(c: &impl Comm, v: &mut [f64]) {
    if c.rank() == 0 {
        v[0] = 1.0;
    } else {
        v[0] = 2.0;
    }
    c.barrier();
}
fn early_out(c: &impl Comm, v: &mut [f64]) {
    if c.rank() == 0 {
        return;
    }
    c.allreduce(v, ReduceOp::Sum);
}
