//@ path: crates/interp/src/fixture_unsafe.rs
fn f(p: *const u32) -> u32 {
    unsafe { *p }
}
// SAFETY: pointer validity is the caller's contract, checked at the call site
fn g(p: *const u32) -> u32 {
    unsafe { *p }
}
