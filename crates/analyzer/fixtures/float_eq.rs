//@ path: crates/spectral/src/fixture_float.rs
fn f(x: f64, y: f64, n: usize) -> bool {
    let a = x == 0.0;
    let b = y != 1.0e-9;
    let c = n == 3;
    let d = (x as f32) == y as f32;
    a && b && c && d
}
#[test]
fn test_code_is_exempt(x: f64) {
    assert!(x == 0.0);
}
