//@ path: crates/comm/src/fixture_lexer_edges.rs
/* outer /* nested x.unwrap() */ still inside the comment y.unwrap() */
fn f() -> usize {
    let s = r#"raw string with "quotes", // no comment, and z.unwrap()"#;
    let b = br##"raw byte string: "## inside" and panic!("nope")"##;
    let c = '"';
    let q = '\'';
    let l: &'static str = "string with an apostrophe: don't";
    s.len() + b.len() + (c as usize) + (q as usize) + l.len()
}
fn g<'a>(o: &'a Option<u32>) -> u32 {
    o.unwrap()
}
