//@ path: crates/comm/src/fixture_swallow.rs
fn f(c: &impl Comm, buf: &mut [f64]) {
    let _ = c.try_recv(0, buf);
    let n = c.try_probe(0).ok();
    match c.try_send(1, buf) {
        Ok(()) => {}
        Err(_) => {}
    }
    if let Ok(v) = c.try_recv_any(buf) {
        consume(v, n);
    }
}
fn recovered(c: &impl Comm, buf: &mut [f64]) -> Result<(), CommError> {
    match c.try_send(1, buf) {
        Ok(()) => Ok(()),
        Err(e) => retry(c, buf, e),
    }
}
