//@ path: crates/comm/src/fixture_rank_gate.rs
fn f(c: &impl Comm, v: &mut Vec<f64>) {
    if c.rank() == 0 {
        c.barrier();
    } else {
        c.allreduce(&mut [0.5], ReduceOp::Sum);
    }
    match c.rank() {
        0 => {}
        _ => {
            c.broadcast(0, v);
        }
    }
    c.barrier();
}
