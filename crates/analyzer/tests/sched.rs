//! Schedule-explorer integration tests: the seeded deadlock fixture, the
//! bitwise seed/replay contract, clean sweeps over the real collective
//! protocols at 2–3 ranks, and divergence detection via `recv_any`.

use diffreg_analyzer::sched::{Explorer, RunOutcome};
use diffreg_comm::{Comm, ReduceOp};

/// The deliberately broken fixture from the issue: a collective inside a
/// rank branch. Rank 1 skips the barrier, so every schedule where ranks
/// 0.. arrive at the barrier deadlocks (the barrier can never complete).
fn rank_gated_barrier(c: &diffreg_analyzer::sched::SchedComm) -> usize {
    // diffreg-allow(collective-consistency): the deliberately broken fixture the explorer must catch
    if c.rank() != 1 {
        c.barrier();
    }
    c.rank()
}

#[test]
fn deadlock_fixture_is_detected_at_two_ranks() {
    let rep = Explorer::new(2).explore(rank_gated_barrier);
    let dl = rep.deadlock.as_ref().expect("rank-gated barrier must deadlock");
    // Rank 0 is stuck in the barrier; rank 1 finished without it.
    assert!(dl.table.iter().any(|l| l.contains("rank 0") && l.contains("barrier")), "{dl}");
    assert!(dl.table.iter().any(|l| l.contains("rank 1") && l.contains("finished")), "{dl}");
    assert!(!rep.ok());
    // The summary carries the seed + replay line for reproduction.
    let s = rep.summary();
    assert!(s.contains("DEADLOCK"), "{s}");
    assert!(s.contains("seed=0x"), "{s}");
}

#[test]
fn deadlock_fixture_is_detected_at_three_ranks() {
    let rep = Explorer::new(3).explore(rank_gated_barrier);
    assert!(rep.deadlock.is_some(), "{}", rep.summary());
}

#[test]
fn exploration_is_bitwise_reproducible_from_its_seed() {
    let a = Explorer::new(2).seeded(0xC0FFEE).explore(rank_gated_barrier);
    let b = Explorer::new(2).seeded(0xC0FFEE).explore(rank_gated_barrier);
    let (da, db) = (a.deadlock.expect("deadlock"), b.deadlock.expect("deadlock"));
    assert_eq!(da.schedule, db.schedule, "same seed must find the same counterexample");
    assert_eq!(da.table, db.table);
    assert_eq!(a.schedules, b.schedules);
}

#[test]
fn replay_reproduces_the_counterexample_exactly() {
    let explorer = Explorer::new(2).seeded(0xC0FFEE);
    let rep = explorer.explore(rank_gated_barrier);
    let dl = rep.deadlock.expect("deadlock");
    match explorer.replay(&dl.schedule, rank_gated_barrier) {
        RunOutcome::Deadlock(d) => {
            assert_eq!(d.schedule, dl.schedule, "replay must follow the recorded schedule");
            assert_eq!(d.table, dl.table);
        }
        other => panic!("replay must deadlock, got {other:?}"),
    }
}

#[test]
fn correct_barrier_passes_clean_and_exhausts_at_two_ranks() {
    let rep = Explorer::new(2).explore(|c| {
        c.barrier();
        c.barrier();
        c.rank()
    });
    assert!(rep.ok(), "{}", rep.summary());
    assert!(rep.exhausted, "bounded space should be exhausted: {}", rep.summary());
    assert_eq!(rep.reference, Some(vec![0, 1]));
}

#[test]
fn real_allreduce_path_is_clean_at_two_and_three_ranks() {
    for ranks in [2usize, 3] {
        let rep = Explorer::new(ranks).explore(move |c| {
            let mut v = [c.rank() as f64 + 1.0];
            c.allreduce(&mut v, ReduceOp::Sum);
            v[0] as usize
        });
        assert!(rep.ok(), "ranks={ranks}: {}", rep.summary());
        let want = ranks * (ranks + 1) / 2;
        assert_eq!(rep.reference, Some(vec![want; ranks]), "ranks={ranks}");
    }
}

#[test]
fn real_alltoallv_path_is_clean_at_three_ranks() {
    let rep = Explorer::new(3).budget(512).explore(|c| {
        // Rank r sends value 10*r + dst to each dst.
        let parts: Vec<Vec<usize>> =
            (0..c.size()).map(|dst| vec![10 * c.rank() + dst]).collect();
        let got = c.alltoallv(parts);
        got.into_iter().map(|v| v[0]).sum::<usize>()
    });
    assert!(rep.ok(), "{}", rep.summary());
    // Rank r receives 10*src + r from every src: sum = 10*(0+1+2) + 3*r.
    assert_eq!(rep.reference, Some(vec![30, 33, 36]));
}

#[test]
fn real_broadcast_and_allgather_paths_are_clean() {
    let rep = Explorer::new(3).budget(512).explore(|c| {
        let mut v = if c.rank() == 0 { vec![7usize] } else { Vec::new() };
        c.broadcast(0, &mut v);
        let all = c.allgather(vec![c.rank()]);
        v[0] + all.iter().map(|g| g[0]).sum::<usize>()
    });
    assert!(rep.ok(), "{}", rep.summary());
    assert_eq!(rep.reference, Some(vec![10, 10, 10]));
}

#[test]
fn split_communicator_barrier_is_clean() {
    let rep = Explorer::new(3).budget(512).explore(|c| {
        let sub = c.split(c.rank() % 2, c.rank());
        sub.barrier();
        let mut v = [1.0];
        sub.allreduce(&mut v, ReduceOp::Sum);
        (sub.rank(), sub.size(), v[0] as usize)
    });
    assert!(rep.ok(), "{}", rep.summary());
    // Colors: {0, 2} and {1}.
    assert_eq!(rep.reference, Some(vec![(0, 2, 2), (0, 1, 1), (1, 2, 2)]));
}

#[test]
fn recv_any_divergence_is_detected() {
    // Ranks 1 and 2 send to rank 0 with the same tag; rank 0 records the
    // arrival order via MPI_ANY_SOURCE. The result is schedule-dependent,
    // which the explorer must flag as divergence.
    let rep = Explorer::new(3).explore(|c| {
        if c.rank() == 0 {
            let (s1, _) = c.recv_any::<usize>(9);
            let (s2, _) = c.recv_any::<usize>(9);
            vec![s1, s2]
        } else {
            c.send(0, 9, vec![c.rank()]);
            Vec::new()
        }
    });
    let dv = rep.divergence.as_ref().expect("recv_any order must diverge");
    assert_ne!(dv.results_a, dv.results_b);
    assert!(rep.summary().contains("DIVERGENCE"));
}

#[test]
fn rank_panic_is_reported_with_its_schedule() {
    let rep = Explorer::new(2).explore(|c| {
        c.barrier();
        if c.rank() == 1 {
            panic!("rank 1 exploded");
        }
        c.rank()
    });
    let (r, msg, _sched) = rep.panic.as_ref().expect("panic must be caught");
    assert_eq!(*r, 1);
    assert!(msg.contains("exploded"), "{msg}");
}

#[test]
fn sendrecv_ring_is_clean_at_three_ranks() {
    let rep = Explorer::new(3).budget(512).explore(|c| {
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        c.send(next, 4, vec![c.rank()]);
        let got: Vec<usize> = c.recv(prev, 4);
        got[0]
    });
    assert!(rep.ok(), "{}", rep.summary());
    assert_eq!(rep.reference, Some(vec![2, 0, 1]));
}

#[test]
fn serve_gang_split_and_outcome_allgather_is_clean() {
    // One round of the serve pool protocol (serve/src/runtime.rs): intake
    // broadcast on the world, split into gangs (the plan IS the coloring),
    // a gang-internal collective for the attempt, then the world-wide
    // outcome allgather that rebuilds the replicated table.
    for ranks in [2usize, 3] {
        let rep = Explorer::new(ranks).budget(512).explore(move |c| {
            let mut intake = if c.rank() == 0 { vec![42usize] } else { Vec::new() };
            c.broadcast(0, &mut intake);
            // Plan: rank 0 is a one-rank gang, everyone else forms gang 1.
            let color = usize::from(c.rank() != 0);
            let sub = c.split(color, c.rank());
            let mut v = [1.0];
            sub.allreduce(&mut v, ReduceOp::Sum);
            let outcome = intake[0] * 100 + v[0] as usize;
            let all = c.allgather(vec![outcome]);
            all.iter().map(|g| g[0]).sum::<usize>()
        });
        assert!(rep.ok(), "ranks={ranks}: {}", rep.summary());
        // Every rank folds the same replicated outcome vector.
        let want = if ranks == 2 { 2 * 4201 } else { 4201 + 2 * 4202 };
        assert_eq!(rep.reference, Some(vec![want; ranks]), "ranks={ranks}");
    }
}

#[test]
fn intake_broadcast_with_one_rank_killed_is_contained() {
    // The run_gang containment scenario: a rank dies right after intake.
    // The explorer must attribute the kill to rank 2 and tear the world
    // down instead of letting ranks 0-1 hang in the outcome allgather.
    let rep = Explorer::new(3).explore(|c| {
        let mut intake = if c.rank() == 0 { vec![7usize] } else { Vec::new() };
        c.broadcast(0, &mut intake);
        if c.rank() == 2 {
            panic!("injected kill after intake");
        }
        let all = c.allgather(vec![intake[0] + c.rank()]);
        all.iter().map(|g| g[0]).sum::<usize>()
    });
    let (r, msg, _sched) = rep.panic.as_ref().expect("kill must be reported");
    assert_eq!(*r, 2);
    assert!(msg.contains("injected kill"), "{msg}");
    assert!(!rep.ok());
}
