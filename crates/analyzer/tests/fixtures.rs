//! Golden-file fixture suite.
//!
//! Each `fixtures/<name>.rs` holds deliberate violations (or tricky clean
//! code); its first line is a `//@ path: <virtual repo path>` directive that
//! sets the file class the lints see. `fixtures/<name>.expected` lists the
//! surviving diagnostics, one per line, as `<lint>\t<line>` (`#` comments
//! and blanks ignored). The engine's workspace walk skips `fixtures/`
//! directories, so these violations never reach the real gate.

use diffreg_analyzer::engine::analyze_file;
use diffreg_analyzer::lint::{Lint, ALL_LINTS};
use diffreg_analyzer::scope::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_paths() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut out: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    out.sort();
    out
}

fn analyze_fixture(path: &Path) -> (Vec<String>, BTreeSet<Lint>) {
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let first = text.lines().next().unwrap_or("");
    let virt = first
        .strip_prefix("//@ path:")
        .map(str::trim)
        .unwrap_or_else(|| panic!("{}: missing `//@ path:` directive", path.display()));
    let sf = SourceFile::parse(Path::new(virt), &text);
    let rep = analyze_file(&sf);
    let lines = rep.findings.iter().map(|d| format!("{}\t{}", d.lint, d.line)).collect();
    let fired = rep.findings.iter().map(|d| d.lint).collect();
    (lines, fired)
}

#[test]
fn fixtures_match_their_expected_diagnostics() {
    let paths = fixture_paths();
    assert!(paths.len() >= 10, "expected >= 10 fixtures, found {}", paths.len());
    for path in &paths {
        let (got, _) = analyze_fixture(path);
        let expected_path = path.with_extension("expected");
        let want_text = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing {}", expected_path.display()));
        let want: Vec<String> = want_text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        assert_eq!(got, want, "diagnostics mismatch for {}", path.display());
    }
}

#[test]
fn every_registered_lint_fires_in_some_fixture() {
    let mut fired: BTreeSet<Lint> = BTreeSet::new();
    for path in fixture_paths() {
        fired.extend(analyze_fixture(&path).1);
    }
    for &lint in ALL_LINTS {
        assert!(fired.contains(&lint), "no fixture exercises `{lint}`");
    }
}
