//! Rigid (translation) registration baseline for the paper's Fig. 1
//! comparison: a low-dimensional map that removes bulk misalignment but
//! leaves the deformable residual behind. On the periodic domain, rotations
//! are not well defined, so the rigid subset we implement is the
//! translation group; the deformable solver is what removes the rest.

use diffreg_comm::Comm;
use diffreg_grid::ScalarField;
use diffreg_transport::Workspace;

/// Result of the translation-registration baseline.
#[derive(Debug, Clone)]
pub struct RigidOutcome {
    /// The optimal shift `s` with registered image `ρ_T(x − s)`.
    pub shift: [f64; 3],
    /// Data term `1/2 ||ρ_T(x−s) − ρ_R||²` at the optimum.
    pub mismatch: f64,
    /// The shifted template.
    pub registered: ScalarField,
    /// Gradient-descent iterations performed.
    pub iterations: usize,
}

/// Registers `rho_t` to `rho_r` over the translation group by gradient
/// descent with Armijo backtracking. Shifts are applied spectrally (exact
/// for band-limited images).
pub fn register_translation<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    max_iter: usize,
) -> RigidOutcome {
    let grid = ws.grid();
    let objective = |s: [f64; 3]| -> (f64, ScalarField) {
        let shifted = ws.fft.translate(rho_t, s, ws.timers);
        let mut r = shifted.clone();
        r.axpy(-1.0, rho_r);
        (0.5 * r.inner(&r, &grid, ws.comm), shifted)
    };

    let mut s = [0.0_f64; 3];
    let (mut j, mut registered) = objective(s);
    let mut iterations = 0;
    for _ in 0..max_iter {
        // ∂J/∂s_a = ⟨ρ_T(x−s) − ρ_R, −∂_a ρ_T(x−s)⟩.
        let grad_img = ws.fft.gradient(&registered, ws.timers);
        let mut resid = registered.clone();
        resid.axpy(-1.0, rho_r);
        let mut g = [0.0_f64; 3];
        for (ga, comp) in g.iter_mut().zip(&grad_img.comps) {
            *ga = -resid.inner(comp, &grid, ws.comm);
        }
        let gnorm2 = g.iter().map(|v| v * v).sum::<f64>();
        if gnorm2.sqrt() < 1e-10 {
            break;
        }
        // Backtracking line search along −g.
        let mut step = 1.0 / gnorm2.sqrt().max(1.0);
        let mut advanced = false;
        for _ in 0..25 {
            let trial = [s[0] - step * g[0], s[1] - step * g[1], s[2] - step * g[2]];
            let (jt, img) = objective(trial);
            if jt < j - 1e-4 * step * gnorm2 {
                s = trial;
                j = jt;
                registered = img;
                advanced = true;
                break;
            }
            step *= 0.5;
        }
        iterations += 1;
        if !advanced {
            break;
        }
    }
    RigidOutcome { shift: s, mismatch: j, registered, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::{SerialComm, Timers};
    use diffreg_grid::{Decomp, Grid};
    use diffreg_pfft::PencilFft;

    fn setup(grid: Grid) -> (SerialComm, Decomp, Timers) {
        (SerialComm::new(), Decomp::new(grid, 1), Timers::new())
    }

    #[test]
    fn recovers_pure_translation() {
        let grid = Grid::cubic(16);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let true_shift = [0.5, -0.3, 0.2];
        let img = |x: [f64; 3]| x[0].sin() * x[1].cos() + 0.4 * (x[2] + 2.0 * x[0]).sin();
        let rho_t = ScalarField::from_fn(&grid, ws.block(), img);
        let rho_r = ScalarField::from_fn(&grid, ws.block(), |x| {
            img([x[0] - true_shift[0], x[1] - true_shift[1], x[2] - true_shift[2]])
        });
        let out = register_translation(&ws, &rho_t, &rho_r, 100);
        for (a, (got, want)) in out.shift.iter().zip(&true_shift).enumerate() {
            assert!((got - want).abs() < 1e-3, "axis {a}: {got} vs {want}");
        }
        let initial = {
            let mut r = rho_t.clone();
            r.axpy(-1.0, &rho_r);
            0.5 * r.inner(&r, &grid, &comm)
        };
        assert!(out.mismatch < 1e-4 * initial, "mismatch {} vs initial {initial}", out.mismatch);
    }

    #[test]
    fn cannot_remove_nonrigid_deformation() {
        // The Fig. 1 story: a translation helps, but a genuinely deformable
        // warp leaves substantial residual behind.
        let grid = Grid::cubic(16);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| {
            (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        // Non-rigid warp plus a bulk shift.
        let rho_r = ScalarField::from_fn(&grid, ws.block(), |x| {
            let y = [
                x[0] - 0.3 - 0.35 * x[1].sin(),
                x[1] - 0.1 + 0.25 * x[0].cos(),
                x[2],
            ];
            (y[0].sin().powi(2) + y[1].sin().powi(2) + y[2].sin().powi(2)) / 3.0
        });
        let initial = {
            let mut r = rho_t.clone();
            r.axpy(-1.0, &rho_r);
            0.5 * r.inner(&r, &grid, &comm)
        };
        let out = register_translation(&ws, &rho_t, &rho_r, 100);
        assert!(out.mismatch < initial, "translation must help somewhat");
        assert!(
            out.mismatch > 0.05 * initial,
            "translation alone must NOT solve a deformable problem: {} vs {initial}",
            out.mismatch
        );
    }
}
