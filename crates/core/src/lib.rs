//! # diffreg-core
//!
//! The paper's primary contribution: a distributed-memory solver for large
//! deformation diffeomorphic image registration, formulated as PDE-
//! constrained optimal control (paper eq. 2) and solved with a
//! preconditioned, inexact Gauss-Newton-Krylov method (§III).
//!
//! The pieces:
//! * [`RegProblem`] — objective, reduced adjoint gradient (eq. 4),
//!   Gauss-Newton Hessian matvec (eq. 5), spectral preconditioner;
//! * [`register`] / [`register_with_continuation`] — the solve drivers;
//! * deformation-map diagnostics (`det(∇y₁)`, diffeomorphy checks).
//!
//! ```no_run
//! use diffreg_comm::{SerialComm, Timers};
//! use diffreg_grid::{Decomp, Grid, ScalarField};
//! use diffreg_pfft::PencilFft;
//! use diffreg_transport::Workspace;
//! use diffreg_core::{register, RegistrationConfig};
//!
//! let grid = Grid::cubic(64);
//! let comm = SerialComm::new();
//! let decomp = Decomp::new(grid, 1);
//! let fft = PencilFft::new(&comm, decomp);
//! let timers = Timers::new();
//! let ws = Workspace::new(&comm, &decomp, &fft, &timers);
//! let template = ScalarField::from_fn(&grid, ws.block(), |x| x[0].sin());
//! let reference = ScalarField::from_fn(&grid, ws.block(), |x| (x[0] - 0.2).sin());
//! let outcome = register(&ws, &template, &reference, RegistrationConfig::default());
//! println!("relative mismatch: {}", outcome.relative_mismatch());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod distance;
mod driver;
mod fieldops;
mod jacobian;
mod multires;
mod problem;
mod rigid;

pub use checkpoint::{CheckpointError, CheckpointStore, ResumeLoad, SolverCheckpoint};
pub use config::{HessianKind, RegistrationConfig};
pub use distance::Distance;
pub use driver::{
    register, register_from, register_from_observed, register_with_continuation,
    register_with_continuation_checkpointed, register_with_continuation_checkpointed_hooked,
    register_with_continuation_logged, RegistrationOutcome,
};
pub use fieldops::FieldOps;
pub use multires::{continuation_grids, register_multilevel};
pub use jacobian::{
    classify, det_deformation_gradient, det_stats, displacement, DetGradStats, JacobianClass,
};
pub use problem::RegProblem;
pub use rigid::{register_translation, RigidOutcome};
