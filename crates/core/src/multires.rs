//! Grid continuation (coarse-to-fine registration).
//!
//! The paper names grid continuation as the standard technique to tame the
//! nonlinearity and the β-dependence of the preconditioner (§I Limitations:
//! "There are several techniques ... e.g., grid continuation and multilevel
//! preconditioning"; the paper itself focuses on the single-level solver).
//! This module implements the continuation variant: solve on a coarse grid,
//! prolong the velocity spectrally, and refine — image transfers and
//! velocity prolongation are exact Fourier truncation/padding.
//!
//! Transfers require the full spectrum on one rank, so this driver is a
//! single-rank (node-local) feature; the per-level solves use the same
//! distributed-capable code paths with a one-rank communicator.

use diffreg_comm::{Comm, Timers};
use diffreg_grid::{Decomp, Grid, Layout, ScalarField, VectorField};
use diffreg_optim::NewtonReport;
use diffreg_pfft::PencilFft;
use diffreg_spectral::{coarsen_extents, spectral_resample};
use diffreg_transport::Workspace;

use crate::config::RegistrationConfig;
use crate::driver::{register_from, RegistrationOutcome};

/// Span name for a grid transfer: restriction coarsens, prolongation
/// refines (equal-size transfers count as prolongation — they only occur
/// when re-expressing a field on the same grid).
fn transfer_span(from: &Grid, to: &Grid) -> &'static str {
    if to.total() < from.total() {
        "multires.restrict"
    } else {
        "multires.prolong"
    }
}

/// Resamples a serial scalar field between grids.
fn resample_scalar(f: &ScalarField, from: &Grid, to: &Grid) -> ScalarField {
    let _span = diffreg_telemetry::span(transfer_span(from, to));
    let data = spectral_resample(f.data(), from.n, to.n);
    let block = Decomp::new(*to, 1).block(0, Layout::Spatial);
    ScalarField::from_vec(block, data)
}

/// Resamples a serial vector field between grids.
fn resample_vector(v: &VectorField, from: &Grid, to: &Grid) -> VectorField {
    let _span = diffreg_telemetry::span(transfer_span(from, to));
    let block = Decomp::new(*to, 1).block(0, Layout::Spatial);
    let mut out = VectorField::zeros(block);
    for a in 0..3 {
        let data = spectral_resample(v.comps[a].data(), from.n, to.n);
        out.comps[a] = ScalarField::from_vec(block, data);
    }
    out
}

/// The grid hierarchy for `levels` levels of coarsening (coarsest first,
/// finest == `fine`). Extents never drop below `min_extent`.
pub fn continuation_grids(fine: Grid, levels: usize, min_extent: usize) -> Vec<Grid> {
    let mut grids = vec![fine];
    let mut prev = fine.n;
    for _ in 0..levels {
        let next = coarsen_extents(prev, min_extent);
        if next == prev {
            break;
        }
        grids.push(Grid::new(next));
        prev = next;
    }
    grids.reverse();
    grids
}

/// Coarse-to-fine registration: solves on each level of the hierarchy, warm
/// starting from the spectrally prolonged velocity of the previous level.
/// Returns the finest-level outcome plus the per-level Newton reports
/// (coarsest first).
///
/// Panics if `comm` has more than one rank (see module docs).
pub fn register_multilevel<C: Comm>(
    comm: &C,
    fine_grid: Grid,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    levels: usize,
) -> (RegistrationOutcome, Vec<NewtonReport>) {
    assert_eq!(comm.size(), 1, "grid continuation is a single-rank feature in this release");
    assert_eq!(rho_t.local_len(), fine_grid.total(), "template not on the fine grid");
    let grids = continuation_grids(fine_grid, levels, 8);

    let mut reports = Vec::with_capacity(grids.len());
    let mut velocity: Option<(Grid, VectorField)> = None;
    let mut outcome = None;
    for grid in &grids {
        let t_level = resample_scalar(rho_t, &fine_grid, grid);
        let r_level = resample_scalar(rho_r, &fine_grid, grid);
        let decomp = Decomp::new(*grid, 1);
        let fft = PencilFft::new(comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(comm, &decomp, &fft, &timers);
        let v0 = match &velocity {
            Some((from, v)) => resample_vector(v, from, grid),
            None => VectorField::zeros(decomp.block(0, Layout::Spatial)),
        };
        let out = register_from(&ws, &t_level, &r_level, cfg, v0);
        reports.push(out.report.clone());
        velocity = Some((*grid, out.velocity.clone()));
        outcome = Some(out);
    }
    // diffreg-allow(no-unwrap-in-lib): continuation_grids always returns at least the fine grid, so the loop always sets outcome
    (outcome.unwrap(), reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::SerialComm;
    use diffreg_optim::NewtonOptions;
    use diffreg_transport::SemiLagrangian;

    #[test]
    fn hierarchy_construction() {
        let grids = continuation_grids(Grid::cubic(32), 2, 8);
        assert_eq!(grids.len(), 3);
        assert_eq!(grids[0].n, [8, 8, 8]);
        assert_eq!(grids[1].n, [16, 16, 16]);
        assert_eq!(grids[2].n, [32, 32, 32]);
        // Clamped at min extent.
        let grids = continuation_grids(Grid::cubic(16), 5, 8);
        assert_eq!(grids.first().unwrap().n, [8, 8, 8]);
        assert_eq!(grids.len(), 2);
    }

    #[test]
    fn multilevel_matches_or_beats_single_level_quality() {
        let comm = SerialComm::new();
        let fine = Grid::cubic(16);
        let decomp = Decomp::new(fine, 1);
        let fft = PencilFft::new(&comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let t = ScalarField::from_fn(&fine, ws.block(), |x| {
            (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        let v_star = VectorField::from_fn(&fine, ws.block(), |x| {
            [0.5 * x[0].cos() * x[1].sin(), 0.5 * x[1].cos() * x[0].sin(), 0.5 * x[0].cos() * x[2].sin()]
        });
        let sl = SemiLagrangian::new(&ws, &v_star, 4);
        let r = sl.solve_state(&ws, &t).pop().unwrap();

        let cfg = RegistrationConfig {
            beta: 1e-3,
            newton: NewtonOptions { max_iter: 3, ..Default::default() },
            ..Default::default()
        };
        let (multi, reports) = register_multilevel(&comm, fine, &t, &r, cfg, 1);
        assert_eq!(reports.len(), 2, "two levels expected");
        let single = crate::register(&ws, &t, &r, cfg);
        // The warm-started fine solve must reach at least comparable quality.
        assert!(
            multi.relative_mismatch() < single.relative_mismatch() * 1.3 + 0.02,
            "multilevel {} vs single {}",
            multi.relative_mismatch(),
            single.relative_mismatch()
        );
        assert!(multi.det_grad.diffeomorphic);
    }

    #[test]
    fn resampling_preserves_field_type() {
        let fine = Grid::cubic(16);
        let coarse = Grid::cubic(8);
        let block = Decomp::new(fine, 1).block(0, Layout::Spatial);
        let f = ScalarField::from_fn(&fine, block, |x| x[0].sin() + 0.5);
        let c = resample_scalar(&f, &fine, &coarse);
        assert_eq!(c.local_len(), coarse.total());
        // Mean (zero mode) is preserved exactly.
        let comm = SerialComm::new();
        let mf = f.mean(&fine, &comm);
        let mc = c.mean(&coarse, &comm);
        assert!((mf - mc).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rejects_multirank_comm() {
        // A SerialComm is fine; fake a failure by calling with a distributed
        // communicator inside run_threaded.
        diffreg_comm::run_threaded(2, |comm| {
            let grid = Grid::cubic(8);
            let block = Decomp::new(grid, 1).block(0, Layout::Spatial);
            let f = ScalarField::zeros(block);
            let _ = register_multilevel(
                comm,
                grid,
                &f,
                &f.clone(),
                RegistrationConfig::default(),
                1,
            );
        });
    }
}
