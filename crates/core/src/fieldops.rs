//! The L²(Ω)³ vector space of velocity fields, as seen by the Krylov/Newton
//! drivers.

use diffreg_comm::Comm;
use diffreg_grid::{Grid, Precision, VectorField};
use diffreg_optim::VectorOps;

/// Distributed L² vector-space operations for [`VectorField`]s.
pub struct FieldOps<'a, C: Comm> {
    comm: &'a C,
    grid: Grid,
    precision: Precision,
}

impl<'a, C: Comm> FieldOps<'a, C> {
    /// Creates the ops handle for one communicator/grid pair (f64
    /// reductions).
    pub fn new(comm: &'a C, grid: Grid) -> Self {
        Self::with_precision(comm, grid, Precision::F64)
    }

    /// Creates the ops handle with an explicit reduction precision policy.
    pub fn with_precision(comm: &'a C, grid: Grid, precision: Precision) -> Self {
        Self { comm, grid, precision }
    }
}

impl<C: Comm> VectorOps<VectorField> for FieldOps<'_, C> {
    fn dot(&self, a: &VectorField, b: &VectorField) -> f64 {
        a.inner_p(b, &self.grid, self.comm, self.precision)
    }

    fn axpy(&self, y: &mut VectorField, alpha: f64, x: &VectorField) {
        y.axpy(alpha, x);
    }

    fn scale(&self, y: &mut VectorField, alpha: f64) {
        y.scale(alpha);
    }

    fn zero_like(&self, v: &VectorField) -> VectorField {
        VectorField::zeros(v.block())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::SerialComm;
    use diffreg_grid::{Decomp, Layout};

    #[test]
    fn dot_is_weighted_l2() {
        let grid = Grid::cubic(4);
        let comm = SerialComm::new();
        let d = Decomp::new(grid, 1);
        let block = d.block(0, Layout::Spatial);
        let ops = FieldOps::new(&comm, grid);
        let mut ones = VectorField::zeros(block);
        ones.fill(1.0);
        // ⟨1,1⟩ over three components = 3 (2π)³.
        let expect = 3.0 * std::f64::consts::TAU.powi(3);
        assert!((ops.dot(&ones, &ones) - expect).abs() < 1e-10);
        assert!((ops.norm(&ones) - expect.sqrt()).abs() < 1e-10);
        let z = ops.zero_like(&ones);
        assert_eq!(ops.dot(&z, &ones), 0.0);
    }
}
