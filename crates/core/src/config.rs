//! Solver configuration mirroring the paper's experimental knobs (§IV-A3).

use crate::distance::Distance;
use diffreg_grid::Precision;
use diffreg_interp::Kernel;
use diffreg_optim::NewtonOptions;
use diffreg_spectral::RegOrder;

/// Which second-order operator the Krylov solver inverts (paper §II-B-b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HessianKind {
    /// Gauss-Newton approximation: drop the λ terms of eq. (5). Guaranteed
    /// positive semidefinite; the paper's choice for all reported runs
    /// ("since the problem is non-convex ... we opt for a Gauss-Newton
    /// approximation").
    #[default]
    GaussNewton,
    /// The full Newton Hessian including the `div(λṽ)` source in the
    /// incremental adjoint and the `λ∇ρ̃` term in `b̃`. More accurate near
    /// the solution, costlier per matvec, and indefinite far from it (the
    /// PCG safeguard handles negative curvature).
    FullNewton,
}

/// Configuration of one registration solve.
#[derive(Debug, Clone, Copy)]
pub struct RegistrationConfig {
    /// Regularization weight β (paper: 1e-2 for the scaling runs).
    pub beta: f64,
    /// Sobolev order of the regularization seminorm (paper: H², the
    /// biharmonic operator).
    pub reg: RegOrder,
    /// Number of semi-Lagrangian time steps (paper: nt = 4).
    pub nt: usize,
    /// Enforce `div v = 0` (volume/mass-preserving diffeomorphism) via the
    /// Leray projection.
    pub incompressible: bool,
    /// Interpolation kernel for the semi-Lagrangian scheme.
    pub kernel: Kernel,
    /// Spectrally smooth the input images with a Gaussian of one grid cell
    /// bandwidth before solving (paper §III-B1).
    pub smooth_images: bool,
    /// Gauss-Newton (paper default) or full Newton second-order operator.
    pub hessian: HessianKind,
    /// Image distance measure for the data term (SSD in the paper; NCC is
    /// the intensity-invariant extension of §II-A).
    pub distance: Distance,
    /// Apply the spectral `(β|k|^{2m} + 1)⁻¹` preconditioner in the Krylov
    /// solver (paper §III-A). Disable only for ablation studies.
    pub precondition: bool,
    /// Outer Newton-Krylov options (gtol = 1e-2 and quadratic forcing by
    /// default, as in the paper).
    pub newton: NewtonOptions,
    /// Checkpoint the continuation solve every this many accepted Newton
    /// iterations (`0` disables; only takes effect when the driver is also
    /// given an enabled
    /// [`CheckpointStore`](crate::checkpoint::CheckpointStore)).
    pub checkpoint_every: usize,
    /// Compute precision for inner products and reductions (objective,
    /// regularization energy, Krylov dot products). `F32` rounds per-point
    /// products through single precision while accumulating in f64 — the
    /// CLAIRE-GPU mixed-precision recipe. Defaults from `DIFFREG_PRECISION`.
    pub precision: Precision,
}

impl Default for RegistrationConfig {
    fn default() -> Self {
        Self {
            beta: 1e-2,
            reg: RegOrder::H2,
            nt: 4,
            incompressible: false,
            kernel: Kernel::Tricubic,
            smooth_images: true,
            hessian: HessianKind::GaussNewton,
            distance: Distance::Ssd,
            precondition: true,
            newton: NewtonOptions::default(),
            checkpoint_every: 0,
            precision: Precision::from_env(),
        }
    }
}

impl RegistrationConfig {
    /// Builder-style: set β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Builder-style: set the number of time steps.
    pub fn with_nt(mut self, nt: usize) -> Self {
        self.nt = nt;
        self
    }

    /// Builder-style: enable the incompressibility constraint.
    pub fn with_incompressible(mut self, on: bool) -> Self {
        self.incompressible = on;
        self
    }

    /// Builder-style: set the regularization order.
    pub fn with_reg(mut self, reg: RegOrder) -> Self {
        self.reg = reg;
        self
    }

    /// Builder-style: checkpoint every `n` accepted Newton iterations
    /// (`0` disables).
    pub fn with_checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Builder-style: set the reduction precision policy.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RegistrationConfig::default();
        assert_eq!(c.beta, 1e-2);
        assert_eq!(c.nt, 4);
        assert_eq!(c.reg, RegOrder::H2);
        assert!(!c.incompressible);
        assert_eq!(c.newton.gtol, 1e-2);
        assert_eq!(c.checkpoint_every, 0, "checkpointing is opt-in");
    }

    #[test]
    fn builders_compose() {
        let c = RegistrationConfig::default()
            .with_beta(1e-4)
            .with_nt(8)
            .with_incompressible(true)
            .with_reg(RegOrder::H1);
        assert_eq!(c.beta, 1e-4);
        assert_eq!(c.nt, 8);
        assert!(c.incompressible);
        assert_eq!(c.reg, RegOrder::H1);
    }
}
