//! Checkpoint/restart for the continuation driver.
//!
//! A [`SolverCheckpoint`] captures everything the Gauss-Newton-Krylov
//! continuation loop needs to resume *bitwise identically* after a crash:
//! the β-continuation level, the number of Newton iterations completed at
//! that level, the level's reference gradient norm `‖g₀‖` (the Newton
//! relative-tolerance anchor), and this rank's slab of the velocity iterate.
//! Everything else the solver holds (state/adjoint trajectories, scatter
//! plans, spectral symbols) is a pure function of the iterate and the
//! inputs, and is rebuilt on resume — that is what makes the restart exact
//! rather than approximate.
//!
//! Checkpoints are *per rank*: each rank serializes its local slab, so no
//! extra communication happens on the checkpoint path and a restart must use
//! the same grid and process decomposition (validated by [`SolverCheckpoint::
//! velocity_field`]).
//!
//! [`CheckpointStore`] abstracts where the bytes go: `Disabled` (no-op),
//! `Memory` (a shared map — what the tests and in-process retries use), or
//! `File` (one file per rank, written atomically via a temp file + rename so
//! a crash mid-write never corrupts the previous checkpoint).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use diffreg_grid::{Block, VectorField};

/// Serialization magic ("DRCK") + format version.
const MAGIC: &[u8; 4] = b"DRCK";
const VERSION: u32 = 1;

/// One rank's resumable snapshot of the continuation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverCheckpoint {
    /// Index into the β schedule of the level being solved.
    pub level: usize,
    /// β of that level (consistency check on restore).
    pub beta: f64,
    /// Newton iterations already accepted at this level. `0` means the
    /// level has not started: resume warm-starts it from `velocity` through
    /// the ordinary (projecting) entry path.
    pub completed_iters: usize,
    /// The level's initial gradient norm (NaN when `completed_iters == 0`;
    /// the fresh level recomputes it).
    pub g0norm: f64,
    /// This rank's local slab of the three velocity components.
    pub velocity: [Vec<f64>; 3],
}

impl SolverCheckpoint {
    /// Captures a checkpoint from a velocity iterate.
    pub fn capture(
        level: usize,
        beta: f64,
        completed_iters: usize,
        g0norm: f64,
        v: &VectorField,
    ) -> Self {
        let velocity =
            [v.comps[0].data().to_vec(), v.comps[1].data().to_vec(), v.comps[2].data().to_vec()];
        Self { level, beta, completed_iters, g0norm, velocity }
    }

    /// Reconstructs the velocity iterate on `block`. Panics if the
    /// checkpointed slab length does not match the block (i.e. the restart
    /// uses a different grid or decomposition than the checkpoint).
    pub fn velocity_field(&self, block: Block) -> VectorField {
        assert_eq!(
            self.velocity[0].len(),
            block.len(),
            "checkpoint slab length does not match this rank's block: the \
             restart must use the same grid and process decomposition"
        );
        let mut v = VectorField::zeros(block);
        for c in 0..3 {
            v.comps[c].data_mut().copy_from_slice(&self.velocity[c]);
        }
        v
    }

    /// Serializes to the `DRCK` v1 little-endian wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.velocity[0].len();
        assert!(self.velocity.iter().all(|c| c.len() == n), "ragged velocity components");
        let mut out = Vec::with_capacity(4 + 4 + 8 * 4 + 8 + 24 * n);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.level as u64).to_le_bytes());
        out.extend_from_slice(&(self.completed_iters as u64).to_le_bytes());
        out.extend_from_slice(&self.beta.to_le_bytes());
        out.extend_from_slice(&self.g0norm.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for comp in &self.velocity {
            for x in comp {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Parses the `DRCK` wire format; rejects bad magic, unknown versions,
    /// and truncated payloads with a descriptive error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(*off..*off + n)
                .ok_or_else(|| format!("truncated checkpoint: need {} bytes at {}", n, off))?;
            *off += n;
            Ok(s)
        };
        let magic = take(&mut off, 4)?;
        if magic != MAGIC {
            return Err(format!("bad checkpoint magic {:?} (want {:?})", magic, MAGIC));
        }
        let version = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap());
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version} (want {VERSION})"));
        }
        let u64_at = |off: &mut usize| -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(off, 8)?.try_into().unwrap()))
        };
        let level = u64_at(&mut off)? as usize;
        let completed_iters = u64_at(&mut off)? as usize;
        let beta = f64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        let g0norm = f64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        let n = u64_at(&mut off)? as usize;
        let mut velocity: [Vec<f64>; 3] = [vec![], vec![], vec![]];
        for comp in velocity.iter_mut() {
            comp.reserve_exact(n);
            for _ in 0..n {
                comp.push(f64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap()));
            }
        }
        if off != bytes.len() {
            return Err(format!("{} trailing bytes after checkpoint payload", bytes.len() - off));
        }
        Ok(Self { level, beta, completed_iters, g0norm, velocity })
    }
}

/// Where checkpoints are kept. Cheap to clone; the `Memory` variant shares
/// its map across clones (so the store survives a rank's panic and a
/// restarted solve can read it back).
#[derive(Debug, Clone)]
pub enum CheckpointStore {
    /// Checkpointing disabled: saves are no-ops, loads return `None`.
    Disabled,
    /// In-memory per-rank map, shared between clones.
    Memory(Arc<Mutex<HashMap<usize, Vec<u8>>>>),
    /// One file per rank under this directory (`ckpt.rank{r}.drck`),
    /// written atomically (temp file + rename).
    File(PathBuf),
}

impl CheckpointStore {
    /// A fresh shared in-memory store.
    pub fn memory() -> Self {
        CheckpointStore::Memory(Arc::new(Mutex::new(HashMap::new())))
    }

    /// A file-backed store rooted at `dir` (created on first save).
    pub fn file(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore::File(dir.into())
    }

    /// Whether saves actually persist anything.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, CheckpointStore::Disabled)
    }

    fn rank_path(dir: &std::path::Path, rank: usize) -> PathBuf {
        dir.join(format!("ckpt.rank{rank}.drck"))
    }

    /// Persists `rank`'s checkpoint bytes, replacing any previous one. File
    /// saves are atomic: a crash mid-save leaves the old checkpoint intact.
    pub fn save(&self, rank: usize, bytes: &[u8]) {
        match self {
            CheckpointStore::Disabled => {}
            CheckpointStore::Memory(map) => {
                map.lock().unwrap().insert(rank, bytes.to_vec());
            }
            CheckpointStore::File(dir) => {
                std::fs::create_dir_all(dir).expect("create checkpoint dir");
                let path = Self::rank_path(dir, rank);
                let tmp = path.with_extension("drck.tmp");
                std::fs::write(&tmp, bytes).expect("write checkpoint temp file");
                std::fs::rename(&tmp, &path).expect("publish checkpoint file");
            }
        }
    }

    /// Loads `rank`'s most recent checkpoint bytes, if any.
    pub fn load(&self, rank: usize) -> Option<Vec<u8>> {
        match self {
            CheckpointStore::Disabled => None,
            CheckpointStore::Memory(map) => map.lock().unwrap().get(&rank).cloned(),
            CheckpointStore::File(dir) => std::fs::read(Self::rank_path(dir, rank)).ok(),
        }
    }

    /// Drops `rank`'s checkpoint (after a successful run, so a later solve
    /// does not accidentally resume from a stale snapshot).
    pub fn clear(&self, rank: usize) {
        match self {
            CheckpointStore::Disabled => {}
            CheckpointStore::Memory(map) => {
                map.lock().unwrap().remove(&rank);
            }
            CheckpointStore::File(dir) => {
                let _ = std::fs::remove_file(Self::rank_path(dir, rank));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolverCheckpoint {
        SolverCheckpoint {
            level: 1,
            beta: 1e-3,
            completed_iters: 2,
            g0norm: 0.123456789,
            velocity: [
                vec![0.25, -1.5, 3.0e-17],
                vec![f64::MIN_POSITIVE, 0.0, -0.0],
                vec![1.0, 2.0, 3.0],
            ],
        }
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let ck = sample();
        let back = SolverCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.level, ck.level);
        assert_eq!(back.completed_iters, ck.completed_iters);
        assert_eq!(back.beta.to_bits(), ck.beta.to_bits());
        assert_eq!(back.g0norm.to_bits(), ck.g0norm.to_bits());
        for c in 0..3 {
            let a: Vec<u64> = ck.velocity[c].iter().map(|x| x.to_bits()).collect();
            let b: Vec<u64> = back.velocity[c].iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "component {c} not bitwise identical");
        }
    }

    #[test]
    fn nan_g0norm_survives_roundtrip() {
        // Fresh-level boundary checkpoints carry g0norm = NaN.
        let mut ck = sample();
        ck.completed_iters = 0;
        ck.g0norm = f64::NAN;
        let back = SolverCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert!(back.g0norm.is_nan());
        assert_eq!(back.g0norm.to_bits(), ck.g0norm.to_bits());
    }

    #[test]
    fn corrupt_and_truncated_payloads_are_rejected() {
        let bytes = sample().to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SolverCheckpoint::from_bytes(&bad).unwrap_err().contains("magic"));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(SolverCheckpoint::from_bytes(&wrong_version)
            .unwrap_err()
            .contains("version"));
        let truncated = &bytes[..bytes.len() - 5];
        assert!(SolverCheckpoint::from_bytes(truncated).unwrap_err().contains("truncated"));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SolverCheckpoint::from_bytes(&trailing).unwrap_err().contains("trailing"));
    }

    #[test]
    fn memory_store_survives_clone_and_clear() {
        let store = CheckpointStore::memory();
        assert!(store.is_enabled());
        assert!(store.load(0).is_none());
        let clone = store.clone();
        clone.save(0, b"abc");
        clone.save(3, b"xyz");
        assert_eq!(store.load(0).as_deref(), Some(&b"abc"[..]));
        assert_eq!(store.load(3).as_deref(), Some(&b"xyz"[..]));
        store.clear(0);
        assert!(store.load(0).is_none());
        assert!(store.load(3).is_some());
    }

    #[test]
    fn disabled_store_is_a_no_op() {
        let store = CheckpointStore::Disabled;
        assert!(!store.is_enabled());
        store.save(0, b"abc");
        assert!(store.load(0).is_none());
    }

    #[test]
    fn file_store_roundtrips_atomically() {
        let dir = std::env::temp_dir()
            .join(format!("diffreg-ckpt-test-{}-{:?}", std::process::id(), std::thread::current().id()));
        let store = CheckpointStore::file(&dir);
        let ck = sample();
        store.save(2, &ck.to_bytes());
        // No temp file left behind after the rename.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let back = SolverCheckpoint::from_bytes(&store.load(2).unwrap()).unwrap();
        assert_eq!(back, ck);
        store.clear(2);
        assert!(store.load(2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
