//! Checkpoint/restart for the continuation driver.
//!
//! A [`SolverCheckpoint`] captures everything the Gauss-Newton-Krylov
//! continuation loop needs to resume *bitwise identically* after a crash:
//! the β-continuation level, the number of Newton iterations completed at
//! that level, the level's reference gradient norm `‖g₀‖` (the Newton
//! relative-tolerance anchor), and this rank's slab of the velocity iterate.
//! Everything else the solver holds (state/adjoint trajectories, scatter
//! plans, spectral symbols) is a pure function of the iterate and the
//! inputs, and is rebuilt on resume — that is what makes the restart exact
//! rather than approximate.
//!
//! Checkpoints are *per rank*: each rank serializes its local slab, so no
//! extra communication happens on the checkpoint path and a restart must use
//! the same grid and process decomposition (validated by [`SolverCheckpoint::
//! velocity_field`]).
//!
//! The `DRCK` v2 wire format is self-validating: the header carries the
//! payload length and an FNV-1a 64 checksum of the payload, so a torn write
//! (truncation, bit rot, a crash mid-`write`) is *detected* at load time and
//! reported as a typed [`CheckpointError`] instead of deserializing garbage
//! velocity data into the solver.
//!
//! [`CheckpointStore`] abstracts where the bytes go: `Disabled` (no-op),
//! `Memory` (a shared map — what the tests and in-process retries use), or
//! `File` (one file per rank, written atomically via a temp file + rename).
//! Both writable backends keep **two generations** per rank: `save` rotates
//! the current checkpoint into the previous-generation slot before
//! publishing the new one, and [`CheckpointStore::load_for_resume`] falls
//! back to the previous good generation when the current one fails
//! validation. A corrupt checkpoint therefore costs at most one
//! checkpoint interval of recomputation, never the whole run.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use diffreg_grid::{Block, VectorField};

/// Serialization magic ("DRCK") + format version.
const MAGIC: &[u8; 4] = b"DRCK";
const VERSION: u32 = 2;

/// Byte length of the v2 header: magic + version + payload length + FNV-1a
/// checksum of the payload.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// FNV-1a 64-bit hash — the checkpoint payload checksum. Not cryptographic;
/// it detects the failure modes checkpoints actually suffer (truncation,
/// torn writes, bit corruption), which is all the fault model asks for.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a checkpoint failed to load: the typed surface of the validation
/// path. Every variant means "this generation is unusable", and the caller
/// ([`CheckpointStore::load_for_resume`]) falls back to the previous
/// generation or a fresh start instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Fewer bytes than `need` were available at offset `at` — a truncated
    /// (torn) write.
    Truncated {
        /// Bytes the parser needed at the failure offset.
        need: usize,
        /// Offset at which the payload ran out.
        at: usize,
    },
    /// The first four bytes are not `DRCK`.
    BadMagic,
    /// A `DRCK` header with a version this build does not speak.
    BadVersion(u32),
    /// The header-declared payload length disagrees with the bytes present.
    LengthMismatch {
        /// Payload length the header promised.
        expect: usize,
        /// Payload length actually present.
        got: usize,
    },
    /// The payload hash does not match the header checksum — bit corruption
    /// within a length-consistent payload.
    ChecksumMismatch {
        /// Checksum the header promised.
        expect: u64,
        /// Checksum of the payload as found.
        got: u64,
    },
    /// Well-formed checkpoint followed by garbage bytes.
    TrailingBytes(usize),
    /// A filesystem operation failed while persisting or rotating a
    /// checkpoint generation (`op` names the step, `detail` carries the OS
    /// error text).
    Io {
        /// The save step that failed (`"create dir"`, `"write temp"`, ...).
        op: &'static str,
        /// The underlying I/O error, rendered.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated { need, at } => {
                write!(f, "truncated checkpoint: need {need} bytes at {at}")
            }
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic (want {MAGIC:?})"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (want {VERSION})")
            }
            CheckpointError::LengthMismatch { expect, got } => {
                write!(f, "checkpoint length mismatch: header says {expect} payload bytes, got {got}")
            }
            CheckpointError::ChecksumMismatch { expect, got } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header says {expect:#018x}, payload hashes to {got:#018x}"
                )
            }
            CheckpointError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after checkpoint payload")
            }
            CheckpointError::Io { op, detail } => {
                write!(f, "checkpoint I/O failure during {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One rank's resumable snapshot of the continuation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverCheckpoint {
    /// Index into the β schedule of the level being solved.
    pub level: usize,
    /// β of that level (consistency check on restore).
    pub beta: f64,
    /// Newton iterations already accepted at this level. `0` means the
    /// level has not started: resume warm-starts it from `velocity` through
    /// the ordinary (projecting) entry path.
    pub completed_iters: usize,
    /// The level's initial gradient norm (NaN when `completed_iters == 0`;
    /// the fresh level recomputes it).
    pub g0norm: f64,
    /// This rank's local slab of the three velocity components.
    pub velocity: [Vec<f64>; 3],
}

impl SolverCheckpoint {
    /// Captures a checkpoint from a velocity iterate.
    pub fn capture(
        level: usize,
        beta: f64,
        completed_iters: usize,
        g0norm: f64,
        v: &VectorField,
    ) -> Self {
        let velocity =
            [v.comps[0].data().to_vec(), v.comps[1].data().to_vec(), v.comps[2].data().to_vec()];
        Self { level, beta, completed_iters, g0norm, velocity }
    }

    /// Reconstructs the velocity iterate on `block`. Panics if the
    /// checkpointed slab length does not match the block (i.e. the restart
    /// uses a different grid or decomposition than the checkpoint).
    pub fn velocity_field(&self, block: Block) -> VectorField {
        assert_eq!(
            self.velocity[0].len(),
            block.len(),
            "checkpoint slab length does not match this rank's block: the \
             restart must use the same grid and process decomposition"
        );
        let mut v = VectorField::zeros(block);
        for c in 0..3 {
            v.comps[c].data_mut().copy_from_slice(&self.velocity[c]);
        }
        v
    }

    /// Serializes to the `DRCK` v2 little-endian wire format: a header with
    /// payload length and FNV-1a checksum, then the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.velocity[0].len();
        assert!(self.velocity.iter().all(|c| c.len() == n), "ragged velocity components");
        let mut payload = Vec::with_capacity(8 * 5 + 24 * n);
        payload.extend_from_slice(&(self.level as u64).to_le_bytes());
        payload.extend_from_slice(&(self.completed_iters as u64).to_le_bytes());
        payload.extend_from_slice(&self.beta.to_le_bytes());
        payload.extend_from_slice(&self.g0norm.to_le_bytes());
        payload.extend_from_slice(&(n as u64).to_le_bytes());
        for comp in &self.velocity {
            for x in comp {
                payload.extend_from_slice(&x.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses the `DRCK` wire format; rejects bad magic, unknown versions,
    /// truncated or over-long payloads, and checksum mismatches with a
    /// typed [`CheckpointError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut off = 0usize;
        let magic = take_slice(bytes, &mut off, 4)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(take_array::<4>(bytes, &mut off)?);
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let u64_at = |off: &mut usize| -> Result<u64, CheckpointError> {
            Ok(u64::from_le_bytes(take_array::<8>(bytes, off)?))
        };
        let payload_len = u64_at(&mut off)? as usize;
        let checksum = u64_at(&mut off)?;
        let got = bytes.len().saturating_sub(HEADER_LEN);
        if got < payload_len {
            return Err(CheckpointError::LengthMismatch { expect: payload_len, got });
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        let found = fnv1a64(payload);
        if found != checksum {
            return Err(CheckpointError::ChecksumMismatch { expect: checksum, got: found });
        }
        let level = u64_at(&mut off)? as usize;
        let completed_iters = u64_at(&mut off)? as usize;
        let beta = f64::from_le_bytes(take_array::<8>(bytes, &mut off)?);
        let g0norm = f64::from_le_bytes(take_array::<8>(bytes, &mut off)?);
        let n = u64_at(&mut off)? as usize;
        // The slab length must be consistent with the checksummed payload
        // length, or the reserve below could balloon on a hostile header.
        let body = payload_len.saturating_sub(8 * 5);
        if body != 24 * n {
            return Err(CheckpointError::LengthMismatch { expect: 8 * 5 + 24 * n, got: payload_len });
        }
        let mut velocity: [Vec<f64>; 3] = [vec![], vec![], vec![]];
        for comp in velocity.iter_mut() {
            comp.reserve_exact(n);
            for _ in 0..n {
                comp.push(f64::from_le_bytes(take_array::<8>(bytes, &mut off)?));
            }
        }
        if off != bytes.len() {
            return Err(CheckpointError::TrailingBytes(bytes.len() - off));
        }
        Ok(Self { level, beta, completed_iters, g0norm, velocity })
    }
}

/// Takes `n` bytes at `*off`, advancing it; typed error on underrun.
fn take_slice<'a>(
    bytes: &'a [u8],
    off: &mut usize,
    n: usize,
) -> Result<&'a [u8], CheckpointError> {
    let s = bytes.get(*off..*off + n).ok_or(CheckpointError::Truncated { need: n, at: *off })?;
    *off += n;
    Ok(s)
}

/// Takes exactly `N` bytes at `*off` as a fixed array, advancing it; typed
/// error on underrun (no panicking conversions on the decode path).
fn take_array<const N: usize>(bytes: &[u8], off: &mut usize) -> Result<[u8; N], CheckpointError> {
    let s = take_slice(bytes, off, N)?;
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    Ok(a)
}

/// How [`CheckpointStore::load_for_resume`] obtained (or failed to obtain)
/// a checkpoint, for recovery accounting and operator logs.
#[derive(Debug, Clone, Default)]
pub struct ResumeLoad {
    /// The validated checkpoint, if any generation parsed cleanly.
    pub checkpoint: Option<SolverCheckpoint>,
    /// The current generation was unusable and the previous good generation
    /// was used instead.
    pub fell_back: bool,
    /// Validation errors encountered on the way (current generation first).
    /// Non-empty with `checkpoint: Some(..)` means a fallback happened;
    /// non-empty with `checkpoint: None` means every generation was corrupt
    /// and the caller must start fresh.
    pub errors: Vec<CheckpointError>,
}

/// Per-rank checkpoint generations held by the `Memory` backend: the
/// current checkpoint plus the previous good one (the fallback).
#[derive(Debug, Clone, Default)]
pub struct Generations {
    current: Vec<u8>,
    previous: Option<Vec<u8>>,
}

fn lock_map(
    map: &Mutex<HashMap<usize, Generations>>,
) -> std::sync::MutexGuard<'_, HashMap<usize, Generations>> {
    // Proceed through lock poisoning: a rank that panics mid-save must not
    // take the shared store down with it — recovery is the whole point.
    map.lock().unwrap_or_else(|e| e.into_inner())
}

/// Where checkpoints are kept. Cheap to clone; the `Memory` variant shares
/// its map across clones (so the store survives a rank's panic and a
/// restarted solve can read it back).
#[derive(Debug, Clone)]
pub enum CheckpointStore {
    /// Checkpointing disabled: saves are no-ops, loads return `None`.
    Disabled,
    /// In-memory per-rank map, shared between clones. Keeps the current and
    /// previous generation per rank.
    Memory(Arc<Mutex<HashMap<usize, Generations>>>),
    /// One file per rank under this directory (`ckpt.rank{r}.drck`, previous
    /// generation `ckpt.rank{r}.prev.drck`), written atomically (temp file +
    /// rename).
    File(PathBuf),
}

impl CheckpointStore {
    /// A fresh shared in-memory store.
    pub fn memory() -> Self {
        CheckpointStore::Memory(Arc::new(Mutex::new(HashMap::new())))
    }

    /// A file-backed store rooted at `dir` (created on first save).
    pub fn file(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore::File(dir.into())
    }

    /// Whether saves actually persist anything.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, CheckpointStore::Disabled)
    }

    fn rank_path(dir: &std::path::Path, rank: usize) -> PathBuf {
        dir.join(format!("ckpt.rank{rank}.drck"))
    }

    fn prev_path(dir: &std::path::Path, rank: usize) -> PathBuf {
        dir.join(format!("ckpt.rank{rank}.prev.drck"))
    }

    /// Persists `rank`'s checkpoint bytes, rotating the previous checkpoint
    /// into the fallback generation. File saves are atomic: a crash
    /// mid-save leaves the old checkpoint intact. A failed save surfaces as
    /// a typed [`CheckpointError::Io`] — it must not abort a long solve,
    /// but the caller decides that, not this layer.
    pub fn save(&self, rank: usize, bytes: &[u8]) -> Result<(), CheckpointError> {
        match self {
            CheckpointStore::Disabled => Ok(()),
            CheckpointStore::Memory(map) => {
                let mut map = lock_map(map);
                let gens = map.entry(rank).or_default();
                if !gens.current.is_empty() {
                    gens.previous = Some(std::mem::take(&mut gens.current));
                }
                gens.current = bytes.to_vec();
                Ok(())
            }
            CheckpointStore::File(dir) => {
                let io = |op: &'static str| {
                    move |e: std::io::Error| CheckpointError::Io { op, detail: e.to_string() }
                };
                std::fs::create_dir_all(dir).map_err(io("create dir"))?;
                let path = Self::rank_path(dir, rank);
                if path.exists() {
                    // Rotate before publishing; if the process dies between
                    // the two renames the previous generation still holds a
                    // good checkpoint.
                    let _ = std::fs::rename(&path, Self::prev_path(dir, rank));
                }
                let tmp = path.with_extension("drck.tmp");
                std::fs::write(&tmp, bytes).map_err(io("write temp"))?;
                std::fs::rename(&tmp, &path).map_err(io("publish"))?;
                Ok(())
            }
        }
    }

    /// Loads `rank`'s most recent checkpoint bytes, if any. Raw and
    /// unvalidated — resume paths should prefer
    /// [`CheckpointStore::load_for_resume`].
    pub fn load(&self, rank: usize) -> Option<Vec<u8>> {
        match self {
            CheckpointStore::Disabled => None,
            CheckpointStore::Memory(map) => {
                lock_map(map).get(&rank).map(|g| g.current.clone())
            }
            CheckpointStore::File(dir) => std::fs::read(Self::rank_path(dir, rank)).ok(),
        }
    }

    /// Loads `rank`'s previous-generation checkpoint bytes, if any.
    pub fn load_previous(&self, rank: usize) -> Option<Vec<u8>> {
        match self {
            CheckpointStore::Disabled => None,
            CheckpointStore::Memory(map) => {
                lock_map(map).get(&rank).and_then(|g| g.previous.clone())
            }
            CheckpointStore::File(dir) => std::fs::read(Self::prev_path(dir, rank)).ok(),
        }
    }

    /// Validated load with fallback: parses the current generation, and on
    /// any [`CheckpointError`] falls back to the previous good generation.
    /// Never panics; if every generation is corrupt the caller gets
    /// `checkpoint: None` plus the errors, and resumes fresh.
    pub fn load_for_resume(&self, rank: usize) -> ResumeLoad {
        let mut out = ResumeLoad::default();
        if let Some(bytes) = self.load(rank) {
            match SolverCheckpoint::from_bytes(&bytes) {
                Ok(ck) => {
                    out.checkpoint = Some(ck);
                    return out;
                }
                Err(e) => out.errors.push(e),
            }
        } else {
            return out;
        }
        // Current generation present but corrupt: try the fallback.
        if let Some(bytes) = self.load_previous(rank) {
            match SolverCheckpoint::from_bytes(&bytes) {
                Ok(ck) => {
                    out.checkpoint = Some(ck);
                    out.fell_back = true;
                }
                Err(e) => out.errors.push(e),
            }
        }
        out
    }

    /// Fault drill: corrupts `rank`'s *current* checkpoint generation in
    /// place, simulating a torn write (truncation plus a flipped byte).
    /// Returns `true` if there was a checkpoint to corrupt. The previous
    /// generation is left untouched, which is exactly what
    /// [`CheckpointStore::load_for_resume`] recovers from.
    pub fn inject_corruption(&self, rank: usize) -> bool {
        let torn = |bytes: &[u8]| -> Vec<u8> {
            let mut t = bytes[..bytes.len() / 2].to_vec();
            if let Some(b) = t.last_mut() {
                *b ^= 0x5a;
            }
            t
        };
        match self {
            CheckpointStore::Disabled => false,
            CheckpointStore::Memory(map) => {
                let mut map = lock_map(map);
                match map.get_mut(&rank) {
                    Some(g) if !g.current.is_empty() => {
                        g.current = torn(&g.current);
                        true
                    }
                    _ => false,
                }
            }
            CheckpointStore::File(dir) => {
                let path = Self::rank_path(dir, rank);
                match std::fs::read(&path) {
                    // A torn write bypasses the tmp+rename protocol by
                    // definition: scribble the published file directly.
                    Ok(bytes) if !bytes.is_empty() => {
                        std::fs::write(&path, torn(&bytes)).is_ok()
                    }
                    _ => false,
                }
            }
        }
    }

    /// Drops `rank`'s checkpoint generations (after a successful run, so a
    /// later solve does not accidentally resume from a stale snapshot).
    pub fn clear(&self, rank: usize) {
        match self {
            CheckpointStore::Disabled => {}
            CheckpointStore::Memory(map) => {
                lock_map(map).remove(&rank);
            }
            CheckpointStore::File(dir) => {
                let _ = std::fs::remove_file(Self::rank_path(dir, rank));
                let _ = std::fs::remove_file(Self::prev_path(dir, rank));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolverCheckpoint {
        SolverCheckpoint {
            level: 1,
            beta: 1e-3,
            completed_iters: 2,
            g0norm: 0.123456789,
            velocity: [
                vec![0.25, -1.5, 3.0e-17],
                vec![f64::MIN_POSITIVE, 0.0, -0.0],
                vec![1.0, 2.0, 3.0],
            ],
        }
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let ck = sample();
        let back = SolverCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.level, ck.level);
        assert_eq!(back.completed_iters, ck.completed_iters);
        assert_eq!(back.beta.to_bits(), ck.beta.to_bits());
        assert_eq!(back.g0norm.to_bits(), ck.g0norm.to_bits());
        for c in 0..3 {
            let a: Vec<u64> = ck.velocity[c].iter().map(|x| x.to_bits()).collect();
            let b: Vec<u64> = back.velocity[c].iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "component {c} not bitwise identical");
        }
    }

    #[test]
    fn nan_g0norm_survives_roundtrip() {
        // Fresh-level boundary checkpoints carry g0norm = NaN.
        let mut ck = sample();
        ck.completed_iters = 0;
        ck.g0norm = f64::NAN;
        let back = SolverCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert!(back.g0norm.is_nan());
        assert_eq!(back.g0norm.to_bits(), ck.g0norm.to_bits());
    }

    #[test]
    fn corrupt_and_truncated_payloads_are_rejected() {
        let bytes = sample().to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(SolverCheckpoint::from_bytes(&bad).unwrap_err(), CheckpointError::BadMagic);
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            SolverCheckpoint::from_bytes(&wrong_version).unwrap_err(),
            CheckpointError::BadVersion(99)
        );
        let truncated = &bytes[..bytes.len() - 5];
        assert!(matches!(
            SolverCheckpoint::from_bytes(truncated).unwrap_err(),
            CheckpointError::LengthMismatch { .. }
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(SolverCheckpoint::from_bytes(&trailing).unwrap_err(), CheckpointError::TrailingBytes(1));
    }

    #[test]
    fn bit_corruption_fails_the_checksum() {
        let mut bytes = sample().to_bytes();
        // Flip one payload bit; length stays consistent so only the
        // checksum can catch it.
        let k = bytes.len() - 9;
        bytes[k] ^= 0x01;
        assert!(matches!(
            SolverCheckpoint::from_bytes(&bytes).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn header_truncation_is_typed() {
        let bytes = sample().to_bytes();
        assert!(matches!(
            SolverCheckpoint::from_bytes(&bytes[..10]).unwrap_err(),
            CheckpointError::Truncated { .. }
        ));
    }

    #[test]
    fn memory_store_survives_clone_and_clear() {
        let store = CheckpointStore::memory();
        assert!(store.is_enabled());
        assert!(store.load(0).is_none());
        let clone = store.clone();
        clone.save(0, b"abc").expect("save");
        clone.save(3, b"xyz").expect("save");
        assert_eq!(store.load(0).as_deref(), Some(&b"abc"[..]));
        assert_eq!(store.load(3).as_deref(), Some(&b"xyz"[..]));
        store.clear(0);
        assert!(store.load(0).is_none());
        assert!(store.load(3).is_some());
    }

    #[test]
    fn save_rotates_generations() {
        let store = CheckpointStore::memory();
        store.save(1, b"first").expect("save");
        assert!(store.load_previous(1).is_none());
        store.save(1, b"second").expect("save");
        assert_eq!(store.load(1).as_deref(), Some(&b"second"[..]));
        assert_eq!(store.load_previous(1).as_deref(), Some(&b"first"[..]));
        store.clear(1);
        assert!(store.load(1).is_none() && store.load_previous(1).is_none());
    }

    #[test]
    fn disabled_store_is_a_no_op() {
        let store = CheckpointStore::Disabled;
        assert!(!store.is_enabled());
        store.save(0, b"abc").expect("save");
        assert!(store.load(0).is_none());
        assert!(!store.inject_corruption(0));
        assert!(store.load_for_resume(0).checkpoint.is_none());
    }

    #[test]
    fn file_store_roundtrips_atomically() {
        let dir = std::env::temp_dir()
            .join(format!("diffreg-ckpt-test-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::file(&dir);
        let ck = sample();
        store.save(2, &ck.to_bytes()).expect("save");
        // No temp file left behind after the rename.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let back = SolverCheckpoint::from_bytes(&store.load(2).unwrap()).unwrap();
        assert_eq!(back, ck);
        store.clear(2);
        assert!(store.load(2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The satellite acceptance drill: a torn write to the current
    /// generation must be detected by validation and recovered from via the
    /// previous good generation — on both writable backends.
    #[test]
    fn torn_write_falls_back_to_previous_good_checkpoint() {
        let dir = std::env::temp_dir().join(format!(
            "diffreg-ckpt-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for store in [CheckpointStore::memory(), CheckpointStore::file(&dir)] {
            let older = SolverCheckpoint { completed_iters: 1, ..sample() };
            let newer = SolverCheckpoint { completed_iters: 2, ..sample() };
            store.save(0, &older.to_bytes()).expect("save");
            store.save(0, &newer.to_bytes()).expect("save");

            // Healthy path: the current generation wins.
            let healthy = store.load_for_resume(0);
            assert_eq!(healthy.checkpoint.as_ref().unwrap().completed_iters, 2);
            assert!(!healthy.fell_back && healthy.errors.is_empty());

            // Tear the current generation mid-write.
            assert!(store.inject_corruption(0));
            let recovered = store.load_for_resume(0);
            let ck = recovered.checkpoint.expect("fallback generation must load");
            assert_eq!(ck.completed_iters, 1, "must recover the previous good checkpoint");
            assert!(recovered.fell_back, "recovery must be reported as a fallback");
            assert_eq!(recovered.errors.len(), 1, "the torn generation yields one typed error");

            // Corrupting the fallback too leaves a clean fresh start.
            match &store {
                CheckpointStore::Memory(map) => {
                    let mut m = lock_map(map);
                    let g = m.get_mut(&0).unwrap();
                    g.previous = Some(b"garbage".to_vec());
                }
                CheckpointStore::File(d) => {
                    std::fs::write(CheckpointStore::prev_path(d, 0), b"garbage").unwrap();
                }
                CheckpointStore::Disabled => unreachable!(),
            }
            let fresh = store.load_for_resume(0);
            assert!(fresh.checkpoint.is_none(), "double corruption resumes fresh");
            assert_eq!(fresh.errors.len(), 2, "both generations report typed errors");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
