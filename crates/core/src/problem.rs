//! The PDE-constrained registration problem (paper eq. 2) wired into the
//! Gauss-Newton-Krylov driver: objective, reduced adjoint gradient (eq. 4),
//! Gauss-Newton Hessian matvec (eq. 5), and the spectral preconditioner.

use diffreg_comm::Comm;
use diffreg_grid::{ScalarField, VectorField};
use diffreg_optim::GaussNewtonProblem;
use diffreg_transport::{compute_trajectory, SemiLagrangian, Workspace};

use crate::config::{HessianKind, RegistrationConfig};
use crate::distance::Distance;
use crate::fieldops::FieldOps;

/// Cached linearization state: everything the Hessian matvec reuses within
/// one Newton iteration (paper §III-C2: trajectories and plans are built
/// once per velocity).
struct Linearization {
    sl: SemiLagrangian,
    /// `∇ρ(t_i)` for every time level (cached so the incremental solves and
    /// the time integrals need no further FFTs inside the Krylov loop).
    grads: Vec<VectorField>,
    /// Adjoint history `λ(t_i)` — needed by the full Newton matvec only.
    adj: Vec<ScalarField>,
    /// Deformed template `ρ(1)`.
    rho1: ScalarField,
}

/// The registration problem at fixed images and configuration.
pub struct RegProblem<'a, C: Comm> {
    ws: &'a Workspace<'a, C>,
    cfg: RegistrationConfig,
    /// Template image (possibly smoothed), the transport initial condition.
    rho_t: ScalarField,
    /// Reference image (possibly smoothed).
    rho_r: ScalarField,
    ops: FieldOps<'a, C>,
    lin: Option<Linearization>,
    /// Cumulative Hessian matvec count (the paper's Table V metric).
    pub hessian_matvecs: usize,
}

impl<'a, C: Comm> RegProblem<'a, C> {
    /// Sets up the problem; smooths the images spectrally when configured
    /// (Gaussian with one-grid-cell bandwidth, paper §III-B1).
    pub fn new(
        ws: &'a Workspace<'a, C>,
        rho_t: &ScalarField,
        rho_r: &ScalarField,
        cfg: RegistrationConfig,
    ) -> Self {
        assert!(cfg.nt > 0, "need at least one time step");
        assert!(cfg.beta > 0.0, "regularization weight must be positive");
        let (rho_t, rho_r) = if cfg.smooth_images {
            let h = ws.grid().spacing();
            let sigma = (h[0] + h[1] + h[2]) / 3.0;
            (
                ws.fft.gaussian_smooth(rho_t, sigma, ws.timers),
                ws.fft.gaussian_smooth(rho_r, sigma, ws.timers),
            )
        } else {
            (rho_t.clone(), rho_r.clone())
        };
        let ops = FieldOps::with_precision(ws.comm, ws.grid(), cfg.precision);
        Self { ws, cfg, rho_t, rho_r, ops, lin: None, hessian_matvecs: 0 }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RegistrationConfig {
        &self.cfg
    }

    /// The (smoothed) template image.
    pub fn template(&self) -> &ScalarField {
        &self.rho_t
    }

    /// The (smoothed) reference image.
    pub fn reference(&self) -> &ScalarField {
        &self.rho_r
    }

    /// L² mismatch `1/2 ||ρ(1) − ρ_R||²` of the *unregistered* images.
    pub fn initial_data_term(&self) -> f64 {
        let mut r = self.rho_t.clone();
        r.axpy(-1.0, &self.rho_r);
        0.5 * r.inner_p(&r, &self.ws.grid(), self.ws.comm, self.cfg.precision)
    }

    /// Applies the projection `P` (Leray when incompressible, identity
    /// otherwise) to a vector field.
    pub fn project(&self, v: &VectorField) -> VectorField {
        if self.cfg.incompressible {
            self.ws.fft.leray(v, self.ws.timers)
        } else {
            v.clone()
        }
    }

    /// Regularization energy `β/2 ⟨(-Δ)^m v, v⟩`.
    fn reg_energy(&self, v: &VectorField) -> f64 {
        let av = self.ws.fft.regularization(v, self.cfg.reg, self.cfg.beta, self.ws.timers);
        0.5 * av.inner_p(v, &self.ws.grid(), self.ws.comm, self.cfg.precision)
    }

    /// Data term `1/2 ||ρ(1) − ρ_R||²` for a given velocity, using only the
    /// forward trajectory (the cheap path for line-search evaluations).
    fn data_term(&self, v: &VectorField) -> f64 {
        let dt = 1.0 / self.cfg.nt as f64;
        let traj = compute_trajectory(self.ws, v, dt, 1.0);
        let mut rho = self.rho_t.clone();
        for _ in 0..self.cfg.nt {
            let g = diffreg_interp::ghosted(self.ws.comm, self.ws.decomp, &rho);
            let vals = traj.plan.interpolate(self.ws.comm, &g, self.ws.kernel, self.ws.timers);
            rho = ScalarField::from_vec(rho.block(), vals);
        }
        self.cfg.distance.evaluate_p(
            &rho,
            &self.rho_r,
            &self.ws.grid(),
            self.ws.comm,
            self.cfg.precision,
        )
    }

    /// Trapezoidal time integral `∫ λ(t) ∇ρ(t) dt` (the field `b` of the
    /// gradient and `b̃` of the Hessian matvec).
    fn time_integral(&self, adj: &[ScalarField], grads: &[VectorField]) -> VectorField {
        let nt = self.cfg.nt;
        debug_assert_eq!(adj.len(), nt + 1);
        debug_assert_eq!(grads.len(), nt + 1);
        let dt = 1.0 / nt as f64;
        let mut b = VectorField::zeros(adj[0].block());
        for i in 0..=nt {
            let w = if i == 0 || i == nt { 0.5 * dt } else { dt };
            let lam = adj[i].data();
            for a in 0..3 {
                let g = grads[i].comps[a].data();
                let out = b.comps[a].data_mut();
                for l in 0..lam.len() {
                    out[l] += w * lam[l] * g[l];
                }
            }
        }
        b
    }

    /// Access to the deformed template `ρ(1)` at the current linearization
    /// point (available after `linearize`).
    pub fn deformed_template(&self) -> Option<&ScalarField> {
        self.lin.as_ref().map(|l| &l.rho1)
    }

    /// The cached semi-Lagrangian state at the current linearization point.
    pub fn semi_lagrangian(&self) -> Option<&SemiLagrangian> {
        self.lin.as_ref().map(|l| &l.sl)
    }
}

impl<'a, C: Comm> GaussNewtonProblem for RegProblem<'a, C> {
    type Vec = VectorField;
    type Ops = FieldOps<'a, C>;

    fn ops(&self) -> &Self::Ops {
        &self.ops
    }

    fn objective(&mut self, v: &VectorField) -> f64 {
        self.data_term(v) + self.reg_energy(v)
    }

    fn linearize(&mut self, v: &VectorField) -> (f64, VectorField) {
        let _span = diffreg_telemetry::span("reg.linearize");
        let ws = self.ws;
        // Forward (state) solve with full history.
        let sl = SemiLagrangian::new(ws, v, self.cfg.nt);
        let state = sl.solve_state(ws, &self.rho_t);
        // diffreg-allow(no-unwrap-in-lib): solve_state seeds the history with rho0, so last() is always Some
        let rho1 = state.last().unwrap().clone();

        // Objective.
        let jdata =
            self.cfg.distance.evaluate_p(&rho1, &self.rho_r, &ws.grid(), ws.comm, self.cfg.precision);
        let j = jdata + self.reg_energy(v);

        // Adjoint solve with the measure's terminal condition
        // (SSD: λ(1) = ρ_R − ρ(1), paper eq. 3).
        let lam1 = self.cfg.distance.terminal_adjoint(&rho1, &self.rho_r, &ws.grid(), ws.comm);
        let adj = sl.solve_adjoint(ws, &lam1);

        // Cache ∇ρ(t_i) — reused by every Hessian matvec this iteration.
        let grads: Vec<VectorField> = state.iter().map(|r| ws.fft.gradient(r, ws.timers)).collect();

        // Reduced gradient g = β(-Δ)^m v + P ∫ λ ∇ρ dt.
        let b = self.time_integral(&adj, &grads);
        let mut g = ws.fft.regularization(v, self.cfg.reg, self.cfg.beta, ws.timers);
        g.axpy(1.0, &self.project(&b));

        self.lin = Some(Linearization { sl, grads, adj, rho1 });
        (j, g)
    }

    fn hessian_vec(&mut self, d: &VectorField) -> VectorField {
        let _span = diffreg_telemetry::span("hessian.matvec");
        self.hessian_matvecs += 1;
        let ws = self.ws;
        // diffreg-allow(no-unwrap-in-lib): documented API contract: hessian_vec requires a prior linearize; the expect message states it
        let lin = self.lin.as_ref().expect("hessian_vec called before linearize");
        let mut h = ws.fft.regularization(d, self.cfg.reg, self.cfg.beta, ws.timers);
        match self.cfg.hessian {
            HessianKind::GaussNewton => {
                // Incremental state (5a) forward, then incremental adjoint
                // (5c without the λ terms) backward;
                // H d = β(-Δ)^m d + P ∫ λ̃ ∇ρ dt.
                let rho_tilde1 = lin.sl.solve_incremental_state(ws, d, &lin.grads);
                let lam_tilde1 = self.cfg.distance.gn_terminal(
                    &lin.rho1,
                    &self.rho_r,
                    &rho_tilde1,
                    &ws.grid(),
                    ws.comm,
                );
                let adj_tilde = lin.sl.solve_adjoint(ws, &lam_tilde1);
                let b_tilde = self.time_integral(&adj_tilde, &lin.grads);
                h.axpy(1.0, &self.project(&b_tilde));
            }
            HessianKind::FullNewton => {
                assert_eq!(
                    self.cfg.distance,
                    Distance::Ssd,
                    "full Newton is implemented for the SSD measure"
                );
                // Full eq. (5): keep the λ terms. The incremental adjoint
                // gains the source div(λ(t) ṽ); b̃ gains ∫ λ ∇ρ̃ dt.
                let rho_tilde = lin.sl.solve_incremental_state_history(ws, d, &lin.grads);
                let nloc = d.local_len();
                let source: Vec<ScalarField> = lin
                    .adj
                    .iter()
                    .map(|lam| {
                        let mut lv = VectorField::zeros(d.block());
                        for a in 0..3 {
                            let da = d.comps[a].data();
                            let out = lv.comps[a].data_mut();
                            for l in 0..nloc {
                                out[l] = lam.data()[l] * da[l];
                            }
                        }
                        ws.fft.divergence(&lv, ws.timers)
                    })
                    .collect();
                let adj_tilde =
                    // diffreg-allow(no-unwrap-in-lib): rho_tilde is seeded with the zero field before the time loop, so last() is always Some
                    lin.sl.solve_incremental_adjoint_full(ws, rho_tilde.last().unwrap(), &source);
                let mut b_tilde = self.time_integral(&adj_tilde, &lin.grads);
                let grad_rho_tilde: Vec<VectorField> =
                    rho_tilde.iter().map(|r| ws.fft.gradient(r, ws.timers)).collect();
                b_tilde.axpy(1.0, &self.time_integral(&lin.adj, &grad_rho_tilde));
                h.axpy(1.0, &self.project(&b_tilde));
            }
        }
        h
    }

    fn precondition(&mut self, r: &VectorField) -> VectorField {
        if self.cfg.precondition {
            self.ws.fft.precondition(r, self.cfg.reg, self.cfg.beta, self.ws.timers)
        } else {
            r.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::{SerialComm, Timers};
    use diffreg_grid::{Decomp, Grid};
    use diffreg_optim::VectorOps;
    use diffreg_pfft::PencilFft;

    fn setup(
        grid: Grid,
    ) -> (SerialComm, Decomp, Timers) {
        (SerialComm::new(), Decomp::new(grid, 1), Timers::new())
    }

    fn images<C: Comm>(ws: &Workspace<C>) -> (ScalarField, ScalarField) {
        let grid = ws.grid();
        let t = ScalarField::from_fn(&grid, ws.block(), |x| {
            (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        let r = ScalarField::from_fn(&grid, ws.block(), |x| {
            ((x[0] - 0.3).sin().powi(2) + (x[1] + 0.2).sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        (t, r)
    }

    fn probe_dir<C: Comm>(ws: &Workspace<C>) -> VectorField {
        let grid = ws.grid();
        VectorField::from_fn(&grid, ws.block(), |x| {
            [0.2 * x[1].sin(), -0.15 * x[0].cos(), 0.1 * (x[2] + x[0]).sin()]
        })
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let grid = Grid::cubic(12);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r) = images(&ws);
        let cfg = RegistrationConfig { nt: 4, beta: 1e-2, ..Default::default() };
        let mut prob = RegProblem::new(&ws, &t, &r, cfg);

        let v = VectorField::from_fn(&grid, ws.block(), |x| {
            [0.1 * x[0].cos(), 0.05 * x[1].sin(), -0.08 * x[2].cos()]
        });
        let dir = probe_dir(&ws);

        let (_, g) = prob.linearize(&v);
        let gd = prob.ops().dot(&g, &dir);

        let eps = 1e-4;
        let mut vp = v.clone();
        vp.axpy(eps, &dir);
        let mut vm = v.clone();
        vm.axpy(-eps, &dir);
        let fd = (prob.objective(&vp) - prob.objective(&vm)) / (2.0 * eps);

        // Normalize by ‖g‖‖d‖: the optimize-then-discretize gradient agrees
        // with the discrete objective's derivative up to discretization
        // error, which must be small relative to the gradient scale (it is
        // not small relative to near-orthogonal projections).
        let scale = prob.ops().norm(&g) * prob.ops().norm(&dir);
        let rel = (gd - fd).abs() / scale.max(1e-12);
        assert!(rel < 1e-3, "gradient check failed: ⟨g,d⟩={gd} fd={fd} rel={rel}");
    }

    #[test]
    fn hessian_is_nearly_symmetric_and_psd() {
        let grid = Grid::cubic(10);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r) = images(&ws);
        let cfg = RegistrationConfig { nt: 4, beta: 1e-2, ..Default::default() };
        let mut prob = RegProblem::new(&ws, &t, &r, cfg);
        let v = probe_dir(&ws);
        prob.linearize(&v);

        let d1 = VectorField::from_fn(&grid, ws.block(), |x| {
            [0.3 * x[2].cos(), 0.2 * (x[0] + x[1]).sin(), -0.1 * x[1].cos()]
        });
        let d2 = VectorField::from_fn(&grid, ws.block(), |x| {
            [-0.1 * x[1].sin(), 0.25 * x[2].cos(), 0.15 * x[0].sin()]
        });
        let h1 = prob.hessian_vec(&d1);
        let h2 = prob.hessian_vec(&d2);
        let a = prob.ops().dot(&h1, &d2);
        let b = prob.ops().dot(&h2, &d1);
        // The semi-Lagrangian incremental adjoint is not the exact discrete
        // transpose of the incremental state solve, so symmetry holds up to
        // discretization error relative to the operator scale.
        let scale = prob.ops().norm(&h1) * prob.ops().norm(&d2);
        let rel = (a - b).abs() / scale.max(1e-12);
        assert!(rel < 1e-2, "asymmetry {rel}: {a} vs {b}");

        let hd = prob.hessian_vec(&d1);
        let quad = prob.ops().dot(&hd, &d1);
        assert!(quad > 0.0, "GN Hessian not positive on test direction: {quad}");
        assert_eq!(prob.hessian_matvecs, 3);
    }

    #[test]
    fn full_newton_hessian_matches_gradient_differences() {
        // ⟨H_full d, w⟩ must approximate the directional derivative of the
        // gradient, ⟨(g(v+εd) − g(v−εd))/2ε, w⟩; the Gauss-Newton operator
        // drops the λ terms and should fit worse away from the solution.
        // (Verified separately: err_full converges to 0 with N — 0.69/0.48/
        // 0.18/0.046 at N = 12/16/24/32 — while err_GN plateaus at the
        // dropped-term difference.)
        let grid = Grid::cubic(24);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r) = images(&ws);
        let v = probe_dir(&ws);
        let d = VectorField::from_fn(&grid, ws.block(), |x| {
            [0.2 * x[2].cos(), 0.15 * (x[0] + x[1]).sin(), -0.1 * x[1].cos()]
        });
        let w = VectorField::from_fn(&grid, ws.block(), |x| {
            [0.1 * x[1].sin() + 0.05, -0.2 * x[2].cos(), 0.15 * x[0].sin()]
        });

        let fd = {
            let cfg = RegistrationConfig { nt: 4, beta: 1e-2, ..Default::default() };
            let mut prob = RegProblem::new(&ws, &t, &r, cfg);
            let eps = 1e-4;
            let mut vp = v.clone();
            vp.axpy(eps, &d);
            let mut vm = v.clone();
            vm.axpy(-eps, &d);
            let (_, gp) = prob.linearize(&vp);
            let (_, gm) = prob.linearize(&vm);
            let mut diff = gp;
            diff.axpy(-1.0, &gm);
            diff.scale(1.0 / (2.0 * eps));
            prob.ops().dot(&diff, &w)
        };

        let apply = |kind: HessianKind| -> f64 {
            let cfg = RegistrationConfig { nt: 4, beta: 1e-2, hessian: kind, ..Default::default() };
            let mut prob = RegProblem::new(&ws, &t, &r, cfg);
            prob.linearize(&v);
            let hd = prob.hessian_vec(&d);
            prob.ops().dot(&hd, &w)
        };
        let full = apply(HessianKind::FullNewton);
        let gn = apply(HessianKind::GaussNewton);

        let scale = fd.abs().max(1e-12);
        let err_full = (full - fd).abs() / scale;
        let err_gn = (gn - fd).abs() / scale;
        assert!(err_full < 0.25, "full Newton mismatch {err_full}: {full} vs fd {fd} (GN {gn})");
        // Full Newton must fit the true curvature better than GN.
        assert!(
            err_full < err_gn,
            "full ({full}, err {err_full}) should beat GN ({gn}, err {err_gn}) vs fd ({fd})"
        );
    }

    #[test]
    fn full_newton_registration_converges() {
        let grid = Grid::cubic(12);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r) = images(&ws);
        let cfg = RegistrationConfig {
            beta: 1e-2,
            hessian: HessianKind::FullNewton,
            ..Default::default()
        };
        let out = crate::register(&ws, &t, &r, cfg);
        assert!(out.relative_mismatch() < 1.0, "must improve: {}", out.relative_mismatch());
        assert!(out.hessian_matvecs > 0);
        assert!(out.det_grad.diffeomorphic);
    }

    #[test]
    fn zero_velocity_gradient_is_projected_data_term() {
        // At v = 0 the regularization gradient vanishes; for identical
        // images the full gradient must vanish too.
        let grid = Grid::cubic(8);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let t = ScalarField::from_fn(&grid, ws.block(), |x| x[0].sin());
        let cfg = RegistrationConfig::default();
        let mut prob = RegProblem::new(&ws, &t, &t.clone(), cfg);
        let v = VectorField::zeros(ws.block());
        let (j, g) = prob.linearize(&v);
        assert!(j.abs() < 1e-12, "identical images give zero objective, got {j}");
        assert!(prob.ops().norm(&g) < 1e-10);
    }

    #[test]
    fn incompressible_gradient_is_divergence_free() {
        let grid = Grid::cubic(10);
        let (comm, decomp, timers) = setup(grid);
        let fft = PencilFft::new(&comm, decomp);
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r) = images(&ws);
        let cfg = RegistrationConfig { incompressible: true, ..Default::default() };
        let mut prob = RegProblem::new(&ws, &t, &r, cfg);
        // Divergence-free initial velocity.
        let v = prob.project(&probe_dir(&ws));
        let (_, g) = prob.linearize(&v);
        let div = ws.fft.divergence(&g, ws.timers);
        assert!(div.max_abs(&comm) < 1e-9, "gradient leaves the div-free subspace");
    }
}
