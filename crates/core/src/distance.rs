//! Image distance measures.
//!
//! The paper uses the L² (SSD) distance but notes that "there are no
//! significant changes in our formulation or algorithm if we would consider
//! other, popular distance measures" (§II-A footnote). This module
//! implements that extension: the distance enters the solver only through
//! the data-term value, the adjoint terminal condition `λ(1) = −∂J/∂ρ(1)`,
//! and the Gauss-Newton incremental terminal `λ̃(1)`.
//!
//! Implemented: SSD and normalized cross-correlation (NCC) in its
//! residual form `J = 1 − ⟨u,w⟩/(|u||w|) = ½|u/|u| − w/|w||²` with
//! mean-centered intensities — invariant to affine intensity rescaling of
//! either image, the property that makes it the standard choice for
//! inter-subject/-scanner data.

use diffreg_comm::Comm;
use diffreg_grid::{Grid, Precision, ScalarField};

/// The image-similarity functional of the data term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distance {
    /// Squared L² distance `1/2 ||ρ(1) − ρ_R||²` (the paper's measure).
    #[default]
    Ssd,
    /// Normalized cross-correlation `1 − corr(ρ(1), ρ_R)`, invariant to
    /// affine intensity changes.
    Ncc,
}

/// Mean-centered copy of a field.
fn centered<C: Comm>(f: &ScalarField, grid: &Grid, comm: &C) -> ScalarField {
    let mut out = f.clone();
    let m = f.mean(grid, comm);
    for v in out.data_mut() {
        *v -= m;
    }
    out
}

/// The NCC moments `(u, w, a, b, c)` with `a = ⟨u,w⟩`, `b = ⟨u,u⟩`,
/// `c = ⟨w,w⟩` on centered fields.
struct NccMoments {
    u: ScalarField,
    w: ScalarField,
    a: f64,
    b: f64,
    c: f64,
}

fn ncc_moments<C: Comm>(
    rho1: &ScalarField,
    rho_r: &ScalarField,
    grid: &Grid,
    comm: &C,
) -> NccMoments {
    let u = centered(rho1, grid, comm);
    let w = centered(rho_r, grid, comm);
    let a = u.inner(&w, grid, comm);
    let b = u.inner(&u, grid, comm).max(1e-300);
    let c = w.inner(&w, grid, comm).max(1e-300);
    NccMoments { u, w, a, b, c }
}

impl Distance {
    /// Data-term value `J_data(ρ(1), ρ_R)` (f64 reductions).
    pub fn evaluate<C: Comm>(
        self,
        rho1: &ScalarField,
        rho_r: &ScalarField,
        grid: &Grid,
        comm: &C,
    ) -> f64 {
        self.evaluate_p(rho1, rho_r, grid, comm, Precision::F64)
    }

    /// Data-term value under an explicit reduction precision policy. The
    /// distance enters the objective only through inner products, so the
    /// policy applies to those; the residual fields themselves stay f64.
    pub fn evaluate_p<C: Comm>(
        self,
        rho1: &ScalarField,
        rho_r: &ScalarField,
        grid: &Grid,
        comm: &C,
        precision: Precision,
    ) -> f64 {
        match self {
            Distance::Ssd => {
                let mut r = rho1.clone();
                r.axpy(-1.0, rho_r);
                0.5 * r.inner_p(&r, grid, comm, precision)
            }
            Distance::Ncc => {
                let m = ncc_moments(rho1, rho_r, grid, comm);
                1.0 - m.a / (m.b * m.c).sqrt()
            }
        }
    }

    /// Adjoint terminal condition `λ(1) = −∂J_data/∂ρ(1)` (paper eq. 3 for
    /// SSD: `ρ_R − ρ(1)`).
    pub fn terminal_adjoint<C: Comm>(
        self,
        rho1: &ScalarField,
        rho_r: &ScalarField,
        grid: &Grid,
        comm: &C,
    ) -> ScalarField {
        match self {
            Distance::Ssd => {
                let mut lam = rho_r.clone();
                lam.axpy(-1.0, rho1);
                lam
            }
            Distance::Ncc => {
                // −∂J/∂ρ(1) = (w − (a/b) u) / √(bc); already zero-mean, so
                // the centering projection is a no-op.
                let m = ncc_moments(rho1, rho_r, grid, comm);
                let s = 1.0 / (m.b * m.c).sqrt();
                let mut lam = m.w.clone();
                lam.axpy(-m.a / m.b, &m.u);
                lam.scale(s);
                lam
            }
        }
    }

    /// Gauss-Newton incremental terminal `λ̃(1) = −(F'ᵀF') ρ̃(1)` for the
    /// residual form of the measure (paper eq. 5d for SSD: `−ρ̃(1)`).
    pub fn gn_terminal<C: Comm>(
        self,
        rho1: &ScalarField,
        rho_r: &ScalarField,
        rho_tilde1: &ScalarField,
        grid: &Grid,
        comm: &C,
    ) -> ScalarField {
        match self {
            Distance::Ssd => {
                let mut t = rho_tilde1.clone();
                t.scale(-1.0);
                t
            }
            Distance::Ncc => {
                // F(u) = u/√b − w/√c, F' = (I − ûûᵀ)/√b with û = u/√b, so
                // F'ᵀF' δ = (δ − û⟨û,δ⟩)/b on centered δ.
                let m = ncc_moments(rho1, rho_r, grid, comm);
                let delta = centered(rho_tilde1, grid, comm);
                let ud = m.u.inner(&delta, grid, comm) / m.b;
                let mut t = delta;
                t.axpy(-ud, &m.u);
                t.scale(-1.0 / m.b);
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::SerialComm;
    use diffreg_grid::{Decomp, Layout};

    fn setup() -> (Grid, ScalarField, ScalarField) {
        let grid = Grid::cubic(8);
        let b = Decomp::new(grid, 1).block(0, Layout::Spatial);
        let f = ScalarField::from_fn(&grid, b, |x| x[0].sin() + 0.3 * x[1].cos());
        let g = ScalarField::from_fn(&grid, b, |x| (x[0] - 0.4).sin() + 0.2 * x[2].sin());
        (grid, f, g)
    }

    #[test]
    fn ssd_basics() {
        let (grid, f, g) = setup();
        let comm = SerialComm::new();
        assert_eq!(Distance::Ssd.evaluate(&f, &f, &grid, &comm), 0.0);
        assert!(Distance::Ssd.evaluate(&f, &g, &grid, &comm) > 0.0);
        // Terminal adjoint of matched images vanishes.
        let lam = Distance::Ssd.terminal_adjoint(&f, &f, &grid, &comm);
        assert!(lam.max_abs(&comm) < 1e-14);
    }

    #[test]
    fn ncc_range_and_perfect_match() {
        let (grid, f, g) = setup();
        let comm = SerialComm::new();
        let self_val = Distance::Ncc.evaluate(&f, &f, &grid, &comm);
        assert!(self_val.abs() < 1e-12, "NCC(f, f) must be 0, got {self_val}");
        let val = Distance::Ncc.evaluate(&f, &g, &grid, &comm);
        assert!(val > 0.0 && val <= 2.0);
    }

    #[test]
    fn ncc_is_invariant_to_intensity_rescaling() {
        let (grid, f, g) = setup();
        let comm = SerialComm::new();
        let base = Distance::Ncc.evaluate(&f, &g, &grid, &comm);
        // ρ_R -> 3 ρ_R + 0.7 changes SSD drastically, NCC not at all.
        let mut g2 = g.clone();
        g2.scale(3.0);
        for v in g2.data_mut() {
            *v += 0.7;
        }
        let rescaled = Distance::Ncc.evaluate(&f, &g2, &grid, &comm);
        assert!((base - rescaled).abs() < 1e-12, "{base} vs {rescaled}");
        let ssd_base = Distance::Ssd.evaluate(&f, &g, &grid, &comm);
        let ssd_rescaled = Distance::Ssd.evaluate(&f, &g2, &grid, &comm);
        assert!((ssd_base - ssd_rescaled).abs() > 1.0, "SSD must not be invariant");
    }

    #[test]
    fn ncc_terminal_matches_finite_differences() {
        let (grid, f, g) = setup();
        let comm = SerialComm::new();
        let b = f.block();
        let dir = ScalarField::from_fn(&grid, b, |x| 0.3 * (x[0] + x[2]).cos() - 0.1 * x[1].sin());
        for dist in [Distance::Ssd, Distance::Ncc] {
            let lam = dist.terminal_adjoint(&f, &g, &grid, &comm);
            // ⟨−λ, dir⟩ must match d/dε J(f + ε dir).
            let gd = -lam.inner(&dir, &grid, &comm);
            let eps = 1e-6;
            let mut fp = f.clone();
            fp.axpy(eps, &dir);
            let mut fm = f.clone();
            fm.axpy(-eps, &dir);
            let fd = (dist.evaluate(&fp, &g, &grid, &comm) - dist.evaluate(&fm, &g, &grid, &comm))
                / (2.0 * eps);
            assert!(
                (gd - fd).abs() < 1e-6 * fd.abs().max(1.0),
                "{dist:?}: ⟨−λ,d⟩ = {gd} vs fd {fd}"
            );
        }
    }

    #[test]
    fn gn_terminal_is_negative_semidefinite_quadratic() {
        // ⟨−λ̃(1), ρ̃⟩ = ⟨F'ᵀF' ρ̃, ρ̃⟩ = |F' ρ̃|² ≥ 0.
        let (grid, f, g) = setup();
        let comm = SerialComm::new();
        let b = f.block();
        for (k, dist) in [Distance::Ssd, Distance::Ncc].into_iter().enumerate() {
            for s in 0..4 {
                let d = ScalarField::from_fn(&grid, b, |x| {
                    ((s as f64 + 1.0) * x[0] + k as f64 + x[1]).sin()
                });
                let t = dist.gn_terminal(&f, &g, &d, &grid, &comm);
                let quad = -t.inner(&d, &grid, &comm);
                assert!(quad >= -1e-12, "{dist:?}: quadratic form negative: {quad}");
            }
        }
    }
}
