//! The high-level registration driver: runs the Gauss-Newton-Krylov solve,
//! optionally with β-continuation (paper §III-A: "since the problem is
//! highly nonlinear we use parameter continuation on β"), and assembles the
//! diagnostics the paper reports.

use diffreg_comm::Comm;
use diffreg_grid::{ScalarField, VectorField};
use diffreg_optim::{
    gauss_newton_observed, GaussNewtonProblem, NewtonCursor, NewtonReport, NewtonResume,
};
use diffreg_transport::Workspace;

use crate::checkpoint::{CheckpointStore, SolverCheckpoint};
use crate::config::RegistrationConfig;
use crate::jacobian::{det_deformation_gradient, det_stats, displacement, DetGradStats};
use crate::problem::RegProblem;

/// Everything a registration run produces.
#[derive(Debug)]
pub struct RegistrationOutcome {
    /// The optimal stationary velocity field.
    pub velocity: VectorField,
    /// The Newton-Krylov solve report (per-iteration stats, matvec counts).
    pub report: NewtonReport,
    /// Total Hessian matvecs across the solve (Table V metric).
    pub hessian_matvecs: usize,
    /// `1/2 ||ρ_T − ρ_R||²` before registration (after smoothing).
    pub initial_mismatch: f64,
    /// `1/2 ||ρ(1) − ρ_R||²` after registration.
    pub final_mismatch: f64,
    /// The deformed (registered) template `ρ(1) = ρ_T ∘ y₁`.
    pub deformed_template: ScalarField,
    /// Displacement `u` with `y₁ = x + u`.
    pub displacement: VectorField,
    /// Determinant-of-deformation-gradient statistics.
    pub det_grad: DetGradStats,
}

impl RegistrationOutcome {
    /// Relative residual `||ρ(1) − ρ_R|| / ||ρ_T − ρ_R||`.
    pub fn relative_mismatch(&self) -> f64 {
        if self.initial_mismatch > 0.0 {
            (self.final_mismatch / self.initial_mismatch).sqrt()
        } else {
            0.0
        }
    }
}

/// Solves the registration problem for `(rho_t, rho_r)` with the given
/// configuration, starting from `v = 0`. Collective over `ws.comm`.
pub fn register<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
) -> RegistrationOutcome {
    let v0 = VectorField::zeros(ws.block());
    register_from(ws, rho_t, rho_r, cfg, v0)
}

/// Like [`register`] but warm-started from `v0` (used by the continuation
/// loop and by multi-resolution schemes).
pub fn register_from<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    v0: VectorField,
) -> RegistrationOutcome {
    register_from_observed(ws, rho_t, rho_r, cfg, v0, None, |_, _| {})
}

/// The resumable, observable core of [`register_from`]: the `observer` is
/// called with the iterate after every *accepted* Newton step (the
/// checkpoint hook), and `resume` restarts the solve from a checkpointed
/// iterate.
///
/// The resume contract: when `resume` is `Some`, `v0` must be the iterate an
/// earlier run's observer saw at `completed_iters` — it is *not* re-projected
/// (the solver already keeps iterates in the constraint subspace), so the
/// resumed run re-linearizes at exactly the checkpointed point and continues
/// bitwise identically to the uninterrupted run.
pub fn register_from_observed<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    v0: VectorField,
    resume: Option<NewtonResume>,
    observer: impl FnMut(&VectorField, &NewtonCursor),
) -> RegistrationOutcome {
    let _span = diffreg_telemetry::span("registration");
    // The config's kernel choice wins over whatever the caller's workspace
    // carries, so `RegistrationConfig { kernel, .. }` behaves as documented.
    let ws = &Workspace { kernel: cfg.kernel, ..*ws };
    let mut prob = RegProblem::new(ws, rho_t, rho_r, cfg);
    let initial_mismatch = prob.initial_data_term();
    // Keep the iterate in the divergence-free subspace from the start. On
    // resume the checkpointed iterate is already in the subspace and must
    // pass through untouched (bitwise) — see the resume contract above.
    let v0 = if resume.is_some() { v0 } else { prob.project(&v0) };
    let (velocity, report) = gauss_newton_observed(&mut prob, v0, &cfg.newton, resume, observer);

    // Final diagnostics at the converged velocity.
    let (_, _) = prob.linearize(&velocity);
    // diffreg-allow(no-unwrap-in-lib): linearize on the line above populates the cache; None is unreachable
    let deformed_template = prob.deformed_template().unwrap().clone();
    let mut resid = deformed_template.clone();
    resid.axpy(-1.0, prob.reference());
    let final_mismatch = 0.5 * resid.inner(&resid, &ws.grid(), ws.comm);

    let displacement = displacement(ws, &velocity, cfg.nt);
    let det = det_deformation_gradient(ws, &displacement);
    let det_grad = det_stats(ws, &det);

    RegistrationOutcome {
        velocity,
        hessian_matvecs: prob.hessian_matvecs,
        report,
        initial_mismatch,
        final_mismatch,
        deformed_template,
        displacement,
        det_grad,
    }
}

/// β-continuation: solves a sequence of problems with decreasing β, warm
/// starting each from the previous solution. Returns the outcome at the
/// final (target) β together with the per-level reports.
pub fn register_with_continuation<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    betas: &[f64],
) -> (RegistrationOutcome, Vec<NewtonReport>) {
    assert!(!betas.is_empty(), "need at least one continuation level");
    assert!(
        betas.windows(2).all(|w| w[1] <= w[0]),
        "continuation levels must be non-increasing in β"
    );
    let mut v = VectorField::zeros(ws.block());
    let mut reports = Vec::with_capacity(betas.len());
    let mut outcome = None;
    for &beta in betas {
        let level_cfg = RegistrationConfig { beta, ..cfg };
        let out = register_from(ws, rho_t, rho_r, level_cfg, v);
        v = out.velocity.clone();
        reports.push(out.report.clone());
        outcome = Some(out);
    }
    // diffreg-allow(no-unwrap-in-lib): betas is asserted non-empty above, so the loop always sets outcome
    (outcome.unwrap(), reports)
}

/// [`register_with_continuation`] with crash recovery: every
/// `cfg.checkpoint_every` accepted Newton iterations (and at every level
/// boundary) each rank writes a [`SolverCheckpoint`] to `store`; if `store`
/// already holds a checkpoint when the solve starts, the run resumes from it
/// and produces bitwise the same velocity as the uninterrupted solve. The
/// checkpoint is cleared on successful completion. Collective over
/// `ws.comm`; all ranks must pass equivalent stores (same kind, same
/// contents for their own rank).
pub fn register_with_continuation_checkpointed<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    betas: &[f64],
    store: &CheckpointStore,
) -> (RegistrationOutcome, Vec<NewtonReport>) {
    register_with_continuation_checkpointed_hooked(ws, rho_t, rho_r, cfg, betas, store, |_, _| {})
}

/// A failed checkpoint save must not abort a long solve (the run merely
/// loses restartability since the last good generation), but it must not
/// vanish either: it lands on the metrics surface where operators alert on
/// it.
fn note_save_failure(r: Result<(), crate::checkpoint::CheckpointError>) {
    if r.is_err() {
        diffreg_telemetry::count_global("diffreg_checkpoint_save_failures", 1);
    }
}

/// [`register_with_continuation_checkpointed`] with a test hook: `hook` is
/// called after every accepted Newton step (after the checkpoint, if one was
/// due) with the continuation level and the Newton cursor. Fault-injection
/// tests panic from the hook to simulate a mid-solve crash at an exact,
/// reproducible point.
pub fn register_with_continuation_checkpointed_hooked<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    betas: &[f64],
    store: &CheckpointStore,
    mut hook: impl FnMut(usize, &NewtonCursor),
) -> (RegistrationOutcome, Vec<NewtonReport>) {
    assert!(!betas.is_empty(), "need at least one continuation level");
    assert!(
        betas.windows(2).all(|w| w[1] <= w[0]),
        "continuation levels must be non-increasing in β"
    );
    let rank = ws.comm.rank();
    let mut start_level = 0usize;
    let mut v = VectorField::zeros(ws.block());
    let mut resume: Option<NewtonResume> = None;
    // Validated load with fallback: a torn current generation falls back to
    // the previous good checkpoint, and a fully corrupt store resumes fresh
    // (losing at most the checkpointed progress, never the job).
    if let Some(ck) = store.load_for_resume(rank).checkpoint {
        assert!(
            ck.level < betas.len(),
            "checkpoint level {} outside the {}-level β schedule",
            ck.level,
            betas.len()
        );
        assert_eq!(
            ck.beta.to_bits(),
            betas[ck.level].to_bits(),
            "checkpoint β does not match the schedule at level {}",
            ck.level
        );
        start_level = ck.level;
        v = ck.velocity_field(ws.block());
        if ck.completed_iters > 0 {
            resume =
                Some(NewtonResume { completed_iters: ck.completed_iters, g0norm: ck.g0norm });
        }
    }
    let mut reports = Vec::with_capacity(betas.len().saturating_sub(start_level));
    let mut outcome = None;
    let every = cfg.checkpoint_every;
    let persist = every > 0 && store.is_enabled();
    for (li, &beta) in betas.iter().enumerate().skip(start_level) {
        let level_cfg = RegistrationConfig { beta, ..cfg };
        let out = register_from_observed(
            ws,
            rho_t,
            rho_r,
            level_cfg,
            v,
            resume.take(),
            |vel, cur| {
                if persist && cur.completed_iters % every == 0 {
                    let ck =
                        SolverCheckpoint::capture(li, beta, cur.completed_iters, cur.g0norm, vel);
                    note_save_failure(store.save(rank, &ck.to_bytes()));
                }
                hook(li, cur);
            },
        );
        v = out.velocity.clone();
        reports.push(out.report.clone());
        outcome = Some(out);
        if persist {
            if li + 1 < betas.len() {
                // Level boundary: a restart warm-starts the next level from
                // this level's solution through the ordinary entry path.
                let ck = SolverCheckpoint::capture(li + 1, betas[li + 1], 0, f64::NAN, &v);
                note_save_failure(store.save(rank, &ck.to_bytes()));
            } else {
                // Finished: drop the checkpoint so a later solve does not
                // resume from a stale snapshot.
                store.clear(rank);
            }
        }
    }
    // diffreg-allow(no-unwrap-in-lib): betas is asserted non-empty above, so the loop always sets outcome
    (outcome.unwrap(), reports)
}

/// [`register_with_continuation_checkpointed`] with the solver telemetry
/// stream attached: every accepted Newton step appends one
/// [`diffreg_telemetry::IterRecord`] to `log` (objective, ‖g‖ and its
/// relative value, PCG iterations, Eisenstat-Walker η, step length, β
/// level), and discrete solver events (`"resume"`, `"level"`,
/// `"checkpoint"`, `"summary"`) are interleaved in stream order — the
/// paper's per-iteration convergence table, machine-readable.
///
/// Collective over `ws.comm`; each rank logs its own (identical) view of the
/// iteration, so in practice only rank 0's log is written out.
pub fn register_with_continuation_logged<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    betas: &[f64],
    store: &CheckpointStore,
    log: &mut diffreg_telemetry::ConvergenceLog,
) -> (RegistrationOutcome, Vec<NewtonReport>) {
    let rank = ws.comm.rank();
    {
        let resume = store.load_for_resume(rank);
        if resume.fell_back {
            log.event(
                "checkpoint-fallback",
                0,
                0,
                format!("current generation corrupt: {}", resume.errors[0]),
            );
        }
        if let Some(ck) = resume.checkpoint {
            log.event(
                "resume",
                ck.level,
                ck.completed_iters,
                format!("beta={:e} g0norm={:e}", ck.beta, ck.g0norm),
            );
        }
    }
    let every = cfg.checkpoint_every;
    let persist = every > 0 && store.is_enabled();
    let mut last_level = usize::MAX;
    let (outcome, reports) = {
        let log = &mut *log;
        register_with_continuation_checkpointed_hooked(
            ws,
            rho_t,
            rho_r,
            cfg,
            betas,
            store,
            |li, cur| {
                if li != last_level {
                    log.event(
                        "level",
                        li,
                        cur.completed_iters.saturating_sub(1),
                        format!("beta={:e}", betas[li]),
                    );
                    last_level = li;
                }
                log.record(diffreg_telemetry::IterRecord {
                    level: li,
                    beta: betas[li],
                    iter: cur.completed_iters,
                    objective: cur.objective,
                    grad_norm: cur.grad_norm,
                    rel_grad: if cur.g0norm > 0.0 { cur.grad_norm / cur.g0norm } else { 0.0 },
                    pcg_iters: cur.matvecs,
                    eta: cur.eta,
                    step_length: cur.step_length,
                });
                if persist && cur.completed_iters % every == 0 {
                    log.event("checkpoint", li, cur.completed_iters, "saved");
                }
            },
        )
    };
    log.event(
        "summary",
        betas.len() - 1,
        reports.last().map(|r| r.outer_iterations()).unwrap_or(0),
        format!(
            "status={:?} rel_mismatch={:.3e} matvecs={}",
            reports.last().map(|r| r.status),
            outcome.relative_mismatch(),
            outcome.hessian_matvecs
        ),
    );
    (outcome, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::{run_threaded, SerialComm, Timers};
    use diffreg_grid::{Decomp, Grid};
    use diffreg_pfft::PencilFft;
    use diffreg_transport::SemiLagrangian;

    /// The paper's synthetic problem (§IV-A1): template is a sin² bump sum,
    /// the reference is the template transported by a known velocity v*.
    fn synthetic_pair<C: Comm>(
        ws: &Workspace<C>,
        amplitude: f64,
    ) -> (ScalarField, ScalarField, VectorField) {
        let grid = ws.grid();
        let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| {
            (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        let v_star = VectorField::from_fn(&grid, ws.block(), |x| {
            [
                amplitude * x[0].cos() * x[1].sin(),
                amplitude * x[1].cos() * x[0].sin(),
                amplitude * x[0].cos() * x[2].sin(),
            ]
        });
        let sl = SemiLagrangian::new(ws, &v_star, 4);
        let rho_r = sl.solve_state(ws, &rho_t).pop().unwrap();
        (rho_t, rho_r, v_star)
    }

    #[test]
    fn registration_reduces_mismatch_substantially() {
        let grid = Grid::cubic(16);
        let comm = SerialComm::new();
        let decomp = Decomp::new(grid, 1);
        let fft = PencilFft::new(&comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r, _) = synthetic_pair(&ws, 0.5);
        let cfg = RegistrationConfig { beta: 1e-3, ..Default::default() };
        let out = register(&ws, &t, &r, cfg);
        assert!(
            out.relative_mismatch() < 0.3,
            "relative mismatch {} too large (report: {:?})",
            out.relative_mismatch(),
            out.report.status
        );
        assert!(out.det_grad.diffeomorphic, "map must stay diffeomorphic: {:?}", out.det_grad);
        assert!(out.hessian_matvecs > 0);
    }

    #[test]
    fn incompressible_registration_preserves_volume() {
        let grid = Grid::cubic(16);
        let comm = SerialComm::new();
        let decomp = Decomp::new(grid, 1);
        let fft = PencilFft::new(&comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        // Build the reference with a divergence-free v* (paper footnote 5).
        let grid2 = grid;
        let rho_t = ScalarField::from_fn(&grid2, ws.block(), |x| {
            (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        let v_star = VectorField::from_fn(&grid2, ws.block(), |x| {
            [0.4 * x[0].cos() * x[1].sin(), -0.4 * x[0].sin() * x[1].cos(), 0.0]
        });
        let sl = SemiLagrangian::new(&ws, &v_star, 4);
        let rho_r = sl.solve_state(&ws, &rho_t).pop().unwrap();

        let cfg = RegistrationConfig { beta: 1e-3, incompressible: true, ..Default::default() };
        let out = register(&ws, &rho_t, &rho_r, cfg);
        assert!(out.relative_mismatch() < 0.6, "rel mismatch {}", out.relative_mismatch());
        // Volume preservation: det(∇y₁) ≈ 1.
        assert!(
            (out.det_grad.min - 1.0).abs() < 0.05 && (out.det_grad.max - 1.0).abs() < 0.05,
            "det range [{}, {}]",
            out.det_grad.min,
            out.det_grad.max
        );
        // The recovered velocity itself is divergence-free.
        let div = ws.fft.divergence(&out.velocity, ws.timers);
        assert!(div.max_abs(&comm) < 1e-8);
    }

    #[test]
    fn continuation_reaches_target_beta() {
        let grid = Grid::cubic(12);
        let comm = SerialComm::new();
        let decomp = Decomp::new(grid, 1);
        let fft = PencilFft::new(&comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r, _) = synthetic_pair(&ws, 0.4);
        let cfg = RegistrationConfig::default();
        let (out, reports) = register_with_continuation(&ws, &t, &r, cfg, &[1e-2, 1e-3]);
        assert_eq!(reports.len(), 2);
        assert!(out.relative_mismatch() < 0.5, "rel mismatch {}", out.relative_mismatch());
    }

    #[test]
    fn distributed_registration_matches_serial() {
        let grid = Grid::cubic(12);
        let serial = {
            let comm = SerialComm::new();
            let decomp = Decomp::new(grid, 1);
            let fft = PencilFft::new(&comm, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(&comm, &decomp, &fft, &timers);
            let (t, r, _) = synthetic_pair(&ws, 0.4);
            let cfg = RegistrationConfig {
                newton: diffreg_optim::NewtonOptions { max_iter: 2, ..Default::default() },
                ..Default::default()
            };
            let out = register(&ws, &t, &r, cfg);
            (out.final_mismatch, out.report.grad_norm)
        };
        run_threaded(4, move |comm| {
            let decomp = Decomp::with_process_grid(grid, 2, 2);
            let fft = PencilFft::new(comm, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(comm, &decomp, &fft, &timers);
            let (t, r, _) = synthetic_pair(&ws, 0.4);
            let cfg = RegistrationConfig {
                newton: diffreg_optim::NewtonOptions { max_iter: 2, ..Default::default() },
                ..Default::default()
            };
            let out = register(&ws, &t, &r, cfg);
            let (sm, sg) = serial;
            assert!(
                (out.final_mismatch - sm).abs() < 1e-9 * sm.max(1.0),
                "mismatch {} vs serial {}",
                out.final_mismatch,
                sm
            );
            assert!((out.report.grad_norm - sg).abs() < 1e-8 * sg.max(1.0));
        });
    }
}
