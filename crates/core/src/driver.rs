//! The high-level registration driver: runs the Gauss-Newton-Krylov solve,
//! optionally with β-continuation (paper §III-A: "since the problem is
//! highly nonlinear we use parameter continuation on β"), and assembles the
//! diagnostics the paper reports.

use diffreg_comm::Comm;
use diffreg_grid::{ScalarField, VectorField};
use diffreg_optim::{gauss_newton, GaussNewtonProblem, NewtonReport};
use diffreg_transport::Workspace;

use crate::config::RegistrationConfig;
use crate::jacobian::{det_deformation_gradient, det_stats, displacement, DetGradStats};
use crate::problem::RegProblem;

/// Everything a registration run produces.
#[derive(Debug)]
pub struct RegistrationOutcome {
    /// The optimal stationary velocity field.
    pub velocity: VectorField,
    /// The Newton-Krylov solve report (per-iteration stats, matvec counts).
    pub report: NewtonReport,
    /// Total Hessian matvecs across the solve (Table V metric).
    pub hessian_matvecs: usize,
    /// `1/2 ||ρ_T − ρ_R||²` before registration (after smoothing).
    pub initial_mismatch: f64,
    /// `1/2 ||ρ(1) − ρ_R||²` after registration.
    pub final_mismatch: f64,
    /// The deformed (registered) template `ρ(1) = ρ_T ∘ y₁`.
    pub deformed_template: ScalarField,
    /// Displacement `u` with `y₁ = x + u`.
    pub displacement: VectorField,
    /// Determinant-of-deformation-gradient statistics.
    pub det_grad: DetGradStats,
}

impl RegistrationOutcome {
    /// Relative residual `||ρ(1) − ρ_R|| / ||ρ_T − ρ_R||`.
    pub fn relative_mismatch(&self) -> f64 {
        if self.initial_mismatch > 0.0 {
            (self.final_mismatch / self.initial_mismatch).sqrt()
        } else {
            0.0
        }
    }
}

/// Solves the registration problem for `(rho_t, rho_r)` with the given
/// configuration, starting from `v = 0`. Collective over `ws.comm`.
pub fn register<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
) -> RegistrationOutcome {
    let v0 = VectorField::zeros(ws.block());
    register_from(ws, rho_t, rho_r, cfg, v0)
}

/// Like [`register`] but warm-started from `v0` (used by the continuation
/// loop and by multi-resolution schemes).
pub fn register_from<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    v0: VectorField,
) -> RegistrationOutcome {
    // The config's kernel choice wins over whatever the caller's workspace
    // carries, so `RegistrationConfig { kernel, .. }` behaves as documented.
    let ws = &Workspace { kernel: cfg.kernel, ..*ws };
    let mut prob = RegProblem::new(ws, rho_t, rho_r, cfg);
    let initial_mismatch = prob.initial_data_term();
    // Keep the iterate in the divergence-free subspace from the start.
    let v0 = prob.project(&v0);
    let (velocity, report) = gauss_newton(&mut prob, v0, &cfg.newton);

    // Final diagnostics at the converged velocity.
    let (_, _) = prob.linearize(&velocity);
    let deformed_template = prob.deformed_template().unwrap().clone();
    let mut resid = deformed_template.clone();
    resid.axpy(-1.0, prob.reference());
    let final_mismatch = 0.5 * resid.inner(&resid, &ws.grid(), ws.comm);

    let displacement = displacement(ws, &velocity, cfg.nt);
    let det = det_deformation_gradient(ws, &displacement);
    let det_grad = det_stats(ws, &det);

    RegistrationOutcome {
        velocity,
        hessian_matvecs: prob.hessian_matvecs,
        report,
        initial_mismatch,
        final_mismatch,
        deformed_template,
        displacement,
        det_grad,
    }
}

/// β-continuation: solves a sequence of problems with decreasing β, warm
/// starting each from the previous solution. Returns the outcome at the
/// final (target) β together with the per-level reports.
pub fn register_with_continuation<C: Comm>(
    ws: &Workspace<C>,
    rho_t: &ScalarField,
    rho_r: &ScalarField,
    cfg: RegistrationConfig,
    betas: &[f64],
) -> (RegistrationOutcome, Vec<NewtonReport>) {
    assert!(!betas.is_empty(), "need at least one continuation level");
    assert!(
        betas.windows(2).all(|w| w[1] <= w[0]),
        "continuation levels must be non-increasing in β"
    );
    let mut v = VectorField::zeros(ws.block());
    let mut reports = Vec::with_capacity(betas.len());
    let mut outcome = None;
    for &beta in betas {
        let level_cfg = RegistrationConfig { beta, ..cfg };
        let out = register_from(ws, rho_t, rho_r, level_cfg, v);
        v = out.velocity.clone();
        reports.push(out.report.clone());
        outcome = Some(out);
    }
    (outcome.unwrap(), reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::{run_threaded, SerialComm, Timers};
    use diffreg_grid::{Decomp, Grid};
    use diffreg_pfft::PencilFft;
    use diffreg_transport::SemiLagrangian;

    /// The paper's synthetic problem (§IV-A1): template is a sin² bump sum,
    /// the reference is the template transported by a known velocity v*.
    fn synthetic_pair<C: Comm>(
        ws: &Workspace<C>,
        amplitude: f64,
    ) -> (ScalarField, ScalarField, VectorField) {
        let grid = ws.grid();
        let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| {
            (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        let v_star = VectorField::from_fn(&grid, ws.block(), |x| {
            [
                amplitude * x[0].cos() * x[1].sin(),
                amplitude * x[1].cos() * x[0].sin(),
                amplitude * x[0].cos() * x[2].sin(),
            ]
        });
        let sl = SemiLagrangian::new(ws, &v_star, 4);
        let rho_r = sl.solve_state(ws, &rho_t).pop().unwrap();
        (rho_t, rho_r, v_star)
    }

    #[test]
    fn registration_reduces_mismatch_substantially() {
        let grid = Grid::cubic(16);
        let comm = SerialComm::new();
        let decomp = Decomp::new(grid, 1);
        let fft = PencilFft::new(&comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r, _) = synthetic_pair(&ws, 0.5);
        let cfg = RegistrationConfig { beta: 1e-3, ..Default::default() };
        let out = register(&ws, &t, &r, cfg);
        assert!(
            out.relative_mismatch() < 0.3,
            "relative mismatch {} too large (report: {:?})",
            out.relative_mismatch(),
            out.report.status
        );
        assert!(out.det_grad.diffeomorphic, "map must stay diffeomorphic: {:?}", out.det_grad);
        assert!(out.hessian_matvecs > 0);
    }

    #[test]
    fn incompressible_registration_preserves_volume() {
        let grid = Grid::cubic(16);
        let comm = SerialComm::new();
        let decomp = Decomp::new(grid, 1);
        let fft = PencilFft::new(&comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        // Build the reference with a divergence-free v* (paper footnote 5).
        let grid2 = grid;
        let rho_t = ScalarField::from_fn(&grid2, ws.block(), |x| {
            (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
        });
        let v_star = VectorField::from_fn(&grid2, ws.block(), |x| {
            [0.4 * x[0].cos() * x[1].sin(), -0.4 * x[0].sin() * x[1].cos(), 0.0]
        });
        let sl = SemiLagrangian::new(&ws, &v_star, 4);
        let rho_r = sl.solve_state(&ws, &rho_t).pop().unwrap();

        let cfg = RegistrationConfig { beta: 1e-3, incompressible: true, ..Default::default() };
        let out = register(&ws, &rho_t, &rho_r, cfg);
        assert!(out.relative_mismatch() < 0.6, "rel mismatch {}", out.relative_mismatch());
        // Volume preservation: det(∇y₁) ≈ 1.
        assert!(
            (out.det_grad.min - 1.0).abs() < 0.05 && (out.det_grad.max - 1.0).abs() < 0.05,
            "det range [{}, {}]",
            out.det_grad.min,
            out.det_grad.max
        );
        // The recovered velocity itself is divergence-free.
        let div = ws.fft.divergence(&out.velocity, ws.timers);
        assert!(div.max_abs(&comm) < 1e-8);
    }

    #[test]
    fn continuation_reaches_target_beta() {
        let grid = Grid::cubic(12);
        let comm = SerialComm::new();
        let decomp = Decomp::new(grid, 1);
        let fft = PencilFft::new(&comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(&comm, &decomp, &fft, &timers);
        let (t, r, _) = synthetic_pair(&ws, 0.4);
        let cfg = RegistrationConfig::default();
        let (out, reports) = register_with_continuation(&ws, &t, &r, cfg, &[1e-2, 1e-3]);
        assert_eq!(reports.len(), 2);
        assert!(out.relative_mismatch() < 0.5, "rel mismatch {}", out.relative_mismatch());
    }

    #[test]
    fn distributed_registration_matches_serial() {
        let grid = Grid::cubic(12);
        let serial = {
            let comm = SerialComm::new();
            let decomp = Decomp::new(grid, 1);
            let fft = PencilFft::new(&comm, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(&comm, &decomp, &fft, &timers);
            let (t, r, _) = synthetic_pair(&ws, 0.4);
            let cfg = RegistrationConfig {
                newton: diffreg_optim::NewtonOptions { max_iter: 2, ..Default::default() },
                ..Default::default()
            };
            let out = register(&ws, &t, &r, cfg);
            (out.final_mismatch, out.report.grad_norm)
        };
        run_threaded(4, move |comm| {
            let decomp = Decomp::with_process_grid(grid, 2, 2);
            let fft = PencilFft::new(comm, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(comm, &decomp, &fft, &timers);
            let (t, r, _) = synthetic_pair(&ws, 0.4);
            let cfg = RegistrationConfig {
                newton: diffreg_optim::NewtonOptions { max_iter: 2, ..Default::default() },
                ..Default::default()
            };
            let out = register(&ws, &t, &r, cfg);
            let (sm, sg) = serial;
            assert!(
                (out.final_mismatch - sm).abs() < 1e-9 * sm.max(1.0),
                "mismatch {} vs serial {}",
                out.final_mismatch,
                sm
            );
            assert!((out.report.grad_norm - sg).abs() < 1e-8 * sg.max(1.0));
        });
    }
}
