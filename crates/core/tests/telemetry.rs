//! End-to-end observability acceptance test (ISSUE 3): a multi-rank
//! registration with span tracing enabled must produce
//!
//! * a valid Chrome trace (one `pid` per rank, nested
//!   fft/interp/transport/newton spans, Perfetto-loadable JSON),
//! * a rank-aggregated Table-I-style phase report with min/mean/max and
//!   load imbalance plus the §III-C4 model-predicted column, and
//! * a JSON-lines convergence log with exactly one record per accepted
//!   Newton iteration, interleaved with solver events.
//!
//! Grid size defaults to 16³ so debug-mode tier-1 stays fast; the release
//! CI smoke step sets `DIFFREG_TELEMETRY_SMOKE_SIZE=32`.

use diffreg_comm::{run_threaded, Comm, Timers};
use diffreg_core::{
    register_with_continuation_logged, CheckpointStore, RegistrationConfig,
};
use diffreg_grid::{Decomp, Grid, ScalarField, VectorField};
use diffreg_pfft::PencilFft;
use diffreg_telemetry::{
    chrome_trace, collect_phase_report, set_trace_enabled, take_thread_trace,
    validate_chrome_trace, ConvergenceLog, Json, PhaseReport, PredictedPhases, ThreadTrace,
};
use diffreg_transport::{SemiLagrangian, Workspace};

fn smoke_size() -> usize {
    std::env::var("DIFFREG_TELEMETRY_SMOKE_SIZE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(16)
}

fn synthetic_pair<C: Comm>(ws: &Workspace<C>) -> (ScalarField, ScalarField) {
    let grid = ws.grid();
    let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| {
        (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
    });
    let v_star = VectorField::from_fn(&grid, ws.block(), |x| {
        [
            0.4 * x[0].cos() * x[1].sin(),
            0.4 * x[1].cos() * x[0].sin(),
            0.4 * x[0].cos() * x[2].sin(),
        ]
    });
    let sl = SemiLagrangian::new(ws, &v_star, 4);
    let rho_r = sl.solve_state(ws, &rho_t).pop().unwrap();
    (rho_t, rho_r)
}

#[test]
fn traced_registration_produces_all_three_artifacts() {
    const RANKS: usize = 4;
    let n = smoke_size();
    let grid = Grid::cubic(n);
    let betas = [1e-2, 1e-3];

    set_trace_enabled(true);
    let per_rank: Vec<(ThreadTrace, PhaseReport, ConvergenceLog, usize)> =
        run_threaded(RANKS, move |comm| {
            let decomp = Decomp::with_process_grid(grid, 2, 2);
            let fft = PencilFft::new(comm, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(comm, &decomp, &fft, &timers);
            let (t, r) = synthetic_pair(&ws);
            let cfg = RegistrationConfig {
                newton: diffreg_optim::NewtonOptions { max_iter: 3, ..Default::default() },
                ..Default::default()
            };
            let mut log = ConvergenceLog::new("telemetry-smoke");
            let store = CheckpointStore::Disabled;
            let (_out, reports) = register_with_continuation_logged(
                &ws, &t, &r, cfg, &betas, &store, &mut log,
            );
            let report = collect_phase_report(comm, &timers, &comm.stats());
            let iters: usize = reports.iter().map(|r| r.outer_iterations()).sum();
            (take_thread_trace(), report, log, iters)
        });
    set_trace_enabled(false);

    // --- Chrome trace: one pid per rank, spans nest, expected names. ---
    let traces: Vec<(usize, ThreadTrace)> =
        per_rank.iter().enumerate().map(|(r, t)| (r, t.0.clone())).collect();
    let text = chrome_trace(&traces).to_string();
    let summary = validate_chrome_trace(&text).expect("trace must validate");
    assert_eq!(summary.pids, (0..RANKS).collect::<Vec<_>>(), "one pid per rank");
    assert!(summary.events > 0);
    for name in
        ["registration", "newton.iter", "newton.pcg", "hessian.matvec", "reg.linearize",
         "fft.forward", "fft.inverse", "interp.eval", "transport.state", "transport.adjoint"]
    {
        assert!(summary.names.iter().any(|s| s == name), "missing span {name}: {:?}", summary.names);
    }

    // --- Phase report: aggregated over ranks, with the predicted column. ---
    let report = &per_rank[0].1;
    assert_eq!(report.ranks, RANKS);
    for r in &per_rank {
        assert_eq!(&r.1, report, "phase report must be replicated on all ranks");
    }
    for phase in ["fft_exec", "fft_comm", "interp_exec", "interp_comm"] {
        let e = report.phase(phase).unwrap_or_else(|| panic!("missing phase {phase}"));
        assert!(e.max >= e.mean && e.mean >= e.min && e.min >= 0.0, "{phase}: {e:?}");
        assert!(e.imbalance() >= 1.0, "{phase} imbalance {}", e.imbalance());
    }
    // Traffic flowed and was counted symmetrically across the job.
    let sent = report.comm.iter().find(|e| e.name == "bytes_sent").unwrap();
    let recvd = report.comm.iter().find(|e| e.name == "bytes_received").unwrap();
    assert!(sent.sum > 0.0);
    assert_eq!(sent.sum, recvd.sum, "every sent byte is received");

    // Predicted column from the paper's performance model renders.
    let shape = diffreg_perfmodel::SolveShape::paper_scaling();
    let b = diffreg_perfmodel::model_solve(
        &diffreg_perfmodel::Machine::MAVERICK,
        grid.n,
        RANKS,
        &shape,
    );
    let pred = PredictedPhases {
        fft_comm: b.fft_comm,
        fft_exec: b.fft_exec,
        interp_comm: b.interp_comm,
        interp_exec: b.interp_exec,
    };
    let table = report.render(Some(&pred));
    assert!(table.contains("fft_exec") && table.contains("imbal"), "{table}");
    assert!(table.contains("predicted"), "{table}");

    // --- Convergence stream: one iter record per accepted Newton step. ---
    let log = &per_rank[0].2;
    let iters = per_rank[0].3;
    assert!(iters > 0, "solve must take at least one Newton step");
    assert_eq!(log.iterations().count(), iters, "one record per Newton iteration");
    assert!(log.events().any(|e| e.kind == "level"));
    assert!(log.events().any(|e| e.kind == "summary"));
    let jsonl = log.to_jsonl();
    for line in jsonl.lines() {
        let v = Json::parse(line).expect("every JSONL line parses");
        assert!(v.get("type").is_some());
    }
    // Iter records carry the full paper tuple.
    let first = log.iterations().next().unwrap();
    assert!(first.beta > 0.0 && first.eta > 0.0 && first.pcg_iters > 0);
    assert!(first.rel_grad > 0.0 && first.rel_grad <= 1.0 + 1e-12);
    let table = log.render_table();
    assert!(table.contains("||g||_rel") && table.contains("PCG"), "{table}");
}

/// With tracing disabled (the default), running the same solve must record
/// nothing — the disabled path is a single atomic load.
#[test]
fn untraced_registration_records_nothing() {
    let grid = Grid::cubic(12);
    let traces = run_threaded(2, move |comm| {
        // Explicitly off (the other test may have toggled the global flag;
        // the flag is process-wide, but traces are per-thread and these
        // closures run on fresh threads).
        if diffreg_telemetry::trace_enabled() {
            return None;
        }
        let decomp = Decomp::new(grid, 2);
        let fft = PencilFft::new(comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(comm, &decomp, &fft, &timers);
        let (t, r) = synthetic_pair(&ws);
        let cfg = RegistrationConfig {
            newton: diffreg_optim::NewtonOptions { max_iter: 1, ..Default::default() },
            ..Default::default()
        };
        let _ = diffreg_core::register(&ws, &t, &r, cfg);
        Some(take_thread_trace())
    });
    for t in traces.into_iter().flatten() {
        assert!(t.events.is_empty(), "disabled tracing must record no spans");
        assert_eq!(t.dropped, 0);
    }
}
