//! End-to-end resilience drills for the registration solver (ISSUE PR 2
//! acceptance): the full 4-rank solve must be bitwise immune to injected
//! communication chaos, and a run killed mid-continuation must resume from
//! its checkpoint to the uninterrupted solve's answer.

use diffreg_comm::{
    run_threaded, run_threaded_checked, ChaosComm, ChaosConfig, Comm, SerialComm, Timers,
};
use diffreg_core::{
    register, register_with_continuation, register_with_continuation_checkpointed,
    register_with_continuation_checkpointed_hooked, CheckpointStore, RegistrationConfig,
};
use diffreg_grid::{Decomp, Grid, ScalarField, VectorField};
use diffreg_optim::NewtonOptions;
use diffreg_pfft::PencilFft;
use diffreg_transport::{SemiLagrangian, Workspace};

/// The paper's synthetic problem (§IV-A1): template is a sin² bump sum, the
/// reference is the template transported by a known velocity.
fn synthetic_pair<C: Comm>(ws: &Workspace<C>, amplitude: f64) -> (ScalarField, ScalarField) {
    let grid = ws.grid();
    let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| {
        (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
    });
    let v_star = VectorField::from_fn(&grid, ws.block(), |x| {
        [
            amplitude * x[0].cos() * x[1].sin(),
            amplitude * x[1].cos() * x[0].sin(),
            amplitude * x[0].cos() * x[2].sin(),
        ]
    });
    let sl = SemiLagrangian::new(ws, &v_star, 4);
    let rho_r = sl.solve_state(ws, &rho_t).pop().unwrap();
    (rho_t, rho_r)
}

fn small_cfg() -> RegistrationConfig {
    RegistrationConfig {
        newton: NewtonOptions { max_iter: 2, ..Default::default() },
        ..Default::default()
    }
}

/// A full 4-rank registration solve through [`ChaosComm`] with seeded
/// latency + reordering must produce *bitwise* the same answer as the
/// fault-free run: chaos perturbs timing only, and every reduction in the
/// solver is deterministically ordered.
#[test]
fn chaos_does_not_change_registration_results() {
    let grid = Grid::cubic(12);
    let solve_clean = move || -> Vec<(u64, u64)> {
        run_threaded(4, move |comm| {
            let decomp = Decomp::with_process_grid(grid, 2, 2);
            let fft = PencilFft::new(comm, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(comm, &decomp, &fft, &timers);
            let (t, r) = synthetic_pair(&ws, 0.4);
            let out = register(&ws, &t, &r, small_cfg());
            (out.final_mismatch.to_bits(), out.report.grad_norm.to_bits())
        })
    };
    let clean = solve_clean();
    for seed in [5u64, 77] {
        let noisy = run_threaded(4, move |comm| {
            let chaos = ChaosComm::new(
                comm,
                ChaosConfig::seeded(seed).with_latency(0.25, 60).with_reorder(0.4),
            );
            let decomp = Decomp::with_process_grid(grid, 2, 2);
            let fft = PencilFft::new(&chaos, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(&chaos, &decomp, &fft, &timers);
            let (t, r) = synthetic_pair(&ws, 0.4);
            let out = register(&ws, &t, &r, small_cfg());
            (out.final_mismatch.to_bits(), out.report.grad_norm.to_bits())
        });
        assert_eq!(
            noisy, clean,
            "chaos (seed {seed}) changed the registration result: \
             timing faults must never alter numerics"
        );
    }
}

/// Kill a 4-rank continuation run mid-level (every rank panics at a
/// deterministic Newton iteration), resume from the per-rank checkpoints,
/// and require the final mismatch to match the uninterrupted solve to 1e-14
/// — in fact bitwise, since the restart re-linearizes at exactly the
/// checkpointed iterate.
#[test]
fn killed_continuation_resumes_from_checkpoint_exactly() {
    let grid = Grid::cubic(12);
    let betas = [1e-2, 1e-3];
    let cfg = RegistrationConfig { checkpoint_every: 1, ..small_cfg() };

    // Uninterrupted reference (checkpointing disabled).
    let reference = run_threaded(4, move |comm| {
        let decomp = Decomp::with_process_grid(grid, 2, 2);
        let fft = PencilFft::new(comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(comm, &decomp, &fft, &timers);
        let (t, r) = synthetic_pair(&ws, 0.4);
        let (out, reports) = register_with_continuation_checkpointed(
            &ws,
            &t,
            &r,
            cfg,
            &betas,
            &CheckpointStore::Disabled,
        );
        assert_eq!(reports.len(), 2);
        out.final_mismatch
    });

    // Run 1: every rank is killed at level 0 right after the first accepted
    // Newton step has been checkpointed.
    let store = CheckpointStore::memory();
    let store_for_kill = store.clone();
    let killed = run_threaded_checked(4, move |comm| {
        let decomp = Decomp::with_process_grid(grid, 2, 2);
        let fft = PencilFft::new(comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(comm, &decomp, &fft, &timers);
        let (t, r) = synthetic_pair(&ws, 0.4);
        register_with_continuation_checkpointed_hooked(
            &ws,
            &t,
            &r,
            cfg,
            &betas,
            &store_for_kill,
            |level, cur| {
                if level == 0 && cur.completed_iters == 1 {
                    panic!("injected crash: killing rank {} mid-continuation", ws.comm.rank());
                }
            },
        )
        .0
        .final_mismatch
    });
    for (rank, res) in killed.iter().enumerate() {
        let fail = res.as_ref().expect_err("every rank must have been killed");
        assert_eq!(fail.rank, rank);
        assert!(fail.payload.contains("injected crash"), "{}", fail.payload);
    }
    // Every rank left a checkpoint behind.
    for rank in 0..4 {
        assert!(store.load(rank).is_some(), "rank {rank} has no checkpoint to resume from");
    }

    // Run 2: resume from the checkpoints and finish the solve.
    let store_for_resume = store.clone();
    let resumed = run_threaded(4, move |comm| {
        let decomp = Decomp::with_process_grid(grid, 2, 2);
        let fft = PencilFft::new(comm, decomp);
        let timers = Timers::new();
        let ws = Workspace::new(comm, &decomp, &fft, &timers);
        let (t, r) = synthetic_pair(&ws, 0.4);
        let (out, _) = register_with_continuation_checkpointed(
            &ws,
            &t,
            &r,
            cfg,
            &betas,
            &store_for_resume,
        );
        out.final_mismatch
    });
    for (rank, (&got, &want)) in resumed.iter().zip(&reference).enumerate() {
        assert!(
            (got - want).abs() <= 1e-14 * want.max(1.0),
            "rank {rank}: resumed mismatch {got} vs uninterrupted {want}"
        );
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "rank {rank}: resume is specified to be bitwise exact"
        );
    }
    // Successful completion clears the checkpoints.
    for rank in 0..4 {
        assert!(store.load(rank).is_none(), "rank {rank}: stale checkpoint after success");
    }
}

/// The checkpointed driver is a drop-in for the plain continuation loop:
/// with a file-backed store and no faults it produces bitwise the same
/// answer, round-trips through the on-disk format, and cleans up after
/// itself.
#[test]
fn checkpointed_driver_matches_plain_continuation_bitwise() {
    let grid = Grid::cubic(12);
    let comm = SerialComm::new();
    let decomp = Decomp::new(grid, 1);
    let fft = PencilFft::new(&comm, decomp);
    let timers = Timers::new();
    let ws = Workspace::new(&comm, &decomp, &fft, &timers);
    let (t, r) = synthetic_pair(&ws, 0.4);
    let betas = [1e-2, 1e-3];

    let (plain, _) = register_with_continuation(&ws, &t, &r, small_cfg(), &betas);

    let dir = std::env::temp_dir()
        .join(format!("diffreg-resilience-{}", std::process::id()));
    let store = CheckpointStore::file(&dir);
    let cfg = RegistrationConfig { checkpoint_every: 1, ..small_cfg() };
    let (ckpt, _) = register_with_continuation_checkpointed(&ws, &t, &r, cfg, &betas, &store);

    assert_eq!(
        ckpt.final_mismatch.to_bits(),
        plain.final_mismatch.to_bits(),
        "checkpoint writes must not perturb the solve"
    );
    for c in 0..3 {
        let a: Vec<u64> = plain.velocity.comps[c].data().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = ckpt.velocity.comps[c].data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b, "velocity component {c} differs");
    }
    assert!(store.load(0).is_none(), "successful run must clear its checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}
