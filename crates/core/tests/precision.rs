//! Mixed-precision parity tier: the f32 reduction policy must reproduce
//! the f64 objective and gradient norm on the GaussianPair oracle to the
//! documented tolerance (~1e-5 relative — f32 rounding of per-point
//! products with f64 accumulation, see `diffreg_grid::Precision`).

use diffreg_comm::{SerialComm, Timers};
use diffreg_core::{register, FieldOps, RegProblem, RegistrationConfig};
use diffreg_grid::{Decomp, Grid, Precision, ScalarField, VectorField};
use diffreg_optim::{GaussNewtonProblem, VectorOps};
use diffreg_pfft::PencilFft;
use diffreg_testkit::oracle::GaussianPair;
use diffreg_transport::Workspace;

/// Relative tolerance for f32-rounded reductions: products carry ~1.2e-7
/// relative error each; with f64 accumulation the sum stays at that level.
/// 1e-5 leaves two orders of headroom for cancellation in the residual.
const F32_RTOL: f64 = 1e-5;

fn with_serial_ws<R>(grid: Grid, f: impl FnOnce(&Workspace<SerialComm>) -> R) -> R {
    let comm = SerialComm::new();
    let decomp = Decomp::new(grid, 1);
    let fft = PencilFft::new(&comm, decomp);
    let timers = Timers::new();
    let ws = Workspace::new(&comm, &decomp, &fft, &timers);
    f(&ws)
}

#[test]
fn f32_objective_and_gradient_match_f64_on_gaussian_pair() {
    let grid = Grid::cubic(16);
    let pair = GaussianPair::new([0.4, -0.3, 0.2], 0.8);
    with_serial_ws(grid, |ws| {
        let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| pair.template(x));
        let rho_r = ScalarField::from_fn(&grid, ws.block(), |x| pair.reference(x));
        let v = VectorField::from_fn(&grid, ws.block(), |x| {
            [0.1 * x[1].sin(), -0.08 * x[0].cos(), 0.05 * (x[2] + x[0]).sin()]
        });

        let cfg64 = RegistrationConfig::default().with_precision(Precision::F64);
        let cfg32 = RegistrationConfig::default().with_precision(Precision::F32);
        let mut p64 = RegProblem::new(ws, &rho_t, &rho_r, cfg64);
        let mut p32 = RegProblem::new(ws, &rho_t, &rho_r, cfg32);

        let (j64, g64) = p64.linearize(&v);
        let (j32, g32) = p32.linearize(&v);
        assert!(j64 > 0.0, "objective must be positive away from the optimum");
        assert!(
            (j32 - j64).abs() <= F32_RTOL * j64,
            "objective parity: J32 = {j32}, J64 = {j64}"
        );
        let ops = FieldOps::new(ws.comm, ws.grid());
        let n64 = ops.norm(&g64);
        let n32 = ops.norm(&g32);
        assert!(
            (n32 - n64).abs() <= F32_RTOL * n64,
            "gradient-norm parity: |g|32 = {n32}, |g|64 = {n64}"
        );
        // The gradient *fields* are built from f64 transport/spectral ops in
        // both configurations; only reductions differ. They must agree
        // almost exactly.
        let mut diff = g32.clone();
        diff.axpy(-1.0, &g64);
        assert!(ops.norm(&diff) <= 1e-12 * n64.max(1.0), "gradient fields diverged");
    });
}

#[test]
fn f32_registration_converges_like_f64_on_gaussian_pair() {
    let grid = Grid::cubic(12);
    let pair = GaussianPair::new([0.5, 0.0, 0.0], 0.9);
    let run = |precision: Precision| {
        with_serial_ws(grid, |ws| {
            let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| pair.template(x));
            let rho_r = ScalarField::from_fn(&grid, ws.block(), |x| pair.reference(x));
            let cfg =
                RegistrationConfig::default().with_nt(2).with_beta(1e-2).with_precision(precision);
            register(ws, &rho_t, &rho_r, cfg).relative_mismatch()
        })
    };
    let r64 = run(Precision::F64);
    let r32 = run(Precision::F32);
    assert!(r64 < 0.5, "f64 registration must reduce the mismatch, got {r64}");
    assert!(r32 < 0.5, "f32 registration must reduce the mismatch, got {r32}");
    assert!(
        (r32 - r64).abs() <= 1e-3 * r64.max(1e-3),
        "precision paths diverged: {r32} vs {r64}"
    );
}
