//! Zero-allocation regression tier: once the buffer arena is warm, a full
//! Newton iteration (linearize + Hessian matvec) must recycle every
//! arena-managed buffer — the arena-miss counter in the MetricsRegistry
//! stays flat while the hit counter keeps climbing. This pins down the
//! "zero heap allocations per iteration in steady state" property of the
//! ghost-exchange/interpolation hot path; a regression that reintroduces a
//! fresh allocation per step shows up as a growing miss count.
//!
//! This file holds exactly one test: it toggles the process-wide trace
//! flag and drains the thread-local metrics registry, which must not race
//! with other telemetry-sensitive tests in the same binary.

use diffreg_comm::{SerialComm, Timers};
use diffreg_core::{RegProblem, RegistrationConfig};
use diffreg_grid::{Decomp, Grid, ScalarField, VectorField, ARENA_HIT_COUNTER, ARENA_MISS_COUNTER};
use diffreg_optim::GaussNewtonProblem;
use diffreg_pfft::PencilFft;
use diffreg_testkit::oracle::GaussianPair;
use diffreg_transport::Workspace;

#[test]
fn warm_arena_newton_iteration_allocates_nothing() {
    let grid = Grid::cubic(12);
    let pair = GaussianPair::new([0.4, -0.2, 0.1], 0.8);
    let comm = SerialComm::new();
    let decomp = Decomp::new(grid, 1);
    let fft = PencilFft::new(&comm, decomp);
    let timers = Timers::new();
    let ws = Workspace::new(&comm, &decomp, &fft, &timers);
    let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| pair.template(x));
    let rho_r = ScalarField::from_fn(&grid, ws.block(), |x| pair.reference(x));
    let v = VectorField::from_fn(&grid, ws.block(), |x| {
        [0.1 * x[1].sin(), -0.08 * x[2].cos(), 0.05 * x[0].sin()]
    });
    let d = VectorField::from_fn(&grid, ws.block(), |x| {
        [0.02 * x[2].cos(), 0.03 * x[0].sin(), -0.01 * x[1].cos()]
    });
    let mut prob = RegProblem::new(&ws, &rho_t, &rho_r, RegistrationConfig::default());

    let one_iteration = |prob: &mut RegProblem<'_, SerialComm>| {
        let (_, _) = prob.linearize(&v);
        let _ = prob.hessian_vec(&d);
        let _ = prob.precondition(&d);
    };

    // Warm-up: populate every arena capacity class the iteration touches.
    diffreg_telemetry::set_trace_enabled(true);
    one_iteration(&mut prob);
    let warm = diffreg_telemetry::take_global_metrics();
    assert!(
        warm.counter(ARENA_HIT_COUNTER).unwrap_or(0)
            + warm.counter(ARENA_MISS_COUNTER).unwrap_or(0)
            > 0,
        "iteration must route its scratch buffers through the arena"
    );

    // Steady state: the identical iteration must be served entirely from
    // the warm pool.
    one_iteration(&mut prob);
    let steady = diffreg_telemetry::take_global_metrics();
    diffreg_telemetry::set_trace_enabled(false);
    let misses = steady.counter(ARENA_MISS_COUNTER).unwrap_or(0);
    let hits = steady.counter(ARENA_HIT_COUNTER).unwrap_or(0);
    assert_eq!(misses, 0, "warm-arena iteration allocated {misses} fresh buffers");
    assert!(hits > 0, "warm-arena iteration must recycle pooled buffers");

    // The counters are part of the Prometheus surface, so operators can
    // watch allocation behaviour in production.
    let prom = steady.render_prometheus();
    assert!(prom.contains(ARENA_HIT_COUNTER), "hit counter missing from Prometheus snapshot");
}
