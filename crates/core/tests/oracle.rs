//! Analytic-oracle tests of the registration problem: discrete adjoint
//! consistency of the Gauss-Newton Hessian (to round-off, at a point where
//! the semi-Lagrangian scheme is exact), seeded finite-difference gradient
//! checks, and a registration problem with a known ground-truth solution
//! (testkit's `GaussianPair`).

use diffreg_comm::{SerialComm, Timers};
use diffreg_core::{register, register_translation, RegProblem, RegistrationConfig};
use diffreg_grid::{Decomp, Grid, ScalarField, VectorField};
use diffreg_optim::{GaussNewtonProblem, VectorOps};
use diffreg_pfft::PencilFft;
use diffreg_testkit::oracle::{adjoint_asymmetry, GaussianPair, PlaneWave};
use diffreg_testkit::prop_check;
use diffreg_transport::Workspace;

fn with_serial_ws<R>(grid: Grid, f: impl FnOnce(&Workspace<SerialComm>) -> R) -> R {
    let comm = SerialComm::new();
    let decomp = Decomp::new(grid, 1);
    let fft = PencilFft::new(&comm, decomp);
    let timers = Timers::new();
    let ws = Workspace::new(&comm, &decomp, &fft, &timers);
    f(&ws)
}

fn random_scalar(
    rng: &mut diffreg_testkit::Rng,
    grid: &Grid,
    block: diffreg_grid::Block,
    nmodes: usize,
    amp: f64,
) -> ScalarField {
    let modes: Vec<PlaneWave> = (0..nmodes).map(|_| PlaneWave::random(rng, 2)).collect();
    ScalarField::from_fn(grid, block, |x| amp * modes.iter().map(|m| m.eval(x)).sum::<f64>())
}

fn random_vector(
    rng: &mut diffreg_testkit::Rng,
    grid: &Grid,
    block: diffreg_grid::Block,
    amp: f64,
) -> VectorField {
    let m: Vec<Vec<PlaneWave>> =
        (0..3).map(|_| (0..2).map(|_| PlaneWave::random(rng, 2)).collect()).collect();
    VectorField::from_fn(grid, block, |x| {
        [
            amp * m[0].iter().map(|w| w.eval(x)).sum::<f64>(),
            amp * m[1].iter().map(|w| w.eval(x)).sum::<f64>(),
            amp * m[2].iter().map(|w| w.eval(x)).sum::<f64>(),
        ]
    })
}

/// Adjoint consistency of the Gauss-Newton Hessian matvec, to round-off.
///
/// At `v = 0` the semi-Lagrangian trajectories are the identity and grid
/// interpolation is exact, so the discrete GN operator collapses to
/// `H d = β A d + ∇ρ_T (d · ∇ρ_T)` — a Fourier multiplier plus a pointwise
/// symmetric rank-one form, both of which must pair as
/// `|⟨Hx,y⟩ − ⟨x,Hy⟩| < 1e-10 ‖x‖‖y‖`. (Away from `v = 0` the incremental
/// adjoint is not the exact transpose of the incremental state solve and
/// symmetry only holds to discretization error; the in-module tests cover
/// that regime.)
#[test]
fn gauss_newton_hessian_is_self_adjoint_at_zero_velocity() {
    prop_check!(cases = 6, |rng| {
        let grid = Grid::cubic(12);
        let seed_t = rng.next_u64();
        let mut r1 = diffreg_testkit::Rng::new(seed_t);
        with_serial_ws(grid, |ws| {
            let t = random_scalar(&mut r1, &grid, ws.block(), 4, 0.5);
            let r = random_scalar(&mut r1, &grid, ws.block(), 4, 0.5);
            let cfg = RegistrationConfig::default();
            let mut prob = RegProblem::new(ws, &t, &r, cfg);
            prob.linearize(&VectorField::zeros(ws.block()));
            let d1 = random_vector(&mut r1, &grid, ws.block(), 0.3);
            let d2 = random_vector(&mut r1, &grid, ws.block(), 0.3);
            let h1 = prob.hessian_vec(&d1);
            let h2 = prob.hessian_vec(&d2);
            let ops = prob.ops();
            let asym = adjoint_asymmetry(
                ops.dot(&h1, &d2),
                ops.dot(&d1, &h2),
                ops.norm(&d1),
                ops.norm(&d2),
            );
            assert!(asym < 1e-10, "GN Hessian adjoint asymmetry {asym} at v = 0");
        });
    });
}

/// Seeded finite-difference check of the reduced adjoint gradient at random
/// band-limited velocities and directions: `⟨g, d⟩` must match the central
/// difference of the objective to discretization accuracy, relative to the
/// gradient scale.
#[test]
fn reduced_gradient_matches_finite_differences() {
    prop_check!(cases = 4, |rng| {
        let grid = Grid::cubic(12);
        let seed = rng.next_u64();
        let mut r1 = diffreg_testkit::Rng::new(seed);
        with_serial_ws(grid, |ws| {
            let t = ScalarField::from_fn(&grid, ws.block(), |x| {
                (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
            });
            let r = ScalarField::from_fn(&grid, ws.block(), |x| {
                ((x[0] - 0.3).sin().powi(2) + (x[1] + 0.2).sin().powi(2) + x[2].sin().powi(2))
                    / 3.0
            });
            let cfg = RegistrationConfig { nt: 4, beta: 1e-2, ..Default::default() };
            let mut prob = RegProblem::new(ws, &t, &r, cfg);
            let v = random_vector(&mut r1, &grid, ws.block(), 0.1);
            let dir = random_vector(&mut r1, &grid, ws.block(), 0.1);
            let (_, g) = prob.linearize(&v);
            let gd = prob.ops().dot(&g, &dir);
            let eps = 1e-4;
            let mut vp = v.clone();
            vp.axpy(eps, &dir);
            let mut vm = v.clone();
            vm.axpy(-eps, &dir);
            let fd = (prob.objective(&vp) - prob.objective(&vm)) / (2.0 * eps);
            let scale = prob.ops().norm(&g) * prob.ops().norm(&dir);
            // Random band-limited fields carry more high-frequency content
            // than the hand-picked probe of the in-module 1e-3 check, so the
            // optimize-then-discretize gap is larger here; it vanishes under
            // refinement.
            let rel = (gd - fd).abs() / scale.max(1e-12);
            assert!(rel < 1e-2, "seed {seed:#x}: ⟨g,d⟩={gd} fd={fd} rel={rel}");
        });
    });
}

/// Registration oracle with a known solution: template and reference are
/// the same periodic Gaussian bump offset by a known shift. The rigid
/// baseline must recover the shift itself; the deformable solver must drive
/// the mismatch far below the unregistered value while staying
/// diffeomorphic.
#[test]
fn gaussian_pair_registration_recovers_known_shift() {
    let pair = GaussianPair::new([0.4, -0.25, 0.15], 0.7);
    let grid = Grid::cubic(16);
    with_serial_ws(grid, |ws| {
        let t = ScalarField::from_fn(&grid, ws.block(), |x| pair.template(x));
        let r = ScalarField::from_fn(&grid, ws.block(), |x| pair.reference(x));

        // Rigid baseline: the ground truth IS a translation; the recovered
        // shift must match it.
        let rigid = register_translation(ws, &t, &r, 100);
        for a in 0..3 {
            assert!(
                (rigid.shift[a] - pair.shift[a]).abs() < 0.02,
                "axis {a}: recovered {} vs ground truth {}",
                rigid.shift[a],
                pair.shift[a]
            );
        }

        // Deformable solve: must beat the unregistered mismatch decisively
        // and produce a diffeomorphic map.
        let out = register(ws, &t, &r, RegistrationConfig::default());
        assert!(
            out.relative_mismatch() < 0.3,
            "deformable solver left {} of the mismatch",
            out.relative_mismatch()
        );
        assert!(out.det_grad.diffeomorphic, "map must stay diffeomorphic");
        assert!(out.hessian_matvecs > 0);
    });
}
