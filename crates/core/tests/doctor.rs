//! End-to-end cross-rank wait-state doctor acceptance test (ISSUE 5): a
//! multi-rank registration with comm-event recording enabled must produce a
//! trace bundle the doctor can fully explain —
//!
//! * every p2p send matches exactly one receive (FIFO channels + seq numbers
//!   make the `(comm, src, dst, tag, seq)` key exact),
//! * every collective group is complete (all `csize` member records present),
//! * the critical-path walk explains at least 90% of the wall clock and its
//!   per-kind totals sum to the wall within 10%, and
//! * the Prometheus snapshot and wait-state table are byte-identical across
//!   two analyses of the same input (the doctor is a pure function).
//!
//! A second, fully deterministic test injects an 80 ms `ChaosComm` stall on
//! one rank's send and checks the doctor pins the resulting late-sender wait
//! on the right (waiter, op, culprit) triple with the right phase.
//!
//! Grid size defaults to 16³ so debug-mode tier-1 stays fast; the release CI
//! smoke step sets `DIFFREG_DOCTOR_SMOKE_SIZE=32` and
//! `DIFFREG_DOCTOR_DIR=target/doctor-smoke` to also write the on-disk bundle
//! that `diffreg-doctor analyze --gate` then consumes.

use diffreg_comm::{
    run_threaded, ChaosComm, ChaosConfig, Comm, CommEvent, CommOp, Timers,
};
use diffreg_core::{
    register_with_continuation_logged, CheckpointStore, RegistrationConfig,
};
use diffreg_grid::{Decomp, Grid, ScalarField, VectorField};
use diffreg_pfft::PencilFft;
use diffreg_telemetry::doctor::{analyze, write_trace_bundle, DoctorInput, WaitKind};
use diffreg_telemetry::{
    set_trace_enabled, take_global_metrics, take_thread_trace, ConvergenceLog,
    MetricsRegistry, ThreadTrace,
};
use diffreg_transport::{SemiLagrangian, Workspace};

fn smoke_size() -> usize {
    std::env::var("DIFFREG_DOCTOR_SMOKE_SIZE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(16)
}

fn synthetic_pair<C: Comm>(ws: &Workspace<C>) -> (ScalarField, ScalarField) {
    let grid = ws.grid();
    let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| {
        (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
    });
    let v_star = VectorField::from_fn(&grid, ws.block(), |x| {
        [
            0.4 * x[0].cos() * x[1].sin(),
            0.4 * x[1].cos() * x[0].sin(),
            0.4 * x[0].cos() * x[2].sin(),
        ]
    });
    let sl = SemiLagrangian::new(ws, &v_star, 4);
    let rho_r = sl.solve_state(ws, &rho_t).pop().unwrap();
    (rho_t, rho_r)
}

#[test]
fn doctor_explains_a_traced_registration() {
    const RANKS: usize = 4;
    let n = smoke_size();
    let grid = Grid::cubic(n);
    let betas = [1e-2, 1e-3];

    set_trace_enabled(true);
    let per_rank: Vec<(ThreadTrace, Vec<CommEvent>, MetricsRegistry)> =
        run_threaded(RANKS, move |comm| {
            comm.set_event_recording(true);
            let decomp = Decomp::with_process_grid(grid, 2, 2);
            let fft = PencilFft::new(comm, decomp);
            let timers = Timers::new();
            let ws = Workspace::new(comm, &decomp, &fft, &timers);
            let (t, r) = synthetic_pair(&ws);
            let cfg = RegistrationConfig {
                newton: diffreg_optim::NewtonOptions { max_iter: 3, ..Default::default() },
                ..Default::default()
            };
            let mut log = ConvergenceLog::new("doctor-smoke");
            let store = CheckpointStore::Disabled;
            let _ = register_with_continuation_logged(
                &ws, &t, &r, cfg, &betas, &store, &mut log,
            );
            comm.barrier();
            (take_thread_trace(), comm.take_events(), take_global_metrics())
        });
    set_trace_enabled(false);

    let traces: Vec<(usize, ThreadTrace)> =
        per_rank.iter().enumerate().map(|(r, t)| (r, t.0.clone())).collect();
    let events: Vec<(usize, Vec<CommEvent>)> =
        per_rank.iter().enumerate().map(|(r, t)| (r, t.1.clone())).collect();
    let mut metrics = MetricsRegistry::new();
    for (_, _, m) in &per_rank {
        metrics.merge(m);
    }

    // CI sets DIFFREG_DOCTOR_DIR so the `diffreg-doctor` CLI can re-analyze
    // the exact same run from disk and hard-gate on it.
    if let Ok(dir) = std::env::var("DIFFREG_DOCTOR_DIR") {
        write_trace_bundle(&dir, &traces, &events, Some(&metrics))
            .expect("write trace bundle");
        println!("wrote doctor trace bundle to {dir}");
    }

    let input = DoctorInput::from_memory(&traces, &events, Some(&metrics));
    let report = analyze(&input);

    // --- Matching: every p2p send pairs with exactly one receive. ---
    assert!(report.p2p_sends > 0, "registration must exchange p2p messages");
    assert_eq!(report.matched.len(), report.p2p_sends, "every send matched");
    assert_eq!(report.matched.len(), report.p2p_recvs, "every recv matched");
    assert_eq!(report.unmatched_sends + report.unmatched_recvs, 0);

    // --- Collectives: every group saw all csize member records. ---
    assert!(!report.collectives.is_empty(), "registration runs collectives");
    assert_eq!(report.incomplete_collectives, 0, "no torn collective groups");

    // --- Critical path: explains the wall clock. ---
    assert_eq!(report.ranks, RANKS);
    assert!(report.wall_s > 0.0);
    assert!(
        report.coverage >= 0.9,
        "critical path must cover >= 90% of wall, got {:.1}%",
        report.coverage * 100.0
    );
    let path_sum: f64 = report.path_totals.iter().map(|(_, s)| s).sum();
    assert!(
        (path_sum - report.wall_s).abs() <= 0.1 * report.wall_s,
        "per-kind path totals {path_sum:.6}s must sum to wall {:.6}s within 10%",
        report.wall_s
    );
    report.gate(0.9).expect("doctor gate must pass on a healthy run");

    // --- Instrumented phases show up on the merged span timeline. ---
    for phase in ["fft.transpose", "interp.scatter", "newton.pcg"] {
        assert!(
            report.phase_rank_seconds.contains_key(phase),
            "missing phase {phase}: {:?}",
            report.phase_rank_seconds.keys().collect::<Vec<_>>()
        );
    }

    // --- Run-recorded metrics flowed through the global registry. ---
    let pts = report
        .metrics
        .histogram("diffreg_interp_scatter_points")
        .expect("interp scatter size histogram");
    assert!(pts.count() > 0 && pts.sum() > 0.0);
    assert!(
        report.metrics.histogram("diffreg_comm_op_seconds{op=\"alltoallv\"}").is_some(),
        "doctor must derive per-op latency histograms"
    );

    // --- Determinism: the doctor is a pure function of its input. ---
    let again = analyze(&input);
    assert_eq!(report.prometheus(), again.prometheus(), "Prometheus snapshot");
    assert_eq!(report.render_wait_table(), again.render_wait_table(), "wait table");
    assert_eq!(report.render(10, None), again.render(10, None), "full report");
}

/// Deterministic fault-injection check: an 80 ms `ChaosComm` stall on rank
/// 1's send must surface as a late-sender wait on rank 0's receive, inside
/// the span that was open, attributed to rank 1.
#[test]
fn doctor_attributes_injected_stall_to_culprit_rank() {
    set_trace_enabled(true);
    let per_rank: Vec<(ThreadTrace, Vec<CommEvent>)> = run_threaded(2, move |comm| {
        comm.set_event_recording(true);
        // Rank 1 stalls 80 ms at its 2nd comm call — the send below.
        let chaos = ChaosComm::new(comm, ChaosConfig::seeded(1).with_stall(1, 2, 80));
        chaos.barrier(); // op 1 on both ranks
        // diffreg-allow(collective-consistency): deliberately asymmetric point-to-point exchange around an injected stall — the doctor must attribute it
        if chaos.rank() == 1 {
            chaos.send(0, 7, vec![1.0f64; 64]); // op 2: stall fires here
        } else {
            let v: Vec<f64> =
                diffreg_telemetry::with_span("newton.pcg", || chaos.recv(1, 7));
            assert_eq!(v.len(), 64);
        }
        chaos.barrier();
        (take_thread_trace(), comm.take_events())
    });
    set_trace_enabled(false);

    let traces: Vec<(usize, ThreadTrace)> =
        per_rank.iter().enumerate().map(|(r, t)| (r, t.0.clone())).collect();
    let events: Vec<(usize, Vec<CommEvent>)> =
        per_rank.iter().enumerate().map(|(r, t)| (r, t.1.clone())).collect();
    let input = DoctorInput::from_memory(&traces, &events, None);
    let report = analyze(&input);

    assert_eq!(report.matched.len(), 1, "the one p2p message matches");
    assert_eq!(report.unmatched_sends + report.unmatched_recvs, 0);
    assert_eq!(report.incomplete_collectives, 0);

    let late = report
        .waits
        .iter()
        .filter(|w| w.kind == WaitKind::LateSender)
        .max_by(|a, b| a.wait_s.total_cmp(&b.wait_s))
        .expect("stall must classify as a late-sender wait");
    assert_eq!(
        (late.waiter, late.culprit, late.op),
        (0, 1, CommOp::Recv),
        "rank 0's recv waited on rank 1's late send"
    );
    assert_eq!(late.phase, "newton.pcg", "wait lands in the open span");
    assert!(
        late.wait_s >= 0.05,
        "an 80 ms stall must dominate the wait, got {:.3}s",
        late.wait_s
    );

    // The (phase, op, waiter, culprit) aggregation carries it too.
    let agg = report
        .attribution
        .iter()
        .find(|((phase, op, w, c), _)| {
            phase == "newton.pcg" && op == "recv" && (*w, *c) == (0, 1)
        })
        .map(|(_, a)| a)
        .expect("late-sender must appear in the attribution table");
    assert!(agg.total_s >= 0.05 && agg.count >= 1);

    // And the wait shows up in the derived histogram snapshot.
    let prom = report.prometheus();
    assert!(
        prom.contains("diffreg_comm_wait_seconds_bucket{kind=\"late-sender\""),
        "{prom}"
    );
}
