//! Minimal image output for the figure-regeneration binaries: binary PGM
//! (P5) axial slices and raw f64 volume dumps.

use std::io::Write;
use std::path::Path;

use diffreg_grid::Grid;

/// Extracts axial slice `i0` (a `n1 x n2` plane) from a full-grid array.
pub fn axial_slice(full: &[f64], grid: &Grid, i0: usize) -> Vec<f64> {
    assert_eq!(full.len(), grid.total());
    assert!(i0 < grid.n[0]);
    let plane = grid.n[1] * grid.n[2];
    full[i0 * plane..(i0 + 1) * plane].to_vec()
}

/// Writes a `width x height` scalar plane as an 8-bit binary PGM, linearly
/// mapping `[lo, hi]` to `[0, 255]`.
pub fn write_pgm(
    path: impl AsRef<Path>,
    plane: &[f64],
    width: usize,
    height: usize,
    lo: f64,
    hi: f64,
) -> std::io::Result<()> {
    assert_eq!(plane.len(), width * height);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5\n{width} {height}\n255")?;
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    let bytes: Vec<u8> =
        plane.iter().map(|&v| (((v - lo) * scale).clamp(0.0, 255.0)) as u8).collect();
    f.write_all(&bytes)?;
    Ok(())
}

/// Writes a full scalar volume as little-endian f64 with a tiny text header
/// sidecar (`<path>.meta` records the extents).
pub fn write_raw_volume(path: impl AsRef<Path>, full: &[f64], grid: &Grid) -> std::io::Result<()> {
    assert_eq!(full.len(), grid.total());
    let path = path.as_ref();
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for v in full {
        f.write_all(&v.to_le_bytes())?;
    }
    std::fs::write(
        path.with_extension("meta"),
        format!("{} {} {} f64-le\n", grid.n[0], grid.n[1], grid.n[2]),
    )
}

/// Reads back a raw volume written by [`write_raw_volume`].
pub fn read_raw_volume(path: impl AsRef<Path>, grid: &Grid) -> std::io::Result<Vec<f64>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() != grid.total() * 8 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected {} bytes, found {}", grid.total() * 8, bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip_header() {
        let dir = std::env::temp_dir().join("diffreg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.pgm");
        let plane = vec![0.0, 0.5, 1.0, 0.25];
        write_pgm(&p, &plane, 2, 2, 0.0, 1.0).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        let data = &bytes[bytes.len() - 4..];
        assert_eq!(data[0], 0);
        assert_eq!(data[2], 255);
    }

    #[test]
    fn raw_volume_roundtrip() {
        let dir = std::env::temp_dir().join("diffreg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("v.raw");
        let grid = Grid::new([2, 3, 4]);
        let vol: Vec<f64> = (0..grid.total()).map(|i| i as f64 * 0.5 - 3.0).collect();
        write_raw_volume(&p, &vol, &grid).unwrap();
        let back = read_raw_volume(&p, &grid).unwrap();
        assert_eq!(vol, back);
        let meta = std::fs::read_to_string(p.with_extension("meta")).unwrap();
        assert_eq!(meta.trim(), "2 3 4 f64-le");
    }

    #[test]
    fn slice_extraction() {
        let grid = Grid::new([3, 2, 2]);
        let vol: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let s = axial_slice(&vol, &grid, 1);
        assert_eq!(s, vec![4.0, 5.0, 6.0, 7.0]);
    }
}
