//! Synthetic multi-subject brain phantoms — the NIREP substitute
//! (DESIGN.md substitution #4).
//!
//! The paper registers two 3D MRI brain images of different individuals
//! (NIREP na01/na02, 256 × 300 × 256). That data is not redistributable, so
//! we generate structurally analogous phantoms: an ellipsoidal "head" with a
//! bright cortical shell, darker white-matter interior, dark ventricles, and
//! smooth per-subject anatomical variation (bump positions, axes, fold
//! phases drawn from a seeded RNG). Two phantoms with different seeds play
//! the role of two subjects: same modality and topology, smooth large
//! deformation plus non-correspondences — the regime the brain experiment
//! exercises.

use diffreg_grid::{Block, Grid, ScalarField};
use diffreg_testkit::Rng;

/// Default seeds of the two-subject pair (the na01/na02 substitute).
///
/// These are *fixed by contract*: every rank of a distributed run (and every
/// run, on any machine) evaluates `BrainSubject::new` with the same seed, so
/// the anatomy parameters — and therefore the sampled phantom intensities —
/// are bit-identical everywhere. The seeded `testkit::Rng` (xoshiro256**,
/// pure integer arithmetic) guarantees the draw sequence is platform-
/// independent, unlike `rand::StdRng` whose stream is only stable per crate
/// version.
pub const SUBJECT_A_SEED: u64 = 1;
/// Seed of the second default subject; see [`SUBJECT_A_SEED`].
pub const SUBJECT_B_SEED: u64 = 2;

/// Smooth periodic squared distance between `x` and `c`, per axis weighted
/// by `inv_r²`. Uses `2 sin(Δ/2)` so the phantom is exactly 2π-periodic.
fn periodic_dist2(x: [f64; 3], c: [f64; 3], inv_r: [f64; 3]) -> f64 {
    let mut s = 0.0;
    for a in 0..3 {
        let d = 2.0 * ((x[a] - c[a]) * 0.5).sin() * inv_r[a];
        s += d * d;
    }
    s
}

/// A smooth compact blob with approximately unit height.
fn bump(x: [f64; 3], c: [f64; 3], r: [f64; 3]) -> f64 {
    let inv = [1.0 / r[0], 1.0 / r[1], 1.0 / r[2]];
    (-periodic_dist2(x, c, inv)).exp()
}

/// Anatomy parameters of one synthetic subject.
#[derive(Debug, Clone)]
pub struct BrainSubject {
    center: [f64; 3],
    head_r: [f64; 3],
    ventricle_offset: f64,
    ventricle_r: [f64; 3],
    fold_freq: [f64; 2],
    fold_phase: [f64; 2],
    fold_amp: f64,
    blobs: Vec<([f64; 3], [f64; 3], f64)>,
    intensity_scale: f64,
}

impl BrainSubject {
    /// Draws a subject's anatomy from a seed; different seeds play the role
    /// of different individuals (na01, na02, ...).
    pub fn new(seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let pi = std::f64::consts::PI;
        let jitter = |rng: &mut Rng, scale: f64| (rng.next_f64() - 0.5) * 2.0 * scale;
        let center = [pi + jitter(&mut rng, 0.15), pi + jitter(&mut rng, 0.15), pi + jitter(&mut rng, 0.15)];
        let head_r = [
            1.35 + jitter(&mut rng, 0.12),
            1.6 + jitter(&mut rng, 0.15),
            1.3 + jitter(&mut rng, 0.12),
        ];
        let n_blobs = 6;
        let mut blobs = Vec::with_capacity(n_blobs);
        for _ in 0..n_blobs {
            let c = [
                center[0] + jitter(&mut rng, 0.8),
                center[1] + jitter(&mut rng, 0.9),
                center[2] + jitter(&mut rng, 0.8),
            ];
            let r = [
                0.25 + rng.next_f64() * 0.3,
                0.25 + rng.next_f64() * 0.3,
                0.25 + rng.next_f64() * 0.3,
            ];
            let a = jitter(&mut rng, 0.12);
            blobs.push((c, r, a));
        }
        Self {
            center,
            head_r,
            ventricle_offset: 0.35 + jitter(&mut rng, 0.06),
            ventricle_r: [0.28 + jitter(&mut rng, 0.05), 0.5 + jitter(&mut rng, 0.08), 0.25 + jitter(&mut rng, 0.05)],
            fold_freq: [6.0 + jitter(&mut rng, 1.0).round(), 5.0 + jitter(&mut rng, 1.0).round()],
            fold_phase: [rng.next_f64() * 2.0 * pi, rng.next_f64() * 2.0 * pi],
            fold_amp: 0.08 + jitter(&mut rng, 0.02),
            blobs,
            intensity_scale: 1.0 + jitter(&mut rng, 0.05),
        }
    }

    /// Evaluates the phantom intensity (roughly in [0, 1]) at a point.
    pub fn intensity(&self, x: [f64; 3]) -> f64 {
        // Head mask: smooth ellipsoid with cortical folding of the boundary.
        let inv = [1.0 / self.head_r[0], 1.0 / self.head_r[1], 1.0 / self.head_r[2]];
        let d2 = periodic_dist2(x, self.center, inv);
        let theta = (x[1] - self.center[1]).atan2(x[0] - self.center[0]);
        let phi = (x[2] - self.center[2]).atan2(x[0] - self.center[0]);
        let fold = self.fold_amp
            * ((self.fold_freq[0] * theta + self.fold_phase[0]).sin()
                + (self.fold_freq[1] * phi + self.fold_phase[1]).cos());
        let r_eff = d2.sqrt() + fold;
        // Tissue model: bright shell (gray matter) at r≈1, dimmer interior
        // (white matter), background 0.
        let shell = (-(r_eff - 0.85_f64).powi(2) / 0.012).exp();
        let interior = 0.55 * smoothstep(0.9 - r_eff, 0.12);
        // Ventricles: two dark lobes beside the center.
        let mut vent = 0.0;
        for s in [-1.0, 1.0] {
            let c = [
                self.center[0] + s * self.ventricle_offset,
                self.center[1],
                self.center[2],
            ];
            vent += bump(x, c, self.ventricle_r);
        }
        // Per-subject smooth intensity blobs (anatomical variability).
        let mut var = 0.0;
        for (c, r, a) in &self.blobs {
            var += a * bump(x, *c, *r);
        }
        let raw = (0.9 * shell + interior - 0.5 * vent + var) * self.intensity_scale;
        raw.clamp(0.0, 1.2)
    }

    /// Builds the phantom on a rank's block.
    pub fn image(&self, grid: &Grid, block: Block) -> ScalarField {
        ScalarField::from_fn(grid, block, |x| self.intensity(x))
    }
}

/// Smooth 0→1 transition of width `w` around `t = 0`.
fn smoothstep(t: f64, w: f64) -> f64 {
    let s = (t / w).clamp(-1.0, 1.0);
    0.25 * (s + 1.0) * (s + 1.0) * (2.0 - s) * 0.5 * 2.0
}

/// Convenience: the two-subject problem of the paper's brain experiment
/// (the na01/na02 substitute). Returns (reference, template).
pub fn two_subject_pair(grid: &Grid, block: Block) -> (ScalarField, ScalarField) {
    let s1 = BrainSubject::new(SUBJECT_A_SEED);
    let s2 = BrainSubject::new(SUBJECT_B_SEED);
    (s1.image(grid, block), s2.image(grid, block))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_grid::{Decomp, Layout};

    #[test]
    fn phantom_is_deterministic_per_seed() {
        let a = BrainSubject::new(7);
        let b = BrainSubject::new(7);
        let c = BrainSubject::new(8);
        let x = [3.0, 3.1, 2.9];
        assert_eq!(a.intensity(x), b.intensity(x));
        assert_ne!(a.intensity(x), c.intensity(x));
    }

    #[test]
    fn phantom_has_contrast_and_bounded_range() {
        let grid = Grid::cubic(24);
        let d = Decomp::new(grid, 1);
        let s = BrainSubject::new(1);
        let img = s.image(&grid, d.block(0, Layout::Spatial));
        let max = img.data().iter().cloned().fold(f64::MIN, f64::max);
        let min = img.data().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max <= 1.2 && min >= 0.0, "range [{min}, {max}]");
        assert!(max - min > 0.5, "phantom lacks contrast: [{min}, {max}]");
        // Background (domain corner, far from the head) is dark.
        let corner = img.data()[0];
        assert!(corner < 0.2, "corner not background: {corner}");
    }

    #[test]
    fn subjects_differ_but_share_structure() {
        let grid = Grid::cubic(16);
        let d = Decomp::new(grid, 1);
        let (r, t) = two_subject_pair(&grid, d.block(0, Layout::Spatial));
        let diff: f64 =
            r.data().iter().zip(t.data()).map(|(a, b)| (a - b).abs()).sum::<f64>() / r.local_len() as f64;
        assert!(diff > 0.01, "subjects identical");
        // Correlation should still be high (same anatomy class).
        let mean_r: f64 = r.data().iter().sum::<f64>() / r.local_len() as f64;
        let mean_t: f64 = t.data().iter().sum::<f64>() / t.local_len() as f64;
        let mut cov = 0.0;
        let mut var_r = 0.0;
        let mut var_t = 0.0;
        for (a, b) in r.data().iter().zip(t.data()) {
            cov += (a - mean_r) * (b - mean_t);
            var_r += (a - mean_r).powi(2);
            var_t += (b - mean_t).powi(2);
        }
        let corr = cov / (var_r.sqrt() * var_t.sqrt());
        assert!(corr > 0.5, "subjects uncorrelated: {corr}");
    }
}
