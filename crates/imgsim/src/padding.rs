//! Zero-padding for non-periodic images (paper §III-B1): "In general, the
//! input images ρR and ρT may not be periodic functions. In that case a
//! spectral approximation will create excessively high aliasing errors. To
//! address this, we use zero-padding."
//!
//! [`embed_padded`] places an image volume in the interior of a larger
//! periodic grid with a zero margin, so the periodic wraparound happens
//! through the padding instead of through tissue; [`crop_padded`] extracts
//! the original region after registration.

use diffreg_grid::{Decomp, Grid, Layout, ScalarField};

/// Result of embedding an image into a padded periodic grid (serial layout).
#[derive(Debug, Clone)]
pub struct PaddedImage {
    /// The enlarged periodic grid.
    pub grid: Grid,
    /// The embedded field (zero in the margin).
    pub field: ScalarField,
    /// Margin width (in grid points) on the low side of each axis.
    pub offset: [usize; 3],
    /// Original image extents.
    pub inner: [usize; 3],
}

/// Embeds a row-major image volume of extents `inner` into a periodic grid
/// padded by `pad` points on every side of every axis.
pub fn embed_padded(data: &[f64], inner: [usize; 3], pad: usize) -> PaddedImage {
    assert_eq!(data.len(), inner.iter().product::<usize>(), "data does not match extents");
    let n = [inner[0] + 2 * pad, inner[1] + 2 * pad, inner[2] + 2 * pad];
    let grid = Grid::new(n);
    let block = Decomp::new(grid, 1).block(0, Layout::Spatial);
    let mut out = vec![0.0; grid.total()];
    for i0 in 0..inner[0] {
        for i1 in 0..inner[1] {
            let src = (i0 * inner[1] + i1) * inner[2];
            let dst = ((i0 + pad) * n[1] + (i1 + pad)) * n[2] + pad;
            out[dst..dst + inner[2]].copy_from_slice(&data[src..src + inner[2]]);
        }
    }
    PaddedImage {
        grid,
        field: ScalarField::from_vec(block, out),
        offset: [pad, pad, pad],
        inner,
    }
}

/// Extracts the original (unpadded) region from a field on the padded grid.
pub fn crop_padded(field: &ScalarField, padded: &PaddedImage) -> Vec<f64> {
    assert_eq!(field.local_len(), padded.grid.total(), "field not on the padded grid");
    let n = padded.grid.n;
    let [p0, p1, p2] = padded.offset;
    let inner = padded.inner;
    let mut out = Vec::with_capacity(inner.iter().product());
    for i0 in 0..inner[0] {
        for i1 in 0..inner[1] {
            let src = ((i0 + p0) * n[1] + (i1 + p1)) * n[2] + p2;
            out.extend_from_slice(&field.data()[src..src + inner[2]]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_crop_roundtrip() {
        let inner = [3usize, 4, 5];
        let data: Vec<f64> = (0..60).map(|i| i as f64 * 0.5 - 7.0).collect();
        let padded = embed_padded(&data, inner, 2);
        assert_eq!(padded.grid.n, [7, 8, 9]);
        let back = crop_padded(&padded.field, &padded);
        assert_eq!(back, data);
    }

    #[test]
    fn margin_is_zero() {
        let inner = [2usize, 2, 2];
        let data = vec![1.0; 8];
        let padded = embed_padded(&data, inner, 3);
        let n = padded.grid.n;
        let block_data = padded.field.data();
        // Every face plane of the padded volume is zero.
        for i1 in 0..n[1] {
            for i2 in 0..n[2] {
                assert_eq!(block_data[i1 * n[2] + i2], 0.0);
                assert_eq!(block_data[((n[0] - 1) * n[1] + i1) * n[2] + i2], 0.0);
            }
        }
        // Total mass is preserved.
        let total: f64 = block_data.iter().sum();
        assert_eq!(total, 8.0);
    }

    #[test]
    fn padding_suppresses_wraparound_aliasing() {
        // A sharply non-periodic ramp: unpadded, its spectral smoothing
        // bleeds across the boundary; padded, the boundary bleed lands in
        // the zero margin, not in the image.
        use diffreg_comm::{SerialComm, Timers};
        use diffreg_pfft::PencilFft;
        let inner = [16usize, 8, 8];
        let mut img = vec![0.0; 16 * 64];
        for i0 in 0..16 {
            for r in 0..64 {
                img[i0 * 64 + r] = i0 as f64 / 15.0; // ramp 0 -> 1 along axis 0
            }
        }
        let comm = SerialComm::new();
        let timers = Timers::new();

        // Unpadded: periodic grid equals the image; smooth and look at the
        // first plane (should be pulled up by wraparound from the 1.0 end).
        let grid_u = Grid::new(inner);
        let fft_u = PencilFft::new(&comm, Decomp::new(grid_u, 1));
        let block_u = Decomp::new(grid_u, 1).block(0, Layout::Spatial);
        let f_u = ScalarField::from_vec(block_u, img.clone());
        let sm_u = fft_u.gaussian_smooth(&f_u, 0.6, &timers);
        let bleed_unpadded = sm_u.data()[0] - 0.0;

        // Padded by 4: the same smoothing, then crop.
        let padded = embed_padded(&img, inner, 4);
        let fft_p = PencilFft::new(&comm, Decomp::new(padded.grid, 1));
        let sm_p = fft_p.gaussian_smooth(&padded.field, 0.6, &timers);
        let cropped = crop_padded(&sm_p, &padded);
        let bleed_padded = cropped[0] - 0.0;

        assert!(
            bleed_padded < 0.5 * bleed_unpadded,
            "padding must reduce wraparound bleed: {bleed_padded} vs {bleed_unpadded}"
        );
    }
}
