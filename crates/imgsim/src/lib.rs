//! # diffreg-imgsim
//!
//! Synthetic registration problems for the experiments (paper §IV-A1):
//! the analytic sin² phantom with known exact velocity (Fig. 5 / Tables
//! I-III), a multi-subject brain-phantom substitute for the NIREP data
//! (Fig. 6/7, Tables IV-V — see DESIGN.md substitution #4), similarity
//! metrics, and minimal image IO for the figure binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brain;
mod io;
mod metrics;
mod padding;
mod synthetic;

pub use brain::{two_subject_pair, BrainSubject, SUBJECT_A_SEED, SUBJECT_B_SEED};
pub use io::{axial_slice, read_raw_volume, write_pgm, write_raw_volume};
pub use metrics::{correlation, max_abs_diff, relative_residual, ssd};
pub use padding::{crop_padded, embed_padded, PaddedImage};
pub use synthetic::{
    exact_velocity, exact_velocity_divfree, gather_full, template, template_fn, velocity_divfree_fn,
    velocity_fn,
};
