//! Image-similarity metrics used by the experiments and figures.

use diffreg_comm::Comm;
use diffreg_grid::{Grid, ScalarField};

/// Sum-of-squared-differences data term `1/2 ||a − b||²_{L²}`.
pub fn ssd<C: Comm>(a: &ScalarField, b: &ScalarField, grid: &Grid, comm: &C) -> f64 {
    let mut r = a.clone();
    r.axpy(-1.0, b);
    0.5 * r.inner(&r, grid, comm)
}

/// Relative residual `||a − b|| / ||a₀ − b||` (1.0 = no improvement,
/// 0.0 = perfect match). `a0` is the pre-registration image.
pub fn relative_residual<C: Comm>(
    a: &ScalarField,
    a0: &ScalarField,
    b: &ScalarField,
    grid: &Grid,
    comm: &C,
) -> f64 {
    let den = ssd(a0, b, grid, comm);
    // diffreg-allow(float-eq): exact-zero guard against division by zero — any nonzero denominator is usable
    if den == 0.0 {
        return 0.0;
    }
    (ssd(a, b, grid, comm) / den).sqrt()
}

/// Pointwise maximum absolute difference (global).
pub fn max_abs_diff<C: Comm>(a: &ScalarField, b: &ScalarField, comm: &C) -> f64 {
    let mut r = a.clone();
    r.axpy(-1.0, b);
    r.max_abs(comm)
}

/// Pearson correlation coefficient between two images (global).
pub fn correlation<C: Comm>(a: &ScalarField, b: &ScalarField, grid: &Grid, comm: &C) -> f64 {
    let n = grid.total() as f64;
    let mean_a = a.mean(grid, comm);
    let mean_b = b.mean(grid, comm);
    let mut sums = [0.0_f64; 3]; // cov, var_a, var_b
    for (x, y) in a.data().iter().zip(b.data()) {
        sums[0] += (x - mean_a) * (y - mean_b);
        sums[1] += (x - mean_a) * (x - mean_a);
        sums[2] += (y - mean_b) * (y - mean_b);
    }
    comm.allreduce(&mut sums, diffreg_comm::ReduceOp::Sum);
    let _ = n;
    sums[0] / (sums[1].sqrt() * sums[2].sqrt()).max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::SerialComm;
    use diffreg_grid::{Decomp, Layout};

    fn fields() -> (Grid, ScalarField, ScalarField) {
        let grid = Grid::cubic(8);
        let d = Decomp::new(grid, 1);
        let b = d.block(0, Layout::Spatial);
        let a = ScalarField::from_fn(&grid, b, |x| x[0].sin());
        let c = ScalarField::from_fn(&grid, b, |x| (x[0] - 0.4).sin());
        (grid, a, c)
    }

    #[test]
    fn ssd_of_identical_is_zero() {
        let (grid, a, _) = fields();
        let comm = SerialComm::new();
        assert_eq!(ssd(&a, &a, &grid, &comm), 0.0);
        assert_eq!(max_abs_diff(&a, &a, &comm), 0.0);
    }

    #[test]
    fn relative_residual_baseline_is_one() {
        let (grid, a, c) = fields();
        let comm = SerialComm::new();
        assert!((relative_residual(&a, &a, &c, &grid, &comm) - 1.0).abs() < 1e-14);
        assert_eq!(relative_residual(&c, &a, &c, &grid, &comm), 0.0);
    }

    #[test]
    fn correlation_bounds() {
        let (grid, a, c) = fields();
        let comm = SerialComm::new();
        assert!((correlation(&a, &a, &grid, &comm) - 1.0).abs() < 1e-12);
        let corr = correlation(&a, &c, &grid, &comm);
        assert!(corr > 0.5 && corr < 1.0, "shifted sine correlation {corr}");
        let mut neg = a.clone();
        neg.scale(-1.0);
        assert!((correlation(&a, &neg, &grid, &comm) + 1.0).abs() < 1e-12);
    }
}
