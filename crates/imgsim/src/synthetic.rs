//! The paper's synthetic registration problem (§IV-A1, Fig. 5).
//!
//! Template: `ρ_T(x) = (sin²x₀ + sin²x₁ + sin²x₂)/3`.
//! Exact velocity: `v*(x) = (cos x₀ sin x₁, cos x₁ sin x₀, cos x₀ sin x₂)`
//! (0-based axes). The reference image is the template transported by `v*`,
//! so the ground-truth solution of the inverse problem is known.

use diffreg_comm::Comm;
use diffreg_grid::{Block, Grid, ScalarField, VectorField};

/// The synthetic template image evaluated at a point.
pub fn template_fn(x: [f64; 3]) -> f64 {
    (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
}

/// The exact velocity `v*` of the synthetic problem, scaled by `amplitude`.
pub fn velocity_fn(x: [f64; 3], amplitude: f64) -> [f64; 3] {
    [
        amplitude * x[0].cos() * x[1].sin(),
        amplitude * x[1].cos() * x[0].sin(),
        amplitude * x[0].cos() * x[2].sin(),
    ]
}

/// A divergence-free exact velocity for the incompressible experiments
/// (paper footnote 5: "for the incompressible case we use a similar but
/// divergence free velocity field").
pub fn velocity_divfree_fn(x: [f64; 3], amplitude: f64) -> [f64; 3] {
    [
        amplitude * x[0].cos() * x[1].sin(),
        -amplitude * x[0].sin() * x[1].cos(),
        amplitude * 0.5 * (x[0] + x[1]).sin(),
    ]
}

/// Builds the synthetic template on a rank's block.
pub fn template(grid: &Grid, block: Block) -> ScalarField {
    ScalarField::from_fn(grid, block, template_fn)
}

/// Builds `v*` on a rank's block.
pub fn exact_velocity(grid: &Grid, block: Block, amplitude: f64) -> VectorField {
    VectorField::from_fn(grid, block, |x| velocity_fn(x, amplitude))
}

/// Builds the divergence-free `v*` on a rank's block.
pub fn exact_velocity_divfree(grid: &Grid, block: Block, amplitude: f64) -> VectorField {
    VectorField::from_fn(grid, block, |x| velocity_divfree_fn(x, amplitude))
}

/// Gathers a distributed scalar field into a full grid array, replicated on
/// every rank (test/figure utility; do not use at scale).
pub fn gather_full<C: Comm>(comm: &C, grid: &Grid, field: &ScalarField) -> Vec<f64> {
    let all = comm.allgather(field.data().to_vec());
    let blocks = comm.allgather(vec![field.block()]);
    let mut out = vec![0.0; grid.total()];
    for (part, blk) in all.iter().zip(blocks.iter()) {
        let b: Block = blk[0];
        for (l, &v) in part.iter().enumerate() {
            out[grid.flatten(b.global_of_local(l))] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_comm::{run_threaded, SerialComm};
    use diffreg_grid::{Decomp, Layout};

    #[test]
    fn template_is_bounded_and_periodic() {
        let grid = Grid::cubic(8);
        let d = Decomp::new(grid, 1);
        let t = template(&grid, d.block(0, Layout::Spatial));
        for &v in t.data() {
            assert!((0.0..=1.0).contains(&v));
        }
        // Periodicity: the analytic function has period 2π (trivially true
        // for sin²) — check agreement across the seam.
        assert!((template_fn([0.0, 1.0, 2.0]) - template_fn([std::f64::consts::TAU, 1.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn divfree_velocity_is_divergence_free_analytically() {
        // ∂0(cos x0 sin x1) + ∂1(−sin x0 cos x1) + ∂2(0.5 sin(x0+x1)) =
        // −sin x0 sin x1 + sin x0 sin x1 + 0 = 0.
        let h = 1e-6;
        for s in 0..20 {
            let x = [0.3 * s as f64, 0.7 * s as f64, 0.1];
            let dvx = (velocity_divfree_fn([x[0] + h, x[1], x[2]], 1.0)[0]
                - velocity_divfree_fn([x[0] - h, x[1], x[2]], 1.0)[0])
                / (2.0 * h);
            let dvy = (velocity_divfree_fn([x[0], x[1] + h, x[2]], 1.0)[1]
                - velocity_divfree_fn([x[0], x[1] - h, x[2]], 1.0)[1])
                / (2.0 * h);
            let dvz = (velocity_divfree_fn([x[0], x[1], x[2] + h], 1.0)[2]
                - velocity_divfree_fn([x[0], x[1], x[2] - h], 1.0)[2])
                / (2.0 * h);
            assert!((dvx + dvy + dvz).abs() < 1e-6, "div = {}", dvx + dvy + dvz);
        }
    }

    #[test]
    fn gather_reassembles_distributed_field() {
        let grid = Grid::new([6, 4, 4]);
        let serial = {
            let d = Decomp::new(grid, 1);
            let f = template(&grid, d.block(0, Layout::Spatial));
            gather_full(&SerialComm::new(), &grid, &f)
        };
        run_threaded(4, move |comm| {
            let d = Decomp::with_process_grid(grid, 2, 2);
            let f = template(&grid, d.block(comm.rank(), Layout::Spatial));
            let full = gather_full(comm, &grid, &f);
            assert_eq!(full.len(), serial.len());
            for (a, b) in full.iter().zip(&serial) {
                assert!((a - b).abs() < 1e-15);
            }
        });
    }
}
