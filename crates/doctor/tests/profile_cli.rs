//! End-to-end CLI tests for `diffreg-doctor profile`: replay-stable
//! flamegraph bytes and differential attribution of an injected slowdown.

use std::path::{Path, PathBuf};
use std::process::Command;

use diffreg_comm::{CommEvent, CommOp};
use diffreg_telemetry::doctor::write_trace_bundle;
use diffreg_telemetry::{SpanEvent, ThreadTrace};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_diffreg-doctor")
}

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One synthetic comm event so `DoctorInput::load_dir` sees the rank.
fn dummy_event(rank: usize) -> CommEvent {
    CommEvent {
        op: CommOp::Allreduce,
        comm: 0,
        csize: 2,
        rank,
        peer: None,
        tag: None,
        seq: None,
        bytes: 64,
        epoch: Some(0),
        t0_ns: 0,
        t1_ns: 1_000,
        blocked_ns: 0,
    }
}

/// A two-rank trace bundle whose `transport.semilag` spans are `slow`×
/// longer than the baseline's. Span timestamps are microsecond-quantized
/// (the chrome-trace writer rounds to µs), so durations are multiples of
/// 1000 ns.
fn write_bundle(dir: &Path, slow: u64) {
    let us = 1_000u64;
    let mk_rank = |thread: u64| -> ThreadTrace {
        // Close order: children close before parents.
        let events = vec![
            SpanEvent { name: "fft.forward", t0_ns: 10 * us, dur_ns: 100 * us, depth: 1 },
            SpanEvent {
                name: "transport.semilag",
                t0_ns: 120 * us,
                dur_ns: 200 * us * slow,
                depth: 1,
            },
            SpanEvent {
                name: "newton.step",
                t0_ns: 0,
                dur_ns: (400 + 200 * (slow - 1)) * us,
                depth: 0,
            },
        ];
        ThreadTrace { thread, events, dropped: 0 }
    };
    let traces = vec![(0usize, mk_rank(0)), (1usize, mk_rank(1))];
    let events = vec![(0usize, vec![dummy_event(0)]), (1usize, vec![dummy_event(1)])];
    write_trace_bundle(dir, &traces, &events, None).expect("write bundle");
}

fn run_profile(args: &[&str]) -> (String, bool) {
    let out = Command::new(bin()).args(args).output().expect("run diffreg-doctor");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    (stdout, out.status.success())
}

#[test]
fn profile_folded_is_byte_identical_across_invocations() {
    let dir = scratch("profile-replay");
    write_bundle(&dir, 1);
    let (_, ok) = run_profile(&["profile", "--dir", dir.to_str().unwrap()]);
    assert!(ok, "first profile run failed");
    let first = std::fs::read(dir.join("profile.folded")).expect("read folded");
    let (_, ok) = run_profile(&["profile", "--dir", dir.to_str().unwrap()]);
    assert!(ok, "second profile run failed");
    let second = std::fs::read(dir.join("profile.folded")).expect("read folded");
    assert_eq!(first, second, "count projection must be byte-identical");
    let text = String::from_utf8(first).expect("utf8");
    // Nesting recovered: the semilag span sits under newton.step per rank.
    assert!(
        text.contains("rank0;newton.step;transport.semilag 1"),
        "stack lines present:\n{text}"
    );
    assert!(text.contains("rank1;newton.step;fft.forward 1"), "{text}");
    assert!(text.ends_with("[dropped] 0\n"), "dropped accounting present:\n{text}");
}

#[test]
fn replayed_bundles_with_different_wall_clocks_fold_identically() {
    // Two "replays": the same span sequence shifted in time. The canonical
    // projection must not see the difference.
    let a = scratch("profile-replay-a");
    let b = scratch("profile-replay-b");
    write_bundle(&a, 1);
    let us = 1_000u64;
    let shifted = vec![(0usize, ThreadTrace {
        thread: 0,
        events: vec![
            SpanEvent { name: "fft.forward", t0_ns: 5_010 * us, dur_ns: 170 * us, depth: 1 },
            SpanEvent {
                name: "transport.semilag",
                t0_ns: 5_200 * us,
                dur_ns: 130 * us,
                depth: 1,
            },
            SpanEvent { name: "newton.step", t0_ns: 5_000 * us, dur_ns: 777 * us, depth: 0 },
        ],
        dropped: 0,
    }), (1usize, ThreadTrace {
        thread: 1,
        events: vec![
            SpanEvent { name: "fft.forward", t0_ns: 9_010 * us, dur_ns: 42 * us, depth: 1 },
            SpanEvent {
                name: "transport.semilag",
                t0_ns: 9_100 * us,
                dur_ns: 260 * us,
                depth: 1,
            },
            SpanEvent { name: "newton.step", t0_ns: 9_000 * us, dur_ns: 500 * us, depth: 0 },
        ],
        dropped: 0,
    })];
    let events = vec![(0usize, vec![dummy_event(0)]), (1usize, vec![dummy_event(1)])];
    write_trace_bundle(&b, &shifted, &events, None).expect("write shifted bundle");
    let (_, ok) = run_profile(&["profile", "--dir", a.to_str().unwrap()]);
    assert!(ok);
    let (_, ok) = run_profile(&["profile", "--dir", b.to_str().unwrap()]);
    assert!(ok);
    let fa = std::fs::read(a.join("profile.folded")).expect("read a");
    let fb = std::fs::read(b.join("profile.folded")).expect("read b");
    assert_eq!(fa, fb, "timestamp-free projection ignores wall clocks");
}

#[test]
fn differential_ranks_injected_slowdown_first() {
    let base = scratch("profile-base");
    let slow = scratch("profile-slow");
    write_bundle(&base, 1);
    write_bundle(&slow, 10); // transport.semilag 10x slower
    let (stdout, ok) = run_profile(&[
        "profile",
        "--dir",
        slow.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
        "--top",
        "5",
    ]);
    assert!(ok, "differential profile run failed:\n{stdout}");
    let diff_text =
        std::fs::read_to_string(slow.join("profile-diff.txt")).expect("read profile-diff.txt");
    let first_row = diff_text.lines().nth(1).unwrap_or("");
    assert!(
        first_row.starts_with("transport.semilag"),
        "slowed phase must rank first:\n{diff_text}\nstdout:\n{stdout}"
    );
    assert!(stdout.contains("ranked by self-time regression"), "{stdout}");
}
