//! End-to-end tests for the `diffreg-doctor incident` subcommand: the happy
//! path over a real bundle on disk, and the typed non-panicking failure
//! modes (missing bundle, truncated file) with their messages pinned.

use std::path::PathBuf;
use std::process::Command;

use diffreg_comm::{CommEvent, CommOp};
use diffreg_telemetry::incident::{
    write_incident_bundle, IncidentHeader, IncidentTrigger, RankCapture,
};
use diffreg_telemetry::recorder::{RecEvent, RecKind, RecorderSnapshot};

fn doctor() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diffreg-doctor"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diffreg-doctor-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal two-rank capture: a completed gang barrier plus each rank's
/// recorded failure reason, enough for triage to name a culprit.
fn write_test_bundle(base: &PathBuf) -> PathBuf {
    let ev = |rank: usize, t0: u64| CommEvent {
        op: CommOp::Barrier,
        comm: 0x10,
        csize: 2,
        rank,
        peer: None,
        tag: None,
        seq: None,
        bytes: 0,
        epoch: Some(3),
        t0_ns: t0,
        t1_ns: t0 + 1_000_000,
        blocked_ns: 500_000,
    };
    let rec = |reason: u64| RecorderSnapshot {
        thread: 0,
        events: vec![RecEvent {
            t_ns: 9_000_000,
            kind: RecKind::Serve,
            name: "serve.attempt-failed",
            a: reason,
            b: 0,
        }],
        seen: 1,
        recorded: 1,
        sampled_out: 0,
        overwritten: 0,
        stride: 1,
    };
    let captures = vec![
        RankCapture { gang_rank: 0, events: vec![ev(0, 0)], events_dropped: 0, recorder: rec(1) },
        RankCapture { gang_rank: 1, events: vec![ev(1, 100)], events_dropped: 0, recorder: rec(2) },
    ];
    let header = IncidentHeader {
        seq: 0,
        trigger: IncidentTrigger::AttemptFailure,
        job: 7,
        attempt: 1,
        round: 2,
        tenant: "cli".to_string(),
        reason: "kill".to_string(),
        detail: "cli test".to_string(),
        gang_ranks: vec![0, 1],
        slo_firing: Vec::new(),
        comm_events: 0,
        comm_dropped: 0,
        rec_seen: 0,
        rec_recorded: 0,
        rec_sampled_out: 0,
        rec_overwritten: 0,
        convergence_entries: 0,
        convergence_evicted: 0,
        capture_digest: 0,
    };
    write_incident_bundle(base, header, &captures, None, None).unwrap()
}

#[test]
fn incident_subcommand_analyzes_and_gates_a_real_bundle() {
    let base = scratch("ok");
    let dir = write_test_bundle(&base);
    let out = doctor()
        .args(["incident", "--dir", dir.to_str().unwrap(), "--gate"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("incident #000: attempt-failure"), "{stdout}");
    assert!(stdout.contains("verified against files"), "{stdout}");
    assert!(stdout.contains("culprit: gang rank 0"), "{stdout}");
    assert!(stdout.contains("gate ok"), "{stdout}");
    assert!(dir.join("incident-report.txt").is_file());
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn incident_subcommand_fails_typed_on_missing_bundle() {
    let base = scratch("missing");
    let dir = base.join("no-such-incident");
    let out = doctor().args(["incident", "--dir", dir.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "missing bundle must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!(
            "no incident bundle at {} (missing incident.json)",
            dir.display()
        )),
        "stderr:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn incident_subcommand_fails_typed_on_truncated_bundle() {
    let base = scratch("truncated");
    let dir = write_test_bundle(&base);
    // Truncate the header mid-object: still present, no longer parseable.
    let header = dir.join("incident.json");
    let text = std::fs::read_to_string(&header).unwrap();
    std::fs::write(&header, &text[..text.len() / 2]).unwrap();
    let out = doctor().args(["incident", "--dir", dir.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "truncated bundle must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("is truncated or malformed"),
        "stderr:\n{stderr}"
    );
    assert!(stderr.contains("incident.json"), "stderr:\n{stderr}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn incident_subcommand_fails_typed_on_tampered_capture() {
    let base = scratch("tampered");
    let dir = write_test_bundle(&base);
    // Flip a captured byte count: the digest check must refuse the bundle.
    let events = dir.join("events-rank0.jsonl");
    let text = std::fs::read_to_string(&events).unwrap();
    assert!(text.contains("\"epoch\":3"), "{text}");
    std::fs::write(&events, text.replacen("\"epoch\":3", "\"epoch\":4", 1)).unwrap();
    let out = doctor()
        .args(["incident", "--dir", dir.to_str().unwrap(), "--gate"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "tampered bundle must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gate failed"), "stderr:\n{stderr}");
    let _ = std::fs::remove_dir_all(&base);
}
