//! `diffreg-doctor` — the cross-rank wait-state doctor CLI.
//!
//! Thin wrapper over `diffreg_telemetry::doctor`: loads a trace bundle
//! directory (written by a traced run via `doctor::write_trace_bundle`),
//! runs the merge/match/classify/critical-path analysis, writes
//! `doctor-report.txt` and `metrics.prom` back into the bundle directory,
//! and optionally hard-gates on analysis health.
//!
//! ```text
//! diffreg-doctor analyze --dir target/doctor-smoke [--top 10] [--grid 32]
//!                        [--gate] [--min-coverage 0.9]
//! diffreg-doctor incident --dir target/incidents/incident-000-watchdog-timeout
//!                         [--top 10] [--gate]
//! diffreg-doctor profile --dir target/doctor-smoke [--baseline OTHER_DIR] [--top 10]
//! diffreg-doctor selftest
//! ```
//!
//! With `--grid N` the report includes the paper's §III-C4 performance-model
//! prediction (Maverick machine constants) next to the measured
//! critical-path FFT/interp aggregates.

use std::process::ExitCode;

use diffreg_comm::{CommEvent, CommOp};
use diffreg_telemetry::doctor::{
    analyze, DoctorInput, RankRecord, Span, WaitKind,
};
use diffreg_telemetry::incident::{analyze_incident, gate_incident, load_incident_bundle};
use diffreg_telemetry::{diff_phases, render_diff, MetricsRegistry, PredictedPhases, Profile};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("diffreg-doctor: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("incident") => cmd_incident(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("selftest") => cmd_selftest(),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

const USAGE: &str = "usage:
  diffreg-doctor analyze --dir <bundle-dir> [--top K] [--grid N] [--gate] [--min-coverage F]
  diffreg-doctor incident --dir <incident-bundle-dir> [--top K] [--gate]
  diffreg-doctor profile --dir <bundle-dir> [--baseline <bundle-dir>] [--top K]
  diffreg-doctor selftest

analyze reads a trace bundle (trace.json + events-rank<k>.jsonl [+ metrics.json]),
writes doctor-report.txt and metrics.prom into the bundle directory, and prints
the report. --gate exits nonzero unless every p2p message matched, no collective
group is incomplete, and critical-path coverage meets --min-coverage (default 0.9).
--grid N adds the paper's performance-model predicted column for an N^3 grid.

incident reads one incident bundle written by the serve runtime
(incident.json + per-rank comm/recorder captures), verifies its content
digest, runs wait-state triage with culprit attribution, writes
incident-report.txt into the bundle directory, and prints the triage
summary. --gate additionally exits nonzero unless the digest matches, the
capture accounting is exact, and culprit-bearing triggers name a culprit.

profile folds a trace bundle's spans (or an incident bundle's recorder
windows) into a flamegraph: writes profile.folded (count-weighted, the
replay-stable projection) and profile-selftime.folded (self-nanosecond
weights, for inferno/speedscope) into the bundle directory and prints the
top-K self-time table with dropped-span accounting. --baseline loads a
second bundle and prints the per-phase self-time regression ranking
(largest regression first), writing profile-diff.txt.";

struct AnalyzeOpts {
    dir: Option<String>,
    top: usize,
    grid: Option<usize>,
    gate: bool,
    min_coverage: f64,
}

fn parse_analyze(args: &[String]) -> Result<AnalyzeOpts, String> {
    let mut opts =
        AnalyzeOpts { dir: None, top: 10, grid: None, gate: false, min_coverage: 0.9 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--dir" => opts.dir = Some(value("--dir")?.clone()),
            "--top" => {
                opts.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs an integer".to_string())?;
            }
            "--grid" => {
                opts.grid = Some(
                    value("--grid")?
                        .parse()
                        .map_err(|_| "--grid needs an integer".to_string())?,
                );
            }
            "--gate" => opts.gate = true,
            "--min-coverage" => {
                opts.min_coverage = value("--min-coverage")?
                    .parse()
                    .map_err(|_| "--min-coverage needs a number".to_string())?;
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let opts = parse_analyze(args)?;
    let dir = opts.dir.ok_or(format!("analyze needs --dir\n{USAGE}"))?;
    let input = DoctorInput::load_dir(&dir)?;
    let report = analyze(&input);
    let predicted = opts.grid.map(|n| {
        let shape = diffreg_perfmodel::SolveShape::paper_scaling();
        let b = diffreg_perfmodel::model_solve(
            &diffreg_perfmodel::Machine::MAVERICK,
            [n, n, n],
            report.ranks.max(1),
            &shape,
        );
        PredictedPhases {
            fft_comm: b.fft_comm,
            fft_exec: b.fft_exec,
            interp_comm: b.interp_comm,
            interp_exec: b.interp_exec,
        }
    });
    let text = report.render(opts.top, predicted.as_ref());
    let prom = report.prometheus();
    let dir_path = std::path::Path::new(&dir);
    std::fs::write(dir_path.join("doctor-report.txt"), &text)
        .map_err(|e| format!("write doctor-report.txt: {e}"))?;
    std::fs::write(dir_path.join("metrics.prom"), &prom)
        .map_err(|e| format!("write metrics.prom: {e}"))?;
    print!("{text}");
    println!(
        "wrote {} and {}",
        dir_path.join("doctor-report.txt").display(),
        dir_path.join("metrics.prom").display()
    );
    if opts.gate {
        report.gate(opts.min_coverage).map_err(|e| format!("gate failed: {e}"))?;
        println!(
            "gate ok: {}/{} p2p matched, {} collectives complete, coverage {:.1}%",
            report.matched.len(),
            report.p2p_sends,
            report.collectives.len(),
            report.coverage * 100.0
        );
    }
    Ok(())
}

fn cmd_incident(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut top = 10usize;
    let mut gate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--dir" => dir = Some(value("--dir")?.clone()),
            "--top" => {
                top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs an integer".to_string())?;
            }
            "--gate" => gate = true,
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let dir = dir.ok_or(format!("incident needs --dir\n{USAGE}"))?;
    // The typed load errors (missing bundle, truncated file) surface here
    // as the process's non-zero exit and pinned message.
    let bundle = load_incident_bundle(&dir).map_err(|e| e.to_string())?;
    let analysis = analyze_incident(&bundle, top);
    let dir_path = std::path::Path::new(&dir);
    std::fs::write(dir_path.join("incident-report.txt"), &analysis.summary)
        .map_err(|e| format!("write incident-report.txt: {e}"))?;
    print!("{}", analysis.summary);
    println!("wrote {}", dir_path.join("incident-report.txt").display());
    if gate {
        gate_incident(&bundle, &analysis).map_err(|e| format!("gate failed: {e}"))?;
        println!(
            "gate ok: digest {:016x} verified, {} comm events across {} rank(s), {} \
             convergence line(s)",
            bundle.header.capture_digest,
            bundle.header.comm_events,
            bundle.events.len(),
            bundle.convergence_lines
        );
    }
    Ok(())
}

/// Loads a profile from either bundle flavor: incident bundles (detected
/// by `incident.json`) fold their captured flight-recorder windows; trace
/// bundles fold the spans in `trace.json`.
fn load_profile(dir: &str) -> Result<Profile, String> {
    if std::path::Path::new(dir).join("incident.json").is_file() {
        let bundle = load_incident_bundle(dir).map_err(|e| e.to_string())?;
        Ok(Profile::from_recorder_files(&bundle.recorder))
    } else {
        Ok(Profile::from_doctor(&DoctorInput::load_dir(dir)?))
    }
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--dir" => dir = Some(value("--dir")?.clone()),
            "--baseline" => baseline = Some(value("--baseline")?.clone()),
            "--top" => {
                top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs an integer".to_string())?;
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let dir = dir.ok_or(format!("profile needs --dir\n{USAGE}"))?;
    let prof = load_profile(&dir)?;
    let dir_path = std::path::Path::new(&dir);
    std::fs::write(dir_path.join("profile.folded"), prof.render_folded())
        .map_err(|e| format!("write profile.folded: {e}"))?;
    std::fs::write(dir_path.join("profile-selftime.folded"), prof.render_folded_self_ns())
        .map_err(|e| format!("write profile-selftime.folded: {e}"))?;
    print!("{}", prof.render_table(top));
    println!(
        "wrote {} and {}",
        dir_path.join("profile.folded").display(),
        dir_path.join("profile-selftime.folded").display()
    );
    if let Some(base_dir) = baseline {
        let base = load_profile(&base_dir)?;
        let deltas = diff_phases(&prof, &base);
        let text = render_diff(&deltas, top);
        std::fs::write(dir_path.join("profile-diff.txt"), &text)
            .map_err(|e| format!("write profile-diff.txt: {e}"))?;
        println!("differential vs {base_dir} (ranked by self-time regression):");
        print!("{text}");
        println!("wrote {}", dir_path.join("profile-diff.txt").display());
    }
    Ok(())
}

/// Synthetic two-rank late-sender scenario: the analysis pipeline must match
/// the pair, classify the wait, and explain the whole wall clock.
fn cmd_selftest() -> Result<(), String> {
    let ms = 1_000_000u64;
    let recv = CommEvent {
        op: CommOp::Recv,
        comm: 0,
        csize: 2,
        rank: 0,
        peer: Some(1),
        tag: Some(7),
        seq: Some(0),
        bytes: 256,
        epoch: None,
        t0_ns: 0,
        t1_ns: 120 * ms,
        blocked_ns: 120 * ms,
    };
    let send = CommEvent {
        op: CommOp::Send,
        comm: 0,
        csize: 2,
        rank: 1,
        peer: Some(0),
        tag: Some(7),
        seq: Some(0),
        bytes: 256,
        epoch: None,
        t0_ns: 100 * ms,
        t1_ns: 120 * ms,
        blocked_ns: 0,
    };
    let input = DoctorInput {
        ranks: vec![
            RankRecord {
                rank: 0,
                events: vec![recv],
                spans: vec![Span { name: "newton.pcg".into(), t0_ns: 0, t1_ns: 130 * ms }],
            },
            RankRecord { rank: 1, events: vec![send], spans: vec![] },
        ],
        metrics: MetricsRegistry::new(),
        trace_dropped: 0,
    };
    let report = analyze(&input);
    if report.matched.len() != 1 || report.unmatched_sends + report.unmatched_recvs != 0 {
        return Err(format!(
            "selftest: matching failed ({} matched, {} unmatched)",
            report.matched.len(),
            report.unmatched_sends + report.unmatched_recvs
        ));
    }
    let late = report
        .waits
        .iter()
        .find(|w| w.kind == WaitKind::LateSender)
        .ok_or("selftest: no late-sender finding")?;
    if (late.waiter, late.culprit) != (0, 1) || late.phase != "newton.pcg" {
        return Err(format!(
            "selftest: late-sender misattributed (waiter {}, culprit {}, phase {})",
            late.waiter, late.culprit, late.phase
        ));
    }
    report.gate(0.9).map_err(|e| format!("selftest: {e}"))?;
    let prom = report.prometheus();
    if !prom.contains("diffreg_comm_wait_seconds_bucket{kind=\"late-sender\"") {
        return Err("selftest: wait histogram missing from Prometheus snapshot".into());
    }
    println!(
        "selftest ok: late-sender {:.3} s attributed to rank 1, coverage {:.1}%",
        late.wait_s,
        report.coverage * 100.0
    );
    Ok(())
}
