//! # diffreg-perfmodel
//!
//! The paper's analytic performance model (§III-C4) with machine parameters
//! for TACC's Maverick and Stampede, used by the benchmark harness to
//! project the scaling tables (Tables I-IV) to cluster scale.
//!
//! Per Hessian matvec the paper counts `8 nt` 3D FFTs and `4 nt`
//! interpolation sweeps, with
//!
//! ```text
//! T_flop ≈ nt ( 8 · 7.5 N³/p · log N  +  4 · 600 N³/p )
//! T_mpi  ≈ 8 nt ( 3 t_s √p + t_w 3N³/p )  +  4 nt ( t_s + t_w N²/p )
//! ```
//!
//! The flop rate and `t_s`/`t_w` are calibrated against the paper's own
//! table rows (see EXPERIMENTS.md); what matters for reproduction is the
//! *shape*: interpolation dominates at low task counts, FFT communication
//! dominates at high counts, and strong-scaling efficiency lands in the
//! 50-70% band the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A machine model: effective per-task flop rate and network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Human-readable system name.
    pub name: &'static str,
    /// Effective per-MPI-task flop rate in flop/s (memory-bound kernels, so
    /// far below peak; calibrated ≈1 GF/s for Maverick's Ivy Bridge cores).
    pub flop_rate: f64,
    /// Message latency in seconds.
    pub ts: f64,
    /// Transfer time per 8-byte word in seconds (reciprocal bandwidth).
    pub tw: f64,
    /// MPI tasks per node in the paper's runs.
    pub tasks_per_node: usize,
}

impl Machine {
    /// TACC Maverick (dual 10-core Ivy Bridge per node; paper uses 16
    /// tasks/node). Calibrated against Table I run #3.
    pub const MAVERICK: Machine =
        Machine { name: "Maverick", flop_rate: 1.0e9, ts: 1.0e-5, tw: 2.5e-8, tasks_per_node: 16 };

    /// TACC Stampede (dual 8-core Sandy Bridge; paper uses 2 tasks/node).
    /// Calibrated against Table II runs #14/#17: with 2 tasks per node the
    /// per-task effective rate of the memory-bound kernels is close to
    /// Maverick's per-core rate.
    pub const STAMPEDE: Machine =
        Machine { name: "Stampede", flop_rate: 1.0e9, ts: 1.5e-5, tw: 1.2e-8, tasks_per_node: 2 };

    /// Execution time of one distributed 3D FFT (`7.5 N³ log₂N / p` flops).
    pub fn fft_exec(&self, n: [usize; 3], p: usize) -> f64 {
        let total: f64 = n.iter().map(|&x| x as f64).product();
        let logn = total.log2() / 3.0;
        7.5 * total * logn.max(1.0) / p as f64 / self.flop_rate
    }

    /// Communication time of one distributed 3D FFT
    /// (`3 t_s √p + 3 t_w N³/p`, the two pencil transposes), with a linear
    /// network-contention factor: as p grows the alltoall messages shrink to
    /// `N³/p^{3/2}` words and effective bandwidth degrades, which is why the
    /// paper observes FFT communication dominating at high task counts.
    pub fn fft_comm(&self, n: [usize; 3], p: usize) -> f64 {
        let total: f64 = n.iter().map(|&x| x as f64).product();
        const CONTENTION_TASKS: f64 = 256.0;
        let tw_eff = self.tw * (1.0 + p as f64 / CONTENTION_TASKS);
        3.0 * self.ts * (p as f64).sqrt() + 3.0 * tw_eff * total / p as f64
    }

    /// Execution time of one interpolation sweep (`600 N³/p` flops — 64
    /// coefficients × ~10 flops per tricubic point).
    pub fn interp_exec(&self, n: [usize; 3], p: usize) -> f64 {
        let total: f64 = n.iter().map(|&x| x as f64).product();
        600.0 * total / p as f64 / self.flop_rate
    }

    /// Communication time of one interpolation sweep: ghost-plane exchange
    /// (`4(t_s + t_w g N²/p)` with ghost width 2) plus the scatter value
    /// exchange for the fraction `leak` of points owned by other ranks.
    pub fn interp_comm(&self, n: [usize; 3], p: usize, leak: f64) -> f64 {
        let total: f64 = n.iter().map(|&x| x as f64).product();
        let plane = total / n[2] as f64; // N² in the paper's isotropic notation
        4.0 * (self.ts + self.tw * 2.0 * plane / p as f64)
            + 2.0 * self.ts * (p as f64).sqrt().min(8.0)
            + self.tw * leak * total / p as f64
    }
}

/// The algorithmic shape of one registration solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveShape {
    /// Semi-Lagrangian time steps (paper: 4).
    pub nt: usize,
    /// Outer Newton iterations.
    pub newton_iters: usize,
    /// Total Hessian matvecs across the solve.
    pub matvecs: usize,
}

impl SolveShape {
    /// The configuration of the paper's synthetic scaling runs: nt = 4,
    /// two Newton iterations, ≈5 matvecs (gtol = 1e-2, quadratic forcing).
    pub fn paper_scaling() -> Self {
        Self { nt: 4, newton_iters: 2, matvecs: 5 }
    }

    /// Number of 3D FFTs: `8 nt` per matvec (paper §III-C4) plus the
    /// gradient/objective transforms per Newton iteration.
    pub fn fft_count(&self) -> usize {
        self.matvecs * 8 * self.nt + self.newton_iters * 6 * self.nt
    }

    /// Number of interpolation sweeps: `4 nt` per matvec plus the
    /// state/adjoint solves and trajectory setup per Newton iteration.
    pub fn interp_sweeps(&self) -> usize {
        self.matvecs * 4 * self.nt + self.newton_iters * 3 * self.nt
    }
}

/// Modeled time-to-solution, split the way the paper's tables report it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// FFT communication seconds (transposes).
    pub fft_comm: f64,
    /// FFT execution seconds (1D transforms).
    pub fft_exec: f64,
    /// Interpolation communication seconds (ghost + scatter).
    pub interp_comm: f64,
    /// Interpolation execution seconds (kernel evaluation).
    pub interp_exec: f64,
    /// Everything else (pointwise algebra, reductions).
    pub other: f64,
}

impl Breakdown {
    /// Total modeled time to solution.
    pub fn total(&self) -> f64 {
        self.fft_comm + self.fft_exec + self.interp_comm + self.interp_exec + self.other
    }
}

/// Models a full solve of shape `shape` on grid `n` over `p` tasks.
pub fn model_solve(machine: &Machine, n: [usize; 3], p: usize, shape: &SolveShape) -> Breakdown {
    let ffts = shape.fft_count() as f64;
    let sweeps = shape.interp_sweeps() as f64;
    let fft_exec = ffts * machine.fft_exec(n, p);
    let fft_comm = if p > 1 { ffts * machine.fft_comm(n, p) } else { 0.0 };
    let interp_exec = sweeps * machine.interp_exec(n, p);
    let interp_comm = if p > 1 {
        sweeps * machine.interp_comm(n, p, 0.05)
    } else {
        // Serial runs still pay the local ghost assembly, counted as comm in
        // the paper's single-task rows (e.g. Table IV run #25).
        sweeps * machine.interp_comm(n, 1, 0.0) * 0.5
    };
    // Pointwise algebra: ~30 flops per grid point per sweep-equivalent.
    let other = (ffts + sweeps) * 30.0 * n.iter().map(|&x| x as f64).product::<f64>()
        / p as f64
        / machine.flop_rate;
    Breakdown { fft_comm, fft_exec, interp_comm, interp_exec, other }
}

/// Strong-scaling parallel efficiency `t_base p_base / (t p)`.
pub fn strong_efficiency(t_base: f64, p_base: usize, t: f64, p: usize) -> f64 {
    (t_base * p_base as f64) / (t * p as f64)
}

/// Weak-scaling efficiency `t_base / t` at proportionally grown problem and
/// task counts.
pub fn weak_efficiency(t_base: f64, t: f64) -> f64 {
    t_base / t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maverick_matches_paper_table1_row3_within_2x() {
        // Paper run #3: 128³ on 16 tasks — time to solution 15.2 s,
        // FFT exec 1.35 s, interp exec 6.66 s.
        let m = Machine::MAVERICK;
        let b = model_solve(&m, [128, 128, 128], 16, &SolveShape::paper_scaling());
        assert!(b.fft_exec > 0.6 && b.fft_exec < 2.7, "fft_exec {}", b.fft_exec);
        assert!(b.interp_exec > 3.3 && b.interp_exec < 13.5, "interp_exec {}", b.interp_exec);
        assert!(b.total() > 7.0 && b.total() < 31.0, "total {}", b.total());
    }

    #[test]
    fn interpolation_dominates_at_low_task_counts() {
        let m = Machine::MAVERICK;
        let b = model_solve(&m, [256, 256, 256], 32, &SolveShape::paper_scaling());
        assert!(b.interp_exec > b.fft_exec, "paper: ~60% of time in interpolation");
        assert!(b.interp_exec > b.fft_comm);
    }

    #[test]
    fn fft_communication_dominates_at_high_task_counts() {
        // Paper: "as we increase the number of tasks, the majority of time
        // goes to the FFT communication phase".
        let m = Machine::MAVERICK;
        let b = model_solve(&m, [256, 256, 256], 1024, &SolveShape::paper_scaling());
        assert!(b.fft_comm > b.interp_exec, "fft_comm {} interp_exec {}", b.fft_comm, b.interp_exec);
    }

    #[test]
    fn strong_scaling_efficiency_in_paper_band() {
        // Paper 256³: 32→512 tasks 67% efficiency, 32→1024 50%.
        let m = Machine::MAVERICK;
        let shape = SolveShape::paper_scaling();
        let t32 = model_solve(&m, [256; 3], 32, &shape).total();
        let t512 = model_solve(&m, [256; 3], 512, &shape).total();
        let t1024 = model_solve(&m, [256; 3], 1024, &shape).total();
        let e512 = strong_efficiency(t32, 32, t512, 512);
        let e1024 = strong_efficiency(t32, 32, t1024, 1024);
        assert!(e512 > 0.4 && e512 < 0.95, "eff(512) = {e512}");
        assert!(e1024 > 0.3 && e1024 < 0.85, "eff(1024) = {e1024}");
        assert!(e1024 < e512, "efficiency must fall with task count");
    }

    #[test]
    fn weak_scaling_fft_exec_is_flat() {
        // Paper runs #3/#8/#13: FFT exec 1.35/1.56/1.77 s under 8x grid and
        // task growth — near-flat (the log N factor).
        let m = Machine::MAVERICK;
        let shape = SolveShape::paper_scaling();
        let a = model_solve(&m, [128; 3], 16, &shape).fft_exec;
        let b = model_solve(&m, [256; 3], 128, &shape).fft_exec;
        let c = model_solve(&m, [512; 3], 1024, &shape).fft_exec;
        assert!(b / a < 1.4 && c / b < 1.4, "fft exec not flat: {a} {b} {c}");
    }

    #[test]
    fn shape_counts_match_paper_complexity() {
        let s = SolveShape { nt: 4, newton_iters: 0, matvecs: 1 };
        assert_eq!(s.fft_count(), 32); // 8 nt per matvec
        assert_eq!(s.interp_sweeps(), 16); // 4 nt per matvec
    }

    #[test]
    fn efficiency_helpers() {
        assert!((strong_efficiency(10.0, 32, 5.0, 64) - 1.0).abs() < 1e-12);
        assert!((strong_efficiency(10.0, 32, 10.0, 64) - 0.5).abs() < 1e-12);
        assert_eq!(weak_efficiency(10.0, 20.0), 0.5);
    }
}
