//! Incident-drill acceptance (ISSUE 8): a seeded chaos campaign on a
//! 4-rank pool must emit exactly the expected incident bundles, every
//! bundle must load, triage, and gate cleanly through the doctor-side
//! analyzer, and the deterministic bundle core (`incident.json`,
//! `convergence.jsonl`) must be byte-identical across two runs.
//!
//! The campaign is hand-built so each trigger class fires a known number
//! of times:
//!
//! | job | tenant     | fault plan                       | incidents           |
//! |-----|------------|----------------------------------|---------------------|
//! | 1   | `core`     | kill gang rank 0 at ~70% epochs  | attempt-failure     |
//! | 2   | `core`     | gang rank 1 stalls past watchdog | watchdog-timeout    |
//! | 3   | `core`     | kill, then torn checkpoint       | attempt-failure + checkpoint-fallback |
//! | 4   | `core`     | two fresh kills (no checkpoint)  | attempt-failure ×2 + gang-degraded |
//! | 5   | `deadline` | none; 1-round deadline in queue  | deadline-expiry     |
//! | 6   | `flaky`    | fresh kill, zero retries         | attempt-failure     |
//!
//! plus one `slo-burn-rate` each for tenants `deadline` and `flaky`
//! (success-rate budget burned at 10× against a 2× threshold), for
//! **11 bundles total**. The watchdog bundle's triage must name the
//! stalled gang rank, and the kill bundle's triage the killed rank.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use diffreg_comm::run_threaded;
use diffreg_serve::{
    attempt_epoch_count, AttemptFaults, FaultInjector, IncidentRecord, JobId, JobSpec,
    JobState, PlannedFaults, ServeConfig, ServeHarness, ServeSummary, SloPolicy,
};
use diffreg_telemetry::incident::{
    analyze_incident, gate_incident, load_incident_bundle, IncidentTrigger,
};

/// SLO policy for the drill: latency objectives that cannot breach, a 90%
/// success target, and short windows so the success-rate alert fires the
/// round the budget burns and resolves before the campaign ends.
fn drill_policy() -> SloPolicy {
    SloPolicy {
        queue_wait_rounds: 1000,
        latency_rounds: 1000,
        success_target_milli: 900,
        fast_window: 4,
        slow_window: 8,
        burn_threshold_milli: 2000,
    }
}

struct Drill {
    specs: Vec<JobSpec>,
    faults: PlannedFaults,
}

/// Builds the six-job drill campaign at grid `n`.
fn build_drill(n: usize, stall_ms: u64) -> Drill {
    let ckpt = JobSpec::new(0, n)
        .with_gang(2)
        .with_newton_iters(1)
        .with_betas(&[1e-2, 1e-3])
        .with_checkpoint_every(1)
        .with_amplitude(0.3);
    // ~70% of a fresh attempt lands inside the second continuation level:
    // checkpoints exist and have not yet been cleared.
    let kill_epoch = attempt_epoch_count(&ckpt, 2) * 7 / 10;

    let mut specs = Vec::new();
    let mut faults = PlannedFaults::new();

    // Job 1: checkpointed kill → resume. Gang rank 0 dies; the triage must
    // name it from its own recorded failure reason.
    let mut s = ckpt.clone();
    s.id = 1;
    specs.push(s.with_tenant("core"));
    faults.insert(
        1,
        1,
        AttemptFaults { kill_at_epoch: Some((0, kill_epoch)), ..AttemptFaults::none() },
    );

    // Job 2: gang rank 1 stalls past the watchdog; rank 0 times out, the
    // stalled rank wakes to dead peers. Triage must name gang rank 1.
    specs.push(
        JobSpec::new(2, n).with_gang(2).with_newton_iters(1).with_amplitude(0.4).with_tenant("core"),
    );
    faults.insert(
        2,
        1,
        AttemptFaults { stall_at_epoch: Some((1, 5, stall_ms)), ..AttemptFaults::none() },
    );

    // Job 3: kill, then a torn checkpoint on the retry → generation
    // fallback (a *successful* attempt that still files an incident).
    let mut s = ckpt.clone().with_amplitude(0.35);
    s.id = 3;
    specs.push(s.with_tenant("core"));
    faults.insert(
        3,
        1,
        AttemptFaults { kill_at_epoch: Some((0, kill_epoch)), ..AttemptFaults::none() },
    );
    faults.insert(3, 2, AttemptFaults { corrupt_checkpoint: true, ..AttemptFaults::none() });

    // Job 4: two fresh kills without a checkpoint → gang degradation
    // (degrade_after = 2), third attempt succeeds on the halved gang.
    specs.push(
        JobSpec::new(4, n).with_gang(2).with_newton_iters(1).with_amplitude(0.5).with_tenant("core"),
    );
    for attempt in 1..=2 {
        faults.insert(
            4,
            attempt,
            AttemptFaults { kill_at_epoch: Some((0, 2)), ..AttemptFaults::none() },
        );
    }

    // Job 5: expires in the queue — round 0 is fully packed by jobs 1+2,
    // so the round-1 deadline sweep fires before it ever runs. Its bundle
    // is header-only (no attempt, nothing staged).
    specs.push(
        JobSpec::new(5, n)
            .with_gang(1)
            .with_newton_iters(1)
            .with_deadline_rounds(1)
            .with_tenant("deadline"),
    );

    // Job 6: fresh kill with a zero retry budget → Failed terminal state.
    specs.push(
        JobSpec::new(6, n)
            .with_gang(1)
            .with_newton_iters(1)
            .with_max_retries(0)
            .with_tenant("flaky"),
    );
    faults.insert(6, 1, AttemptFaults { kill_at_epoch: Some((0, 2)), ..AttemptFaults::none() });

    Drill { specs, faults }
}

fn run_drill(d: &Drill, incident_dir: &Path) -> (ServeSummary, ServeHarness) {
    let cfg = ServeConfig {
        watchdog: Some(Duration::from_millis(400)),
        incident_dir: Some(incident_dir.to_path_buf()),
        slo: Some(drill_policy()),
        ..ServeConfig::default()
    };
    // PlannedFaults is not Clone; rebuild by re-querying the plan.
    let mut faults = PlannedFaults::new();
    for spec in &d.specs {
        for attempt in 1..=4u32 {
            let f = d.faults.faults(spec.id, attempt);
            if !f.is_clean() {
                faults.insert(spec.id, attempt, f);
            }
        }
    }
    let harness = ServeHarness::new(cfg, Arc::new(faults));
    for spec in &d.specs {
        harness.submit(spec.clone());
    }
    harness.close_intake();
    let h = harness.clone();
    let summaries = run_threaded(4, move |world| {
        world.set_timeout(Some(Duration::from_secs(300)));
        h.serve_pool(world)
    });
    for (r, s) in summaries.iter().enumerate() {
        assert_eq!(*s, summaries[0], "pool rank {r} diverged from rank 0");
    }
    (summaries[0].clone(), harness)
}

fn trigger_count(s: &ServeSummary, t: IncidentTrigger) -> usize {
    s.incidents.iter().filter(|i| i.trigger == t).count()
}

fn bundle_dir(base: &Path, rec: &IncidentRecord) -> PathBuf {
    base.join(format!("incident-{:03}-{}", rec.seq, rec.trigger.name()))
}

/// The drill proper: exact trigger counts, every bundle gated, triage
/// culprits named, and a byte-identical replay of the deterministic core.
#[test]
fn chaos_drill_emits_expected_gated_bundles_and_replays_byte_identically() {
    // CI points this at target/incident-drill and re-gates every bundle
    // through the diffreg-doctor CLI after the test passes.
    let (base, keep) = match std::env::var("DIFFREG_INCIDENT_DRILL_DIR") {
        Ok(dir) => (PathBuf::from(dir), true),
        Err(_) => (
            std::env::temp_dir().join(format!("diffreg-incident-drill-{}", std::process::id())),
            false,
        ),
    };
    let _ = std::fs::remove_dir_all(&base);
    let run1 = base.join("run1");
    let run2 = base.join("run2");

    let d = build_drill(8, 1500);
    let (s1, h1) = run_drill(&d, &run1);
    let (s2, _h2) = run_drill(&d, &run2);
    assert_eq!(s1, s2, "incident drill must replay deterministically");

    // Terminal states: jobs 1–4 complete, 5 expires in queue, 6 fails out.
    assert_eq!(s1.count(JobState::Completed), 4);
    assert_eq!(s1.count(JobState::Expired), 1);
    assert_eq!(s1.count(JobState::Failed), 1);

    // Exact trigger census — 11 incidents, 11 bundles.
    assert_eq!(trigger_count(&s1, IncidentTrigger::AttemptFailure), 5, "{:?}", s1.incidents);
    assert_eq!(trigger_count(&s1, IncidentTrigger::WatchdogTimeout), 1);
    assert_eq!(trigger_count(&s1, IncidentTrigger::CheckpointFallback), 1);
    assert_eq!(trigger_count(&s1, IncidentTrigger::GangDegraded), 1);
    assert_eq!(trigger_count(&s1, IncidentTrigger::DeadlineExpiry), 1);
    assert_eq!(trigger_count(&s1, IncidentTrigger::SloBurnRate), 2);
    assert_eq!(s1.incidents.len(), 11);
    assert_eq!(h1.counter("serve_incidents_total{trigger=\"attempt-failure\"}"), 5);
    assert_eq!(h1.counter("serve_incident_write_errors_total"), 0);

    for (label, dir) in [("run1", &run1), ("run2", &run2)] {
        let mut entries: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        entries.sort();
        assert_eq!(entries.len(), 11, "{label}: expected 11 bundles, got {entries:?}");
    }

    // Both tenants with a burned success budget alert exactly once.
    let slo_tenants: Vec<&str> = s1
        .incidents
        .iter()
        .filter(|i| i.trigger == IncidentTrigger::SloBurnRate)
        .map(|i| i.reason.as_str())
        .collect();
    assert_eq!(slo_tenants, ["slo", "slo"]);
    assert!(
        s1.slo_alerts.iter().any(|l| l.contains("deadline/success-rate") && l.contains("FIRING")),
        "missing deadline tenant alert in {:?}",
        s1.slo_alerts
    );
    assert!(
        s1.slo_alerts.iter().any(|l| l.contains("flaky/success-rate") && l.contains("FIRING")),
        "missing flaky tenant alert in {:?}",
        s1.slo_alerts
    );
    assert_ne!(s1.slo_digest, 0);

    // Every bundle loads, analyzes, and passes the doctor gate; the
    // deterministic core is byte-identical across the two runs.
    for rec in &s1.incidents {
        let dir1 = bundle_dir(&run1, rec);
        let dir2 = bundle_dir(&run2, rec);
        for dir in [&dir1, &dir2] {
            let bundle = load_incident_bundle(dir)
                .unwrap_or_else(|e| panic!("load {}: {e}", dir.display()));
            let analysis = analyze_incident(&bundle, 5);
            gate_incident(&bundle, &analysis)
                .unwrap_or_else(|e| panic!("gate {}: {e}", dir.display()));
            assert!(
                analysis.summary.contains(rec.trigger.name()),
                "triage summary must name the trigger:\n{}",
                analysis.summary
            );
        }
        for file in ["incident.json", "convergence.jsonl"] {
            let p1 = dir1.join(file);
            if !p1.exists() {
                continue; // header-only bundles carry no convergence tail
            }
            let b1 = std::fs::read(&p1).unwrap();
            let b2 = std::fs::read(dir2.join(file)).unwrap();
            assert_eq!(b1, b2, "{} differs between runs for {:?}", file, rec);
        }
    }

    // Triage attribution: the watchdog incident names the stalled gang
    // rank (1), the checkpointed kill names the killed gang rank (0).
    let watchdog = s1
        .incidents
        .iter()
        .find(|i| i.trigger == IncidentTrigger::WatchdogTimeout)
        .expect("watchdog incident");
    assert_eq!(watchdog.job, 2);
    assert_eq!(watchdog.reason, "timeout");
    let bundle = load_incident_bundle(bundle_dir(&run1, watchdog)).unwrap();
    let analysis = analyze_incident(&bundle, 5);
    let culprit = analysis.culprit.expect("watchdog triage must name a culprit");
    assert_eq!(culprit.rank, 1, "stalled gang rank: {}", culprit.detail);

    let kill = s1
        .incidents
        .iter()
        .find(|i| i.trigger == IncidentTrigger::AttemptFailure && i.job == 1)
        .expect("job-1 kill incident");
    assert_eq!(kill.reason, "kill");
    let bundle = load_incident_bundle(bundle_dir(&run1, kill)).unwrap();
    let analysis = analyze_incident(&bundle, 5);
    let culprit = analysis.culprit.expect("kill triage must name a culprit");
    assert_eq!(culprit.rank, 0, "killed gang rank: {}", culprit.detail);
    assert!(culprit.detail.contains("kill"), "detail: {}", culprit.detail);

    // The header-only deadline bundle still gates (no culprit demanded).
    let expiry = s1
        .incidents
        .iter()
        .find(|i| i.trigger == IncidentTrigger::DeadlineExpiry)
        .expect("deadline incident");
    assert_eq!(expiry.job, 5);
    let bundle = load_incident_bundle(bundle_dir(&run1, expiry)).unwrap();
    assert!(bundle.events.iter().all(|(_, e)| e.is_empty()));
    let analysis = analyze_incident(&bundle, 5);
    gate_incident(&bundle, &analysis).unwrap();

    if !keep {
        let _ = std::fs::remove_dir_all(&base);
    }
}

/// Cross-rank SLO fold determinism (satellite): the same campaign on 2-,
/// 4-, and 6-rank pools must produce, within each pool size, an identical
/// alert log and state digest on every rank, twice over.
#[test]
fn slo_alert_state_is_identical_across_ranks_and_replays() {
    let policy = SloPolicy {
        queue_wait_rounds: 1000,
        latency_rounds: 1000,
        success_target_milli: 900,
        fast_window: 2,
        slow_window: 4,
        burn_threshold_milli: 2000,
    };

    let run = |pool: usize| -> ServeSummary {
        let mut faults = PlannedFaults::new();
        faults.insert(2, 1, AttemptFaults { kill_at_epoch: Some((0, 2)), ..AttemptFaults::none() });
        let harness = ServeHarness::new(
            ServeConfig { slo: Some(policy.clone()), ..ServeConfig::default() },
            Arc::new(faults),
        );
        for id in 1..=4u64 {
            let tenant = if id == 2 { "flaky" } else { "steady" };
            let gang = if id % 2 == 0 { 1 } else { 2 };
            harness.submit(
                JobSpec::new(id as JobId, 8)
                    .with_gang(gang)
                    .with_newton_iters(1)
                    .with_max_retries(if id == 2 { 0 } else { 3 })
                    .with_tenant(tenant),
            );
        }
        harness.close_intake();
        let h = harness.clone();
        let summaries = run_threaded(pool, move |world| {
            world.set_timeout(Some(Duration::from_secs(120)));
            h.serve_pool(world)
        });
        for (r, s) in summaries.iter().enumerate() {
            assert_eq!(
                (s.slo_digest, &s.slo_alerts, &s.incidents),
                (summaries[0].slo_digest, &summaries[0].slo_alerts, &summaries[0].incidents),
                "pool {pool} rank {r}: SLO state diverged"
            );
            assert_eq!(*s, summaries[0], "pool {pool} rank {r} diverged");
        }
        summaries[0].clone()
    };

    let mut digests = BTreeMap::new();
    for pool in [2usize, 4, 6] {
        let a = run(pool);
        let b = run(pool);
        assert_eq!(a, b, "pool {pool}: replay diverged");
        assert_ne!(a.slo_digest, 0, "pool {pool}: SLO engine never observed anything");
        assert!(
            a.slo_alerts.iter().any(|l| l.contains("flaky/success-rate") && l.contains("FIRING")),
            "pool {pool}: flaky tenant never alerted: {:?}",
            a.slo_alerts
        );
        digests.insert(pool, a.slo_digest);
    }
    // Different pool sizes may legally schedule differently; the digest per
    // pool size is pinned by the replay assertion above.
    assert_eq!(digests.len(), 3);
}
