//! Chaos load-test acceptance (ISSUE 7): a queued campaign of registration
//! jobs on a 4-rank pool under seeded kills, stalls, and checkpoint
//! corruption must lose **zero** jobs, deliver every recovered job's final
//! transformation bitwise-equal to its uninterrupted reference solve, and
//! export deterministic recovery counters (plus queue-latency quantiles)
//! through the Prometheus dashboard.
//!
//! Two tiers share one campaign builder:
//!
//! * [`small_chaos_campaign_is_lossless_and_replays`] — always on, 8³ jobs,
//!   fast enough for debug-mode tier-1; also the CI release smoke (set
//!   `DIFFREG_SERVE_TRACE_DIR` to emit one served job's doctor-readable
//!   trace bundle).
//! * [`full_load_200_jobs_on_4_rank_pool`] — `#[ignore]`d; the CI release
//!   step runs it with `--ignored`: ≥200 queued 32³ jobs (scale with
//!   `DIFFREG_SERVE_LOAD_JOBS` / `DIFFREG_SERVE_LOAD_GRID`).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use diffreg_comm::run_threaded;
use diffreg_serve::{
    attempt_epoch_count, reference_digest, AttemptFaults, FaultInjector, JobId, JobSpec,
    JobState, PlannedFaults, ServeConfig, ServeHarness, ServeSummary,
};

/// The deterministic chaos campaign: a four-class job mix with fault slots
/// keyed on the job index.
struct Campaign {
    specs: Vec<JobSpec>,
    faults: PlannedFaults,
    cancels: Vec<JobId>,
    /// Jobs whose killed first attempt must RESUME from a checkpoint.
    expect_resumes: u64,
    /// Jobs whose retry additionally rides through torn-checkpoint
    /// fallback (counted inside `expect_resumes` too).
    expect_fallbacks: u64,
    /// Fresh (uncheckpointed) kills.
    expect_fresh_kills: u64,
    /// Stall-past-watchdog timeouts.
    expect_timeouts: u64,
}

/// Builds `jobs` specs over a `pool`-rank deployment at grid `n`.
///
/// Job classes by `i % 4`: 0 = checkpointed 2-rank two-level solve,
/// 1 = quick 1-rank solve, 2 = pool-wide solve, 3 = checkpointed 2-rank
/// (torn-write drill target). Fault slots by `i % 16`: 0 = kill →
/// checkpoint resume, 3 = kill then corrupt → generation fallback,
/// 5 = fresh kill, 6 = stall past the watchdog, 9 = cancelled at intake.
fn build_campaign(jobs: usize, n: usize, pool: usize, stall_ms: u64) -> Campaign {
    let class0 = JobSpec::new(0, n)
        .with_gang(2)
        .with_newton_iters(1)
        .with_betas(&[1e-2, 1e-3])
        .with_checkpoint_every(1)
        .with_amplitude(0.3);
    let class3 = JobSpec::new(0, n)
        .with_gang(2)
        .with_newton_iters(1)
        .with_betas(&[1e-2, 1e-3])
        .with_checkpoint_every(1)
        .with_amplitude(0.35);
    // Kill epochs at ~70% of a fresh attempt land inside the second
    // continuation level: checkpoints exist and have not yet been cleared.
    let kill0 = attempt_epoch_count(&class0, 2) * 7 / 10;
    let kill3 = attempt_epoch_count(&class3, 2) * 7 / 10;

    let mut c = Campaign {
        specs: Vec::with_capacity(jobs),
        faults: PlannedFaults::new(),
        cancels: Vec::new(),
        expect_resumes: 0,
        expect_fallbacks: 0,
        expect_fresh_kills: 0,
        expect_timeouts: 0,
    };
    for i in 0..jobs {
        let id = (i + 1) as JobId;
        let tenant = ["neuro", "cardiac", "onco"][i % 3];
        let mut spec = match i % 4 {
            0 => class0.clone().with_amplitude(0.3),
            1 => JobSpec::new(0, n).with_gang(1).with_newton_iters(1).with_amplitude(0.4),
            2 => JobSpec::new(0, n)
                .with_gang(pool)
                .with_newton_iters(1)
                .with_amplitude(0.5),
            _ => class3.clone(),
        };
        spec.id = id;
        spec = spec.with_tenant(tenant).with_priority((i % 3) as u8);
        match i % 16 {
            0 => {
                c.faults.insert(
                    id,
                    1,
                    AttemptFaults {
                        kill_at_epoch: Some((i % 2, kill0)),
                        ..AttemptFaults::none()
                    },
                );
                c.expect_resumes += 1;
            }
            3 => {
                c.faults.insert(
                    id,
                    1,
                    AttemptFaults { kill_at_epoch: Some((0, kill3)), ..AttemptFaults::none() },
                );
                c.faults.insert(
                    id,
                    2,
                    AttemptFaults { corrupt_checkpoint: true, ..AttemptFaults::none() },
                );
                c.expect_resumes += 1;
                c.expect_fallbacks += 1;
            }
            5 => {
                c.faults.insert(
                    id,
                    1,
                    AttemptFaults { kill_at_epoch: Some((0, 2)), ..AttemptFaults::none() },
                );
                c.expect_fresh_kills += 1;
            }
            6 => {
                c.faults.insert(
                    id,
                    1,
                    AttemptFaults {
                        stall_at_epoch: Some((1, 5, stall_ms)),
                        ..AttemptFaults::none()
                    },
                );
                c.expect_timeouts += 1;
            }
            9 => c.cancels.push(id),
            _ => {}
        }
        c.specs.push(spec);
    }
    c
}

/// Runs the campaign on a fresh deployment and verifies the acceptance
/// invariants. Returns `(summary, harness)` for extra assertions.
fn run_campaign(c: &Campaign, pool: usize, watchdog_ms: u64, trace_job: Option<JobId>) -> (ServeSummary, ServeHarness) {
    let cfg = ServeConfig {
        queue_capacity: c.specs.len() + 16,
        watchdog: Some(Duration::from_millis(watchdog_ms)),
        trace_job,
        ..ServeConfig::default()
    };
    let mut faults = PlannedFaults::new();
    // PlannedFaults is not Clone; rebuild from the campaign's plan by
    // re-querying it (pure function of (job, attempt)).
    for spec in &c.specs {
        for attempt in 1..=4u32 {
            let f = c.faults.faults(spec.id, attempt);
            if !f.is_clean() {
                faults.insert(spec.id, attempt, f);
            }
        }
    }
    let harness = ServeHarness::new(cfg, Arc::new(faults));
    for spec in &c.specs {
        harness.submit(spec.clone());
    }
    for id in &c.cancels {
        harness.cancel(*id);
    }
    harness.close_intake();
    let h = harness.clone();
    let summaries = run_threaded(pool, move |world| {
        world.set_timeout(Some(Duration::from_secs(300)));
        h.serve_pool(world)
    });
    for (r, s) in summaries.iter().enumerate() {
        assert_eq!(*s, summaries[0], "pool rank {r} diverged from rank 0");
    }
    (summaries[0].clone(), harness)
}

/// Asserts the zero-loss + bitwise-recovery acceptance invariants and the
/// deterministic Prometheus counters.
fn verify_campaign(c: &Campaign, s: &ServeSummary, harness: &ServeHarness) {
    let jobs = c.specs.len() as u64;
    let cancelled = c.cancels.len() as u64;

    // Zero lost jobs: every submitted job reached a deliberate terminal
    // state, and nothing failed or expired.
    assert!(s.all_accounted_for(), "some job is not terminal");
    assert_eq!(s.records.len(), c.specs.len());
    assert!(s.rejected.is_empty());
    assert_eq!(s.count(JobState::Failed), 0, "no job may exhaust its retry budget");
    assert_eq!(s.count(JobState::Expired), 0);
    assert_eq!(s.count(JobState::Cancelled), cancelled as usize);
    assert_eq!(s.count(JobState::Completed), (jobs - cancelled) as usize);

    // Every completed job — recovered or not — must be bitwise-equal to
    // its uninterrupted reference solve at its final gang size.
    let mut references: HashMap<u64, (u64, u64)> = HashMap::new();
    for rec in s.records.values() {
        if rec.state != JobState::Completed {
            continue;
        }
        let res = rec.result.expect("completed job without result");
        let sig = rec.spec.solve_signature(res.gang_size);
        let (ref_digest, ref_mm) = *references
            .entry(sig)
            .or_insert_with(|| reference_digest(&rec.spec, res.gang_size));
        assert_eq!(
            res.digest, ref_digest,
            "job {} (attempts {}, resumed {}) diverged from its reference",
            rec.spec.id, rec.attempts, res.resumed
        );
        assert_eq!(res.final_mismatch_bits, ref_mm, "job {} mismatch bits", rec.spec.id);
    }

    // Recovery accounting, exact and replicated.
    let resumed_jobs =
        s.records.values().filter(|r| r.result.is_some_and(|res| res.resumed)).count() as u64;
    assert_eq!(resumed_jobs, c.expect_resumes, "checkpoint-resume count");
    assert_eq!(harness.counter("serve_jobs_recovered_total"), c.expect_resumes);
    assert_eq!(harness.counter("serve_checkpoint_fallback_total"), c.expect_fallbacks);
    assert_eq!(
        harness.counter("serve_attempts_failed_total{reason=\"kill\"}"),
        c.expect_resumes + c.expect_fresh_kills
    );
    assert_eq!(
        harness.counter("serve_attempts_failed_total{reason=\"timeout\"}"),
        c.expect_timeouts
    );
    assert_eq!(
        harness.counter("serve_jobs_retried_total"),
        c.expect_resumes + c.expect_fresh_kills + c.expect_timeouts
    );
    assert_eq!(harness.counter("serve_jobs_submitted_total"), jobs);
    assert_eq!(harness.counter("serve_jobs_completed_total"), jobs - cancelled);
    assert_eq!(harness.counter("serve_jobs_cancelled_total"), cancelled);
    assert_eq!(harness.counter("serve_jobs_degraded_total"), 0);

    // Queue-latency quantiles are present in the deterministic export (the
    // values are wall-clock; the series and counts are schedule-exact).
    let prom = harness.render_prometheus();
    assert!(prom.contains("serve_queue_wait_seconds_p95"), "missing p95:\n{prom}");
    assert!(prom.contains("serve_queue_wait_seconds_p50"), "missing p50:\n{prom}");
    assert!(prom.contains("serve_queue_wait_seconds_p99"), "missing p99:\n{prom}");
    assert!(
        prom.contains(&format!("serve_queue_wait_seconds_count {}", jobs - cancelled)),
        "queue-wait count:\n{prom}"
    );
    assert!(
        prom.contains(&format!("serve_job_e2e_seconds_count {}", jobs - cancelled)),
        "e2e count:\n{prom}"
    );
}

/// Always-on small tier: 32 jobs of 8³ under the full fault mix, twice —
/// the second run must replay the first bit-for-bit (states, attempts,
/// digests, rounds).
#[test]
fn small_chaos_campaign_is_lossless_and_replays() {
    let c = build_campaign(32, 8, 4, 1500);
    let trace_dir = std::env::var("DIFFREG_SERVE_TRACE_DIR").ok();
    // Trace the checkpoint-resume drill job (slot 0) when asked to emit a
    // doctor bundle (CI release smoke).
    let trace_job = trace_dir.as_ref().map(|_| 1 as JobId);
    let (s1, h1) = run_campaign(&c, 4, 400, trace_job);
    verify_campaign(&c, &s1, &h1);

    if let Some(dir) = trace_dir {
        let gang = h1.write_traced_job_bundle(&dir).expect("trace bundle");
        assert!(gang > 0, "traced job produced no per-rank traces");
        eprintln!("serve trace bundle for job 1 ({gang} ranks) written to {dir}");
    }

    let (s2, h2) = run_campaign(&c, 4, 400, None);
    verify_campaign(&c, &s2, &h2);
    assert_eq!(s1, s2, "chaos campaign must replay deterministically");
}

/// The full acceptance campaign: ≥200 queued 32³ jobs on a 4-rank pool.
/// Run in release (`cargo test -p diffreg-serve --release --test load --
/// --ignored`); scale with `DIFFREG_SERVE_LOAD_JOBS` and
/// `DIFFREG_SERVE_LOAD_GRID`.
#[test]
#[ignore = "release-scale campaign; run explicitly or via scripts/ci.sh"]
fn full_load_200_jobs_on_4_rank_pool() {
    let jobs: usize = std::env::var("DIFFREG_SERVE_LOAD_JOBS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(200);
    let n: usize = std::env::var("DIFFREG_SERVE_LOAD_GRID")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(32);
    let c = build_campaign(jobs, n, 4, 900);
    let (s, h) = run_campaign(&c, 4, 300, None);
    verify_campaign(&c, &s, &h);
    eprintln!(
        "full load: {} jobs, {} rounds, {} resumed, {} fallbacks, {} timeouts",
        jobs, s.rounds, c.expect_resumes, c.expect_fallbacks, c.expect_timeouts
    );
}
