//! Live observability acceptance (ISSUE 10): a 4-rank serve pool with
//! `http_addr` set must answer `/healthz`, `/metrics` (parseable Prometheus
//! text including `serve_jobs_*` counters and SLO gauges), and `/jobs` (a
//! job table consistent with the final [`ServeSummary`]) **while jobs are
//! in flight**, and the run's digests must stay bitwise-identical to the
//! same seeded campaign with HTTP disabled.
//!
//! All probing goes through `std::net::TcpStream` — no curl, no HTTP
//! client crate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use diffreg_comm::run_threaded;
use diffreg_serve::{
    AttemptFaults, JobSpec, JobState, PlannedFaults, ServeConfig, ServeHarness, ServeSummary,
    SloPolicy,
};
use diffreg_telemetry::Json;

const JOBS: usize = 16;

/// The deterministic probe campaign: sixteen 8³ jobs over three tenants
/// with mixed gang sizes. Every first attempt stalls one rank for a bit at
/// an early collective epoch — timing-only chaos (far below the watchdog)
/// that stretches wall time enough for live HTTP probes without touching
/// results or the schedule.
fn build_specs() -> (Vec<JobSpec>, PlannedFaults) {
    let mut specs = Vec::with_capacity(JOBS);
    let mut faults = PlannedFaults::new();
    for i in 0..JOBS {
        let id = (i + 1) as u64;
        let tenant = ["neuro", "cardiac", "onco"][i % 3];
        let gang = [1usize, 2, 4, 2][i % 4];
        let spec = JobSpec::new(id, 8)
            .with_gang(gang)
            .with_newton_iters(1)
            .with_amplitude(0.3 + 0.05 * (i % 3) as f64)
            .with_tenant(tenant)
            .with_priority((i % 3) as u8);
        faults.insert(
            id,
            1,
            AttemptFaults { stall_at_epoch: Some((0, 2, 60)), ..AttemptFaults::none() },
        );
        specs.push(spec);
    }
    (specs, faults)
}

/// Minimal HTTP/1.1 GET over a raw `TcpStream`: returns `(status, headers,
/// body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    let req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head.to_string(), body.to_string())
}

/// Every non-comment Prometheus line must be `name[{labels}] value` with a
/// parseable finite value.
fn assert_prometheus_parseable(text: &str) {
    let mut series = 0usize;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(!name.is_empty(), "empty series name: {line}");
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in: {line}"));
        assert!(v.is_finite(), "non-finite value in: {line}");
        series += 1;
    }
    assert!(series > 0, "no series in exposition:\n{text}");
}

/// What the poller saw while the pool was live.
struct LiveObservations {
    /// A snapshot showed a completed job and a not-yet-finished job at once.
    saw_in_flight_mix: bool,
    /// Last successfully fetched `/jobs` body.
    last_jobs_body: String,
    /// Last successfully fetched `/metrics` body.
    last_metrics_body: String,
}

fn parse_jobs(body: &str) -> Vec<Json> {
    let doc = Json::parse(body).expect("parse /jobs");
    doc.get("jobs").and_then(|j| j.as_arr()).expect("jobs array").to_vec()
}

/// Waits for rank 0 to bind, then for the first round-boundary snapshot
/// (`/readyz` flips from 503 "warming up" to 200). Returns the bound addr.
fn wait_ready(harness: &ServeHarness, deadline: Instant) -> SocketAddr {
    let addr = loop {
        if let Some(a) = harness.http_addr() {
            break a;
        }
        assert!(Instant::now() < deadline, "http server never bound");
        std::thread::sleep(Duration::from_millis(2));
    };
    loop {
        let (status, _, _) = http_get(addr, "/readyz");
        if status == 200 {
            break addr;
        }
        assert_eq!(status, 503, "readyz must be 503 while warming up");
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs the campaign on a 4-rank pool. With `http` on, a poller thread on
/// the test side probes the live endpoints until it has seen jobs in
/// flight.
fn run_campaign(http: bool) -> (ServeSummary, ServeHarness, Option<LiveObservations>) {
    let (specs, faults) = build_specs();
    let cfg = ServeConfig {
        queue_capacity: JOBS + 4,
        watchdog: Some(Duration::from_secs(30)),
        slo: Some(SloPolicy::default()),
        http_addr: http.then(|| "127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    };
    let harness = ServeHarness::new(cfg, Arc::new(faults));
    for spec in &specs {
        harness.submit(spec.clone());
    }
    harness.close_intake();

    let h = harness.clone();
    let pool = std::thread::spawn(move || {
        let summaries = run_threaded(4, move |world| {
            world.set_timeout(Some(Duration::from_secs(300)));
            h.serve_pool(world)
        });
        for (r, s) in summaries.iter().enumerate() {
            assert_eq!(*s, summaries[0], "pool rank {r} diverged from rank 0");
        }
        summaries.into_iter().next().expect("rank 0 summary")
    });

    let obs = if http {
        // Wait for rank 0 to bind and publish, then probe live.
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = wait_ready(&harness, deadline);

        let (status, _, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "/healthz status");
        assert_eq!(body, "ok\n");

        let mut live = LiveObservations {
            saw_in_flight_mix: false,
            last_jobs_body: String::new(),
            last_metrics_body: String::new(),
        };
        // Poll /jobs until one snapshot shows completed work next to work
        // still in flight. Snapshots publish at every round boundary, and
        // the stall faults keep the pool busy for long enough that this
        // always lands while jobs are running.
        while Instant::now() < deadline {
            let (status, _, body) = http_get(addr, "/jobs");
            assert_eq!(status, 200, "/jobs status");
            let jobs = parse_jobs(&body);
            live.last_jobs_body = body;
            let done = jobs
                .iter()
                .filter(|j| j.get("state").and_then(Json::as_str) == Some("completed"))
                .count();
            let pending = jobs.len() - done;
            if done > 0 && pending > 0 {
                live.saw_in_flight_mix = true;
                let (status, _, metrics) = http_get(addr, "/metrics");
                assert_eq!(status, 200, "/metrics status");
                live.last_metrics_body = metrics;
                break;
            }
            if done == jobs.len() && !jobs.is_empty() {
                break; // pool drained before we caught the mix
            }
            std::thread::sleep(Duration::from_millis(3));
        }
        Some(live)
    } else {
        assert!(harness.http_addr().is_none(), "no server without http_addr");
        None
    };

    let summary = pool.join().expect("pool thread");
    (summary, harness, obs)
}

#[test]
fn live_endpoints_answer_while_jobs_run_and_never_perturb_digests() {
    let (s_http, harness, obs) = run_campaign(true);
    let obs = obs.expect("observations");

    // The probe caught the pool mid-campaign.
    assert!(
        obs.saw_in_flight_mix,
        "never observed completed + in-flight jobs in one snapshot; last /jobs:\n{}",
        obs.last_jobs_body
    );

    // Live /metrics was parseable Prometheus text with the serve counters
    // and the per-tenant SLO gauges.
    assert_prometheus_parseable(&obs.last_metrics_body);
    assert!(
        obs.last_metrics_body.contains("serve_jobs_submitted_total"),
        "missing serve_jobs_* counters:\n{}",
        obs.last_metrics_body
    );
    assert!(
        obs.last_metrics_body.contains("diffreg_slo_burn_milli{tenant=\""),
        "missing SLO gauges:\n{}",
        obs.last_metrics_body
    );

    // All jobs completed (stalls sit far below the watchdog).
    assert!(s_http.all_accounted_for());
    assert_eq!(s_http.count(JobState::Completed), JOBS);
    assert!(s_http.rejected.is_empty());

    // The final published snapshot agrees with the final ServeSummary:
    // same jobs, same states, and completed digests byte-equal to the
    // summary's results (hex projection dodges f64 precision loss).
    let snap = harness.observability();
    assert!(snap.ready, "final snapshot must be ready");
    let jobs = parse_jobs(&snap.jobs_json);
    assert_eq!(jobs.len(), s_http.records.len(), "snapshot job count");
    for j in &jobs {
        let id = j.get("id").and_then(Json::as_f64).expect("job id") as u64;
        let rec = s_http.records.get(&id).expect("job in summary");
        assert_eq!(
            j.get("state").and_then(Json::as_str),
            Some("completed"),
            "job {id} state in final snapshot"
        );
        assert_eq!(rec.state, JobState::Completed);
        let res = rec.result.expect("completed job without result");
        assert_eq!(
            j.get("digest").and_then(Json::as_str),
            Some(format!("{:016x}", res.digest).as_str()),
            "job {id} digest mismatch between snapshot and summary"
        );
        assert_eq!(
            j.get("tenant").and_then(Json::as_str),
            Some(rec.spec.tenant.as_str()),
            "job {id} tenant"
        );
    }

    // Final snapshot's other panes are well-formed too.
    assert_prometheus_parseable(&snap.metrics_text);
    Json::parse(&snap.slo_json).expect("final slo json");
    Json::parse(&snap.incidents_json).expect("final incidents json");
    assert!(
        snap.profile_folded.lines().last().is_some_and(|l| l.starts_with("[dropped] ")),
        "profile trailer:\n{}",
        snap.profile_folded
    );
    for line in snap.profile_folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        assert!(weight.parse::<u64>().is_ok(), "bad weight in: {line}");
    }

    // Digest parity: the identical seeded campaign with HTTP disabled must
    // produce a bitwise-identical summary (states, attempts, digests,
    // rounds, SLO digest).
    let (s_off, _, _) = run_campaign(false);
    assert_eq!(s_http, s_off, "serving live endpoints perturbed the campaign");
}

#[test]
fn endpoint_surface_is_read_only_and_bounded() {
    let (specs, faults) = build_specs();
    let cfg = ServeConfig {
        queue_capacity: JOBS + 4,
        watchdog: Some(Duration::from_secs(30)),
        slo: Some(SloPolicy::default()),
        http_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    };
    let harness = ServeHarness::new(cfg, Arc::new(faults));
    for spec in specs.into_iter().take(4) {
        harness.submit(spec);
    }
    harness.close_intake();
    let h = harness.clone();
    let pool = std::thread::spawn(move || {
        run_threaded(4, move |world| {
            world.set_timeout(Some(Duration::from_secs(300)));
            h.serve_pool(world)
        })
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = wait_ready(&harness, deadline);

    // Unknown paths 404; the rest of the read-only contract (405 on
    // writes, warm-up 503) is pinned by the unit tests in `http.rs`.
    let (status, _, _) = http_get(addr, "/admin");
    assert_eq!(status, 404);
    let (status, head, _) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase().contains("content-length:"),
        "responses must be bounded:\n{head}"
    );
    let (status, _, _) = http_get(addr, "/readyz");
    assert_eq!(status, 200, "pool is live, readyz must be ready");

    pool.join().expect("pool thread");
}
