//! Serving-runtime semantics: admission control, priorities, cancellation,
//! deterministic backoff/retry, timeout containment, graceful degradation,
//! and bitwise checkpoint recovery — each exercised on a real 4-rank pool
//! with real (small) registration solves.

use std::sync::Arc;
use std::time::Duration;

use diffreg_comm::run_threaded;
use diffreg_serve::{
    attempt_epoch_count, reference_digest, AttemptFaults, JobSpec, JobState, NoFaults,
    PlannedFaults, ServeConfig, ServeHarness, ServeSummary,
};

/// A job small enough that a 4-rank debug-mode pool chews through dozens.
fn quick_job(id: u64, gang: usize) -> JobSpec {
    JobSpec::new(id, 8).with_gang(gang).with_newton_iters(1)
}

fn serve(harness: &ServeHarness, pool: usize) -> Vec<ServeSummary> {
    let h = harness.clone();
    run_threaded(pool, move |world| {
        world.set_timeout(Some(Duration::from_secs(120)));
        h.serve_pool(world)
    })
}

#[test]
fn admission_control_rejects_past_capacity_and_all_ranks_agree() {
    let cfg = ServeConfig { queue_capacity: 2, ..ServeConfig::default() };
    let harness = ServeHarness::new(cfg, Arc::new(NoFaults));
    for id in 1..=4 {
        harness.submit(quick_job(id, 1));
    }
    harness.close_intake();
    let summaries = serve(&harness, 2);

    assert_eq!(summaries[0], summaries[1], "pool ranks diverged");
    let s = &summaries[0];
    assert_eq!(s.rejected, vec![3, 4], "admission must reject in intake order past capacity");
    assert_eq!(s.count(JobState::Completed), 2);
    assert_eq!(harness.counter("serve_jobs_submitted_total"), 4);
    assert_eq!(harness.counter("serve_jobs_rejected_total"), 2);
    assert_eq!(harness.counter("serve_jobs_completed_total"), 2);
    assert!(s.all_accounted_for());
}

#[test]
fn duplicate_job_ids_are_rejected() {
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(NoFaults));
    harness.submit(quick_job(7, 1));
    harness.submit(quick_job(7, 1));
    harness.close_intake();
    let summaries = serve(&harness, 2);
    assert_eq!(summaries[0].rejected, vec![7]);
    assert_eq!(summaries[0].count(JobState::Completed), 1);
}

#[test]
fn priorities_order_the_first_round() {
    // Four 2-rank jobs on a 2-rank pool: only one runs per round, so the
    // start order is the priority order (ties broken FIFO).
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(NoFaults));
    harness.submit(quick_job(1, 2).with_priority(0));
    harness.submit(quick_job(2, 2).with_priority(9));
    harness.submit(quick_job(3, 2).with_priority(5));
    harness.submit(quick_job(4, 2).with_priority(5));
    harness.close_intake();
    let summaries = serve(&harness, 2);
    let s = &summaries[0];
    let start = |id: u64| s.records[&id].first_start_round.unwrap();
    assert!(start(2) < start(3), "priority 9 before priority 5");
    assert!(start(3) < start(4), "equal priority: FIFO by submission");
    assert!(start(4) < start(1), "priority 0 last");
    assert_eq!(s.count(JobState::Completed), 4);
}

#[test]
fn cancelling_a_queued_job_prevents_any_attempt() {
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(NoFaults));
    harness.submit(quick_job(1, 2));
    harness.submit(quick_job(2, 2));
    harness.cancel(2); // same intake round as the submission: dies queued
    harness.close_intake();
    let summaries = serve(&harness, 2);
    let s = &summaries[0];
    assert_eq!(s.records[&2].state, JobState::Cancelled);
    assert_eq!(s.records[&2].attempts, 0, "cancelled before any gang was carved");
    assert_eq!(s.records[&1].state, JobState::Completed);
    assert_eq!(harness.counter("serve_jobs_cancelled_total"), 1);
}

#[test]
fn injected_kill_is_retried_and_the_whole_campaign_replays_bitwise() {
    let run = || {
        let faults = PlannedFaults::new().with(
            1,
            1,
            AttemptFaults { kill_at_epoch: Some((0, 3)), ..AttemptFaults::none() },
        );
        let harness = ServeHarness::new(ServeConfig::default(), Arc::new(faults));
        harness.submit(quick_job(1, 2));
        harness.submit(quick_job(2, 2));
        harness.close_intake();
        let summaries = serve(&harness, 2);
        (
            summaries,
            harness.counter("serve_jobs_retried_total"),
            harness.counter("serve_attempts_failed_total{reason=\"kill\"}"),
        )
    };
    let (a, retried_a, kills_a) = run();
    assert_eq!(a[0], a[1], "pool ranks diverged");
    let rec = &a[0].records[&1];
    assert_eq!(rec.state, JobState::Completed);
    assert_eq!(rec.attempts, 2, "one killed attempt, one clean retry");
    assert_eq!(rec.last_failure.as_deref(), Some("kill"));
    assert_eq!(retried_a, 1);
    assert_eq!(kills_a, 1);
    // The victim's result is still bitwise the uninterrupted reference.
    let job1 = quick_job(1, 2);
    let (ref_digest, ref_mm) = reference_digest(&job1, 2);
    let res = rec.result.unwrap();
    assert_eq!(res.digest, ref_digest, "retried job diverged from its reference solve");
    assert_eq!(res.final_mismatch_bits, ref_mm);

    // Same plan, fresh deployment: the campaign replays identically —
    // rounds, states, attempts, digests.
    let (b, retried_b, kills_b) = run();
    assert_eq!(a[0], b[0], "campaign did not replay deterministically");
    assert_eq!((retried_a, kills_a), (retried_b, kills_b));
}

#[test]
fn stall_past_the_watchdog_is_a_contained_timeout_and_recovers() {
    let faults = PlannedFaults::new().with(
        1,
        1,
        AttemptFaults { stall_at_epoch: Some((1, 3, 3_000)), ..AttemptFaults::none() },
    );
    let cfg = ServeConfig { watchdog: Some(Duration::from_millis(300)), ..ServeConfig::default() };
    let harness = ServeHarness::new(cfg, Arc::new(faults));
    harness.submit(quick_job(1, 2));
    harness.close_intake();
    let summaries = serve(&harness, 2);
    let rec = &summaries[0].records[&1];
    assert_eq!(rec.state, JobState::Completed);
    assert_eq!(rec.attempts, 2);
    assert_eq!(rec.last_failure.as_deref(), Some("timeout"));
    assert_eq!(harness.counter("serve_attempts_failed_total{reason=\"timeout\"}"), 1);
}

#[test]
fn repeated_fresh_kills_degrade_the_gang_and_still_deliver() {
    // Kill the first two attempts of an uncheckpointed 4-rank job; with
    // degrade_after = 2 the gang halves to 2 after the second death, and
    // the final result must match the reference AT THE DEGRADED SIZE.
    let faults = PlannedFaults::new()
        .with(1, 1, AttemptFaults { kill_at_epoch: Some((2, 4)), ..AttemptFaults::none() })
        .with(1, 2, AttemptFaults { kill_at_epoch: Some((0, 4)), ..AttemptFaults::none() });
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(faults));
    harness.submit(quick_job(1, 4));
    harness.close_intake();
    let summaries = serve(&harness, 4);
    assert_eq!(summaries[0], summaries[3], "pool ranks diverged");
    let rec = &summaries[0].records[&1];
    assert_eq!(rec.state, JobState::Completed);
    assert_eq!(rec.attempts, 3);
    assert_eq!(rec.gang_size, 2, "gang must halve after two fresh deaths");
    let res = rec.result.unwrap();
    assert_eq!(res.gang_size, 2);
    let (ref_digest, _) = reference_digest(&quick_job(1, 4), 2);
    assert_eq!(res.digest, ref_digest, "degraded job must match the reference at gang size 2");
    assert_eq!(harness.counter("serve_jobs_degraded_total"), 1);
}

#[test]
fn deadline_expires_a_job_stuck_in_retry() {
    // Every attempt is killed; a 3-round deadline expires the job long
    // before the 5-attempt retry budget would.
    let mut faults = PlannedFaults::new();
    for attempt in 1..=6 {
        faults.insert(
            1,
            attempt,
            AttemptFaults { kill_at_epoch: Some((0, 2)), ..AttemptFaults::none() },
        );
    }
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(faults));
    harness.submit(quick_job(1, 2).with_max_retries(5).with_deadline_rounds(3));
    harness.close_intake();
    let summaries = serve(&harness, 2);
    let rec = &summaries[0].records[&1];
    assert_eq!(rec.state, JobState::Expired);
    assert!(rec.attempts < 6, "deadline must cut the retry loop short");
    assert_eq!(harness.counter("serve_jobs_expired_total"), 1);
}

#[test]
fn exhausted_retry_budget_marks_the_job_failed_not_lost() {
    let mut faults = PlannedFaults::new();
    for attempt in 1..=3 {
        faults.insert(
            1,
            attempt,
            AttemptFaults { kill_at_epoch: Some((0, 2)), ..AttemptFaults::none() },
        );
    }
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(faults));
    harness.submit(quick_job(1, 2).with_max_retries(2));
    harness.close_intake();
    let summaries = serve(&harness, 2);
    let rec = &summaries[0].records[&1];
    assert_eq!(rec.state, JobState::Failed);
    assert_eq!(rec.attempts, 3, "initial attempt plus two retries");
    assert_eq!(harness.counter("serve_jobs_failed_total"), 1);
    assert!(summaries[0].all_accounted_for());
}

#[test]
fn killed_checkpointed_job_resumes_bitwise_and_streams_progress() {
    // Two continuation levels with per-iteration checkpoints; the kill
    // lands at ~70% of the attempt's collective epochs — inside level 1,
    // after checkpoints exist. The retry must RESUME (not restart), and
    // the delivered digest must equal the uninterrupted reference.
    let spec = JobSpec::new(1, 8)
        .with_gang(2)
        .with_newton_iters(1)
        .with_betas(&[1e-2, 1e-3])
        .with_checkpoint_every(1);
    let epochs = attempt_epoch_count(&spec, 2);
    let kill_epoch = epochs * 7 / 10;
    let faults = PlannedFaults::new().with(
        1,
        1,
        AttemptFaults { kill_at_epoch: Some((1, kill_epoch)), ..AttemptFaults::none() },
    );
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(faults));
    harness.submit(spec.clone());
    harness.close_intake();
    let summaries = serve(&harness, 2);
    let rec = &summaries[0].records[&1];
    assert_eq!(rec.state, JobState::Completed);
    assert_eq!(rec.attempts, 2);
    assert_eq!(rec.resumed_attempts, 1, "retry must resume from the checkpoint");
    let res = rec.result.unwrap();
    assert!(res.resumed);
    let (ref_digest, ref_mm) = reference_digest(&spec, 2);
    assert_eq!(res.digest, ref_digest, "resumed solve must be bitwise the uninterrupted one");
    assert_eq!(res.final_mismatch_bits, ref_mm);
    assert_eq!(harness.counter("serve_jobs_recovered_total"), 1);

    // Progress streamed from both attempts; the convergence log carries the
    // serve-side resume event.
    let progress = harness.progress();
    assert!(progress.iter().any(|p| p.job == 1 && p.attempt == 1));
    assert!(progress.iter().any(|p| p.job == 1 && p.attempt == 2));
    let log = harness.job_log(1).expect("job log");
    assert!(log.events().any(|e| e.kind == "serve-resume"), "log must record the resume");
}

#[test]
fn torn_checkpoint_falls_back_a_generation_and_still_matches_reference() {
    // Attempt 1 is killed mid-level-1 (several checkpoint generations
    // exist); attempt 2 finds its current generation torn on every rank and
    // must fall back to the previous one — still bitwise-correct.
    let spec = JobSpec::new(1, 8)
        .with_gang(2)
        .with_newton_iters(2)
        .with_betas(&[1e-2, 1e-3])
        .with_checkpoint_every(1);
    let epochs = attempt_epoch_count(&spec, 2);
    let faults = PlannedFaults::new()
        .with(
            1,
            1,
            AttemptFaults {
                kill_at_epoch: Some((0, epochs * 7 / 10)),
                ..AttemptFaults::none()
            },
        )
        .with(1, 2, AttemptFaults { corrupt_checkpoint: true, ..AttemptFaults::none() });
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(faults));
    harness.submit(spec.clone());
    harness.close_intake();
    let summaries = serve(&harness, 2);
    let rec = &summaries[0].records[&1];
    assert_eq!(rec.state, JobState::Completed);
    assert_eq!(rec.fallbacks, 1, "attempt 2 must have used the previous generation");
    assert_eq!(rec.resumed_attempts, 1);
    let (ref_digest, _) = reference_digest(&spec, 2);
    assert_eq!(rec.result.unwrap().digest, ref_digest);
    assert_eq!(harness.counter("serve_checkpoint_fallback_total"), 1);
    let log = harness.job_log(1).expect("job log");
    assert!(log.events().any(|e| e.kind == "serve-fallback"));
}

#[test]
fn two_tenants_share_the_pool_and_metrics_render_deterministically() {
    let harness = ServeHarness::new(ServeConfig::default(), Arc::new(NoFaults));
    for i in 0..3 {
        harness.submit(quick_job(10 + i, 1).with_tenant("alice"));
        harness.submit(quick_job(20 + i, 1).with_tenant("bob"));
    }
    harness.close_intake();
    let summaries = serve(&harness, 2);
    assert_eq!(summaries[0].count(JobState::Completed), 6);
    let prom = harness.render_prometheus();
    assert!(prom.contains("serve_jobs_completed_total 6"), "{prom}");
    assert!(prom.contains("serve_queue_wait_seconds_p95"), "{prom}");
    assert!(prom.contains("serve_job_e2e_seconds_count 6"), "{prom}");
    assert!(prom.contains("serve_pool_ranks 2"), "{prom}");
}
