//! Per-attempt fault plans for chaos drills against the serving runtime.
//!
//! The runtime asks its [`FaultInjector`] what to do to each `(job,
//! attempt)` pair and wires the answer into a [`ChaosComm`] wrapped around
//! the gang communicator (plus an optional checkpoint-corruption drill).
//! Injectors are pure functions of `(job, attempt)`, so a campaign replays
//! bit-identically: the same plan produces the same kills at the same
//! collective epochs in the same gangs.
//!
//! [`ChaosComm`]: diffreg_comm::ChaosComm

use std::collections::HashMap;

use diffreg_testkit::Rng;

use crate::job::JobId;

/// The faults to inject into one attempt of one job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttemptFaults {
    /// Kill this gang rank at this 1-based collective epoch.
    pub kill_at_epoch: Option<(usize, u64)>,
    /// Stall this gang rank for `ms` at this collective epoch:
    /// `(rank, epoch, ms)`. With a stall far longer than the runtime's
    /// watchdog this deterministically produces a timeout-class failure.
    pub stall_at_epoch: Option<(usize, u64, u64)>,
    /// Seeded random latency `(probability, max_us)` on every operation —
    /// timing-only chaos that must never change results.
    pub latency: Option<(f64, u64)>,
    /// Tear every gang rank's current checkpoint generation before the
    /// attempt starts (torn-write drill; resume must fall back to the
    /// previous generation or restart fresh, never crash or diverge).
    pub corrupt_checkpoint: bool,
    /// Seed for the chaos schedule.
    pub seed: u64,
}

impl AttemptFaults {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the attempt runs completely clean.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Decides the faults for each `(job, attempt)`. Must be pure: the runtime
/// may ask from any pool rank and all ranks must hear the same answer.
pub trait FaultInjector: Send + Sync {
    /// The fault plan for `attempt` (1-based) of `job`.
    fn faults(&self, job: JobId, attempt: u32) -> AttemptFaults;
}

/// Injects nothing — production mode.
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn faults(&self, _job: JobId, _attempt: u32) -> AttemptFaults {
        AttemptFaults::none()
    }
}

/// An explicit per-(job, attempt) plan — the load test's precision tool.
#[derive(Default)]
pub struct PlannedFaults {
    plan: HashMap<(JobId, u32), AttemptFaults>,
}

impl PlannedFaults {
    /// An empty plan (every attempt clean).
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans `faults` for `attempt` (1-based) of `job`.
    pub fn insert(&mut self, job: JobId, attempt: u32, faults: AttemptFaults) {
        self.plan.insert((job, attempt), faults);
    }

    /// Builder-style [`insert`](Self::insert).
    pub fn with(mut self, job: JobId, attempt: u32, faults: AttemptFaults) -> Self {
        self.insert(job, attempt, faults);
        self
    }
}

impl FaultInjector for PlannedFaults {
    fn faults(&self, job: JobId, attempt: u32) -> AttemptFaults {
        self.plan.get(&(job, attempt)).cloned().unwrap_or_default()
    }
}

/// Seeded probabilistic campaign chaos: each job's *first* attempt draws
/// kill / stall / corruption faults from a per-job RNG stream; retries run
/// clean, so every faulted job terminates within one retry. Deterministic —
/// the draw depends only on `(seed, job)`.
pub struct SeededFaults {
    /// Master seed.
    pub seed: u64,
    /// Probability the first attempt is killed mid-collective.
    pub kill_prob: f64,
    /// Probability the first attempt stalls past the watchdog.
    pub stall_prob: f64,
    /// Probability the job's checkpoint store is corrupted before its first
    /// attempt.
    pub corrupt_prob: f64,
    /// Kill/stall epochs are drawn from `1..=max_epoch`.
    pub max_epoch: u64,
    /// Stall duration (choose ≫ the runtime watchdog).
    pub stall_ms: u64,
    /// Faulted ranks are drawn from `0..gang_hint`.
    pub gang_hint: usize,
}

impl FaultInjector for SeededFaults {
    fn faults(&self, job: JobId, attempt: u32) -> AttemptFaults {
        if attempt > 1 {
            return AttemptFaults::none();
        }
        let mut rng = Rng::new(self.seed).fork(job);
        let kill = rng.chance(self.kill_prob);
        let stall = rng.chance(self.stall_prob);
        let corrupt = rng.chance(self.corrupt_prob);
        let rank = rng.index(self.gang_hint.max(1));
        let epoch = rng.index(self.max_epoch.max(1) as usize) as u64 + 1;
        AttemptFaults {
            kill_at_epoch: kill.then_some((rank, epoch)),
            stall_at_epoch: (!kill && stall).then_some((rank, epoch, self.stall_ms)),
            latency: None,
            corrupt_checkpoint: corrupt,
            seed: self.seed ^ job,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_faults_hit_only_their_slot() {
        let plan = PlannedFaults::new().with(
            3,
            1,
            AttemptFaults { kill_at_epoch: Some((0, 5)), ..AttemptFaults::none() },
        );
        assert_eq!(plan.faults(3, 1).kill_at_epoch, Some((0, 5)));
        assert!(plan.faults(3, 2).is_clean());
        assert!(plan.faults(4, 1).is_clean());
    }

    #[test]
    fn seeded_faults_replay_and_spare_retries() {
        let inj = SeededFaults {
            seed: 11,
            kill_prob: 0.5,
            stall_prob: 0.3,
            corrupt_prob: 0.2,
            max_epoch: 9,
            stall_ms: 1000,
            gang_hint: 4,
        };
        let mut faulted = 0;
        for job in 0..64 {
            let a = inj.faults(job, 1);
            assert_eq!(a, inj.faults(job, 1), "same (job, attempt) must replay");
            assert!(inj.faults(job, 2).is_clean(), "retries must run clean");
            assert!(
                !(a.kill_at_epoch.is_some() && a.stall_at_epoch.is_some()),
                "kill and stall are mutually exclusive"
            );
            if !a.is_clean() {
                faulted += 1;
            }
        }
        assert!(faulted > 10, "with these probabilities most jobs see some fault");
    }
}
