//! # diffreg-serve
//!
//! Registration-as-a-service: a fault-tolerant, multi-tenant job runtime
//! over the distributed registration solver.
//!
//! The paper's solver registers one image pair per MPI job. A shared
//! cluster deployment instead faces a *stream* of registration requests
//! from many tenants, and must keep serving through rank failures, torn
//! checkpoint writes, stalls, and cancellations. This crate provides that
//! layer on top of the simulated-MPI substrate:
//!
//! * **gang scheduling** — a deterministic, coordinator-free scheduler
//!   carves per-job communicator gangs out of the rank pool with
//!   `Comm::split` ([`scheduler`]), with admission control and fair-share
//!   priorities across tenants;
//! * **robustness state machine** — each job moves through
//!   queued → running → (backoff → running)\* → terminal states with
//!   bounded seeded-jitter retries, deadlines, cancellation, and graceful
//!   gang-size degradation ([`job`]);
//! * **containment + recovery** — attempts run under `run_gang`, so a rank
//!   killed mid-solve becomes a structured failure of that gang only; jobs
//!   with checkpoints resume *bitwise* identically to an uninterrupted
//!   solve, including torn-write fallback to the previous checkpoint
//!   generation ([`runtime`]);
//! * **observability** — per-job streamed iteration progress, convergence
//!   logs with serve-side events, a Prometheus-rendered dashboard of
//!   queue depth, retry/recovery counters, and latency histograms, and an
//!   opt-in read-only HTTP plane ([`http`]) serving metrics, the live job
//!   table, SLO state, incidents, and flamegraph snapshots from
//!   round-boundary snapshots.
//!
//! Chaos drills are first-class: a [`FaultInjector`] plans kills, stalls,
//! and checkpoint corruption per `(job, attempt)`, and the whole campaign
//! replays deterministically ([`faults`]).
//!
//! ```
//! use std::sync::Arc;
//! use diffreg_comm::run_threaded;
//! use diffreg_serve::{JobSpec, NoFaults, ServeConfig, ServeHarness};
//!
//! let harness = ServeHarness::new(ServeConfig::default(), Arc::new(NoFaults));
//! harness.submit(JobSpec::new(1, 8).with_gang(2).with_newton_iters(1));
//! harness.close_intake();
//! let h = harness.clone();
//! let summaries = run_threaded(2, move |world| h.serve_pool(world));
//! assert!(summaries[0].all_accounted_for());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod http;
pub mod incident;
pub mod job;
pub mod runtime;
pub mod scheduler;
pub mod slo;

pub use faults::{AttemptFaults, FaultInjector, NoFaults, PlannedFaults, SeededFaults};
pub use http::{HttpServer, ObsSnapshot};
pub use job::{JobId, JobRecord, JobResult, JobSpec, JobState, RetryPolicy};
pub use runtime::{
    attempt_epoch_count, reference_digest, synthetic_pair, ProgressEvent, ServeConfig,
    ServeHarness, ServeSummary,
};
pub use incident::IncidentRecord;
pub use scheduler::{plan_round, Assignment};
pub use slo::{burn_milli, AlertState, Objective, SloAlert, SloEngine, SloPolicy};
