//! Job specifications, the per-job robustness state machine, and the wire
//! format the pool uses to replicate intake across ranks.
//!
//! Every pool rank holds an identical copy of the job table; all mutations
//! derive from broadcast intake and allgathered attempt outcomes, so the
//! table (and every scheduling decision computed from it) is replicated
//! deterministically without a coordinator.

use diffreg_testkit::Rng;

/// Unique job identifier, assigned by the submitter.
pub type JobId = u64;

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub(crate) const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Folds one u64 into an FNV-1a accumulator, byte by byte.
pub(crate) fn fnv_fold_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// What one registration job asks of the pool: the synthetic problem to
/// solve, the gang size it wants, and its robustness envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique id (admission rejects duplicates).
    pub id: JobId,
    /// Tenant name for fair-share accounting.
    pub tenant: String,
    /// Cubic grid extent (the job registers an `n³` synthetic pair).
    pub grid_n: usize,
    /// Desired gang size (clamped to the pool size at planning).
    pub gang: usize,
    /// Scheduling priority: higher runs first.
    pub priority: u8,
    /// Amplitude of the synthetic velocity generating the reference image —
    /// the "input" that distinguishes one tenant's problem from another's.
    pub amplitude: f64,
    /// β-continuation schedule (non-increasing).
    pub betas: Vec<f64>,
    /// Outer Newton iterations per level.
    pub newton_iters: usize,
    /// Semi-Lagrangian time steps.
    pub nt: usize,
    /// Checkpoint every this many accepted Newton iterations (0 disables).
    pub checkpoint_every: usize,
    /// Retry budget: attempts beyond `1 + max_retries` mark the job Failed.
    pub max_retries: u32,
    /// Give up if the job has not finished within this many scheduler
    /// rounds of its submission.
    pub deadline_rounds: Option<u64>,
}

impl JobSpec {
    /// A small, fast job with sane robustness defaults.
    pub fn new(id: JobId, grid_n: usize) -> Self {
        Self {
            id,
            tenant: "default".to_string(),
            grid_n,
            gang: 2,
            priority: 0,
            amplitude: 0.3,
            betas: vec![1e-2],
            newton_iters: 2,
            nt: 2,
            checkpoint_every: 0,
            max_retries: 3,
            deadline_rounds: None,
        }
    }

    /// Sets the tenant for fair-share accounting.
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self
    }

    /// Sets the desired gang size.
    pub fn with_gang(mut self, gang: usize) -> Self {
        self.gang = gang;
        self
    }

    /// Sets the scheduling priority (higher runs first).
    pub fn with_priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    /// Sets the synthetic-input amplitude.
    pub fn with_amplitude(mut self, a: f64) -> Self {
        self.amplitude = a;
        self
    }

    /// Sets the β-continuation schedule.
    pub fn with_betas(mut self, betas: &[f64]) -> Self {
        self.betas = betas.to_vec();
        self
    }

    /// Sets outer Newton iterations per level.
    pub fn with_newton_iters(mut self, n: usize) -> Self {
        self.newton_iters = n;
        self
    }

    /// Sets the checkpoint cadence (accepted Newton iterations; 0 disables).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the deadline in scheduler rounds.
    pub fn with_deadline_rounds(mut self, rounds: u64) -> Self {
        self.deadline_rounds = Some(rounds);
        self
    }

    /// Content hash of everything that determines the *numerical result* of
    /// this job at a given gang size. Two jobs with equal signatures produce
    /// bitwise-identical transformations, so load tests dedupe their
    /// uninterrupted reference solves by this key. The gang size is part of
    /// the key: reduction order (and therefore bits) depends on the
    /// decomposition.
    pub fn solve_signature(&self, gang_size: usize) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_fold_u64(h, self.grid_n as u64);
        h = fnv_fold_u64(h, gang_size as u64);
        h = fnv_fold_u64(h, self.amplitude.to_bits());
        h = fnv_fold_u64(h, self.betas.len() as u64);
        for b in &self.betas {
            h = fnv_fold_u64(h, b.to_bits());
        }
        h = fnv_fold_u64(h, self.newton_iters as u64);
        h = fnv_fold_u64(h, self.nt as u64);
        h
    }
}

/// Where a job sits in its lifecycle. Terminal states are deliberate
/// outcomes — the runtime's zero-loss invariant is that every submitted job
/// ends `Completed`, `Cancelled`, `Expired`, or `Failed` (retry budget
/// exhausted), never silently disappears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a gang.
    Queued,
    /// A gang is executing an attempt right now.
    Running,
    /// A failed attempt is waiting out its backoff.
    Backoff {
        /// First round at which the job may be scheduled again.
        until_round: u64,
    },
    /// Finished successfully; the result digest is recorded.
    Completed,
    /// Cancelled by the submitter.
    Cancelled,
    /// Deadline passed before the job could finish.
    Expired,
    /// Retry budget exhausted.
    Failed,
}

impl JobState {
    /// True once the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Expired | JobState::Failed
        )
    }

    /// True while the job occupies a queue slot (admission control counts
    /// these against capacity).
    pub fn is_waiting(self) -> bool {
        matches!(self, JobState::Queued | JobState::Backoff { .. })
    }
}

/// The recorded outcome of a completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResult {
    /// FNV digest over the gang-rank-ordered velocity slabs plus the final
    /// mismatch bits — bitwise-comparable against a reference solve at the
    /// same gang size.
    pub digest: u64,
    /// `f64::to_bits` of the final mismatch.
    pub final_mismatch_bits: u64,
    /// Gang size that produced the result.
    pub gang_size: usize,
    /// 1-based attempt number that succeeded.
    pub attempt: u32,
    /// True when the successful attempt resumed from a checkpoint.
    pub resumed: bool,
}

/// Replicated per-job scheduler state (identical on every pool rank).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Current gang size — starts at `min(spec.gang, pool)` and halves under
    /// graceful degradation.
    pub gang_size: usize,
    /// Attempts started so far.
    pub attempts: u32,
    /// Attempts that resumed from a checkpoint.
    pub resumed_attempts: u32,
    /// Successful attempts whose resume fell back to the previous
    /// checkpoint generation (torn-write recovery).
    pub fallbacks: u32,
    /// Round the job was admitted.
    pub submit_round: u64,
    /// Round of the first attempt, once scheduled.
    pub first_start_round: Option<u64>,
    /// Round the job reached a terminal state.
    pub finish_round: Option<u64>,
    /// Cancellation arrived while an attempt was in flight; applied at the
    /// attempt boundary.
    pub cancel_requested: bool,
    /// The result, once `Completed`.
    pub result: Option<JobResult>,
    /// Reason string of the most recent failed attempt.
    pub last_failure: Option<String>,
}

impl JobRecord {
    /// A freshly admitted job.
    pub fn new(spec: JobSpec, round: u64, pool: usize) -> Self {
        let gang_size = spec.gang.clamp(1, pool);
        Self {
            spec,
            state: JobState::Queued,
            gang_size,
            attempts: 0,
            resumed_attempts: 0,
            fallbacks: 0,
            submit_round: round,
            first_start_round: None,
            finish_round: None,
            cancel_requested: false,
            result: None,
            last_failure: None,
        }
    }
}

/// Bounded exponential backoff with seeded jitter, measured in scheduler
/// rounds so every pool rank computes the identical delay.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Delay after the first failure, in rounds.
    pub base_rounds: u64,
    /// Cap on the exponential delay.
    pub cap_rounds: u64,
    /// Maximum extra jitter rounds (inclusive).
    pub jitter_rounds: u64,
    /// Seed for the per-(job, attempt) jitter draw.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { base_rounds: 1, cap_rounds: 8, jitter_rounds: 2, seed: 0x5e12e }
    }
}

impl RetryPolicy {
    /// Backoff after `attempt` (1-based) failures of `job`:
    /// `min(base·2^(attempt−1), cap) + jitter(job, attempt)`. Pure —
    /// identical on every rank.
    pub fn backoff_rounds(&self, job: JobId, attempt: u32) -> u64 {
        let exp = self
            .base_rounds
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(20))
            .min(self.cap_rounds);
        let mut rng = Rng::new(self.seed).fork(job).fork(u64::from(attempt));
        let jitter = rng.index(self.jitter_rounds as usize + 1) as u64;
        (exp + jitter).max(1)
    }
}

// ---------------------------------------------------------------------------
// Intake wire format: rank 0 drains the submission/cancel inboxes and
// broadcasts one byte blob per round; every rank decodes the identical
// intake and applies it to its table copy.
// ---------------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.at..self.at + 8]);
        self.at += 8;
        u64::from_le_bytes(b)
    }

    fn str(&mut self) -> String {
        let n = self.u64() as usize;
        let s = String::from_utf8_lossy(&self.buf[self.at..self.at + n]).into_owned();
        self.at += n;
        s
    }
}

fn encode_spec(out: &mut Vec<u8>, s: &JobSpec) {
    push_u64(out, s.id);
    push_str(out, &s.tenant);
    push_u64(out, s.grid_n as u64);
    push_u64(out, s.gang as u64);
    push_u64(out, u64::from(s.priority));
    push_u64(out, s.amplitude.to_bits());
    push_u64(out, s.betas.len() as u64);
    for b in &s.betas {
        push_u64(out, b.to_bits());
    }
    push_u64(out, s.newton_iters as u64);
    push_u64(out, s.nt as u64);
    push_u64(out, s.checkpoint_every as u64);
    push_u64(out, u64::from(s.max_retries));
    match s.deadline_rounds {
        Some(d) => {
            push_u64(out, 1);
            push_u64(out, d);
        }
        None => push_u64(out, 0),
    }
}

fn decode_spec(r: &mut Reader<'_>) -> JobSpec {
    let id = r.u64();
    let tenant = r.str();
    let grid_n = r.u64() as usize;
    let gang = r.u64() as usize;
    let priority = r.u64() as u8;
    let amplitude = f64::from_bits(r.u64());
    let nb = r.u64() as usize;
    let betas: Vec<f64> = (0..nb).map(|_| f64::from_bits(r.u64())).collect();
    let newton_iters = r.u64() as usize;
    let nt = r.u64() as usize;
    let checkpoint_every = r.u64() as usize;
    let max_retries = r.u64() as u32;
    let deadline_rounds = if r.u64() == 1 { Some(r.u64()) } else { None };
    JobSpec {
        id,
        tenant,
        grid_n,
        gang,
        priority,
        amplitude,
        betas,
        newton_iters,
        nt,
        checkpoint_every,
        max_retries,
        deadline_rounds,
    }
}

/// Serializes one round of intake (submissions, cancellations, whether the
/// intake is still open) for broadcast.
pub(crate) fn encode_intake(specs: &[JobSpec], cancels: &[JobId], open: bool) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, u64::from(open));
    push_u64(&mut out, specs.len() as u64);
    for s in specs {
        encode_spec(&mut out, s);
    }
    push_u64(&mut out, cancels.len() as u64);
    for c in cancels {
        push_u64(&mut out, *c);
    }
    out
}

/// Inverse of [`encode_intake`].
pub(crate) fn decode_intake(buf: &[u8]) -> (Vec<JobSpec>, Vec<JobId>, bool) {
    let mut r = Reader { buf, at: 0 };
    let open = r.u64() == 1;
    let ns = r.u64() as usize;
    let specs: Vec<JobSpec> = (0..ns).map(|_| decode_spec(&mut r)).collect();
    let nc = r.u64() as usize;
    let cancels: Vec<JobId> = (0..nc).map(|_| r.u64()).collect();
    (specs, cancels, open)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intake_round_trips_through_the_wire() {
        let specs = vec![
            JobSpec::new(7, 16)
                .with_tenant("radiology")
                .with_gang(4)
                .with_priority(3)
                .with_betas(&[1e-2, 1e-3])
                .with_checkpoint_every(1)
                .with_deadline_rounds(40),
            JobSpec::new(8, 32).with_amplitude(0.55),
        ];
        let cancels = vec![3, 9];
        let wire = encode_intake(&specs, &cancels, true);
        let (s2, c2, open) = decode_intake(&wire);
        assert_eq!(s2, specs);
        assert_eq!(c2, cancels);
        assert!(open);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy::default();
        let a = p.backoff_rounds(42, 1);
        assert_eq!(a, p.backoff_rounds(42, 1), "same (job, attempt) must agree");
        for attempt in 1..8 {
            let d = p.backoff_rounds(42, attempt);
            assert!(d >= 1 && d <= p.cap_rounds + p.jitter_rounds, "delay {d} out of bounds");
        }
        // The exponential part dominates: attempt 4's floor exceeds
        // attempt 1's ceiling.
        assert!(p.backoff_rounds(7, 4) >= 4);
    }

    #[test]
    fn solve_signature_keys_on_inputs_and_gang_size() {
        let a = JobSpec::new(1, 16).with_amplitude(0.3);
        let b = JobSpec::new(2, 16).with_amplitude(0.3); // different id, same problem
        let c = JobSpec::new(3, 16).with_amplitude(0.4);
        assert_eq!(a.solve_signature(4), b.solve_signature(4));
        assert_ne!(a.solve_signature(4), c.solve_signature(4));
        assert_ne!(a.solve_signature(4), a.solve_signature(2), "gang size changes the bits");
        // Robustness knobs (retries, deadline, checkpoint cadence) must NOT
        // change the numerical signature.
        let d = JobSpec::new(4, 16).with_amplitude(0.3).with_checkpoint_every(1).with_max_retries(9);
        assert_eq!(a.solve_signature(4), d.solve_signature(4));
    }
}
