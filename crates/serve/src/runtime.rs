//! The SPMD serving loop: a shared rank pool that multiplexes many
//! concurrent registration jobs, contains their failures, and recovers them
//! from checkpoints.
//!
//! ## Architecture
//!
//! [`ServeHarness::serve_pool`] runs on **every** pool rank (inside
//! `run_threaded`). The scheduler has no coordinator: each rank holds an
//! identical replica of the job table and advances it in lock-step rounds:
//!
//! 1. **intake** — rank 0 drains the submission/cancel inboxes and
//!    broadcasts one blob; every rank applies the identical admissions
//!    (with capacity-based rejection), cancellations, backoff releases, and
//!    deadline sweeps;
//! 2. **plan** — every rank evaluates the pure
//!    [`plan_round`](crate::scheduler::plan_round) packing on its replica
//!    and obtains the identical gang layout;
//! 3. **split + execute** — the layout is the `Comm::split` coloring; each
//!    gang runs one job attempt under [`run_gang`] containment, wrapped in
//!    a [`ChaosComm`] carrying the attempt's planned faults. A rank killed
//!    inside a gang unwinds into a structured failure; the pool rank
//!    survives and rejoins the world;
//! 4. **outcome allgather + fold** — every rank hears every gang member's
//!    report and folds the identical state transition: complete, cancel,
//!    expire, fail (budget exhausted), or back off and retry — resuming
//!    from the job's checkpoint when one exists, degrading the gang size
//!    when fresh restarts keep dying.
//!
//! Because every state transition derives from broadcast or allgathered
//! data, replicas can never diverge — and the whole campaign replays
//! bit-identically under a fixed fault plan.
//!
//! ## Checkpoint recovery
//!
//! Jobs with `checkpoint_every > 0` write per-gang-rank checkpoints through
//! `diffreg-core`'s two-generation [`CheckpointStore`]. On retry the gang
//! first *agrees* on the resume point: each member loads its slot with
//! validated fallback and the gang allreduces a fingerprint of
//! `(level, completed_iters)`. If members disagree (torn generations, a
//! stale slot from a larger gang), every member drops its checkpoint and
//! the attempt restarts fresh — a consistent restart is always preferred
//! over an inconsistent resume. A consistent resume is *bitwise* identical
//! to an uninterrupted solve (the PR 2 contract), which the load test
//! verifies digest-for-digest.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use diffreg_comm::{
    run_gang, run_threaded, ChaosComm, ChaosConfig, Comm, CommEvent, ThreadComm, Timers,
};
use diffreg_core::{
    register_with_continuation_checkpointed_hooked, CheckpointStore, RegistrationConfig,
};
use diffreg_grid::{Decomp, Grid, ScalarField, VectorField};
use diffreg_optim::{NewtonCursor, NewtonOptions};
use diffreg_pfft::PencilFft;
use diffreg_telemetry::doctor::write_trace_bundle;
use diffreg_telemetry::incident::{write_incident_bundle, IncidentHeader, RankCapture};
use diffreg_telemetry::{
    record_comm_summary, record_event, set_trace_enabled, snapshot_recorder, span, take_recorder,
    take_thread_trace, ConvergenceLog, IterRecord, Json, MetricsRegistry, Profile, RecKind,
    StreamEntry, ThreadTrace,
};
use diffreg_transport::{SemiLagrangian, Workspace};

use crate::faults::{AttemptFaults, FaultInjector};
use crate::http::{HttpServer, ObsSlot, ObsSnapshot};
use crate::incident::{failure_trigger, CaptureStage, IncidentRecord, IncidentTrigger};
use crate::job::{
    decode_intake, encode_intake, fnv_fold_u64, JobId, JobRecord, JobResult, JobSpec, JobState,
    RetryPolicy, FNV_OFFSET,
};
use crate::scheduler::{plan_round, Assignment};
use crate::slo::{AlertState, SloEngine, SloPolicy};

/// Locks a mutex, riding through poisoning (a contained gang kill may have
/// unwound while holding a side-store lock; the data is still consistent —
/// each protected value is only ever appended to or overwritten whole).
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission control: jobs beyond this many waiting (queued + backed
    /// off) are rejected at intake.
    pub queue_capacity: usize,
    /// Retry backoff policy (rounds).
    pub retry: RetryPolicy,
    /// Graceful degradation: once a job has failed this many attempts
    /// without ever resuming from a checkpoint, halve its gang size.
    pub degrade_after: u32,
    /// Gang watchdog — turns a stalled or orphaned gang collective into a
    /// contained timeout failure instead of a pool hang.
    pub watchdog: Option<Duration>,
    /// When set, per-job checkpoint stores are file-backed under this
    /// directory (exercising the hardened DRCK format on disk); otherwise
    /// they are shared in-memory stores.
    pub checkpoint_dir: Option<PathBuf>,
    /// Record one job's gang through the span/event tracer so
    /// [`ServeHarness::write_traced_job_bundle`] can emit a doctor-readable
    /// trace bundle.
    pub trace_job: Option<JobId>,
    /// Sleep per empty round while intake is open (keeps an idle pool from
    /// hot-spinning).
    pub idle_sleep: Duration,
    /// When set, every incident trigger writes a doctor-readable bundle
    /// under this directory (rank 0 writes; triggers themselves are
    /// computed on every rank and land in the replicated summary). Also
    /// turns on per-attempt comm-event + flight-recorder capture staging.
    pub incident_dir: Option<PathBuf>,
    /// Per-tenant SLO policy; `None` disables the SLO engine.
    pub slo: Option<SloPolicy>,
    /// Convergence-log entries captured into each incident bundle's tail.
    pub incident_tail: usize,
    /// Live observability endpoints: when set (or when `DIFFREG_HTTP_ADDR`
    /// is in the environment), rank 0 binds a read-only HTTP/1.1 server on
    /// this address (`127.0.0.1:0` for an ephemeral loopback port) and
    /// publishes a snapshot at every round boundary. Serving never touches
    /// replicated state. See [`crate::http`].
    pub http_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            retry: RetryPolicy::default(),
            degrade_after: 2,
            watchdog: Some(Duration::from_secs(30)),
            checkpoint_dir: None,
            trace_job: None,
            idle_sleep: Duration::from_millis(1),
            incident_dir: None,
            slo: None,
            incident_tail: 64,
            http_addr: None,
        }
    }
}

/// One streamed solver-progress sample (gang rank 0 of the owning gang
/// forwards every Newton iteration as it lands).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// Job id.
    pub job: JobId,
    /// 1-based attempt.
    pub attempt: u32,
    /// β-continuation level.
    pub level: usize,
    /// Accepted Newton iterations completed at this level.
    pub iter: usize,
    /// Objective value.
    pub objective: f64,
    /// Gradient norm.
    pub grad_norm: f64,
}

/// Final, replicated summary of one `serve_pool` run. Every pool rank
/// returns an identical value — tests assert this replication invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Jobs rejected at admission, in intake order.
    pub rejected: Vec<JobId>,
    /// Final job table.
    pub records: BTreeMap<JobId, JobRecord>,
    /// Fold-derived incident records, in deterministic trigger order
    /// (identical on every rank and across seeded replays).
    pub incidents: Vec<IncidentRecord>,
    /// Rendered SLO alert-log lines, in transition order (empty when no
    /// SLO policy is configured).
    pub slo_alerts: Vec<String>,
    /// FNV digest of the final SLO engine state (0 without a policy);
    /// equality across ranks proves bit-identical alert state.
    pub slo_digest: u64,
}

impl ServeSummary {
    /// Count of jobs in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.records.values().filter(|r| r.state == state).count()
    }

    /// Zero-loss invariant: every admitted job reached a *deliberate*
    /// terminal state.
    pub fn all_accounted_for(&self) -> bool {
        self.records.values().all(|r| r.state.is_terminal())
    }
}

// ---------------------------------------------------------------------------
// Attempt reports (the outcome-allgather wire format)
// ---------------------------------------------------------------------------

const KIND_IDLE: u64 = 0;
const KIND_OK: u64 = 1;
const KIND_FAIL: u64 = 2;

const REASON_KILL: u64 = 1;
const REASON_TIMEOUT: u64 = 2;
const REASON_PEER: u64 = 3;
const REASON_OTHER: u64 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AttemptReport {
    kind: u64,
    job: JobId,
    reason: u64,
    digest: u64,
    mismatch_bits: u64,
    resumed: bool,
    fell_back: bool,
}

impl AttemptReport {
    fn idle() -> Self {
        Self {
            kind: KIND_IDLE,
            job: 0,
            reason: 0,
            digest: 0,
            mismatch_bits: 0,
            resumed: false,
            fell_back: false,
        }
    }

    fn encode(&self) -> Vec<u64> {
        vec![
            self.kind,
            self.job,
            self.reason,
            self.digest,
            self.mismatch_bits,
            u64::from(self.resumed),
            u64::from(self.fell_back),
        ]
    }

    fn decode(w: &[u64]) -> Self {
        Self {
            kind: w[0],
            job: w[1],
            reason: w[2],
            digest: w[3],
            mismatch_bits: w[4],
            resumed: w[5] == 1,
            fell_back: w[6] == 1,
        }
    }
}

/// Maps a contained panic payload to a failure-reason code.
fn classify_failure(payload: &str) -> u64 {
    let p = payload.to_lowercase();
    if p.contains("injected kill") {
        REASON_KILL
    } else if p.contains("timeout") || p.contains("watchdog") {
        REASON_TIMEOUT
    } else if p.contains("peer") {
        REASON_PEER
    } else {
        REASON_OTHER
    }
}

fn reason_label(reason: u64) -> &'static str {
    match reason {
        REASON_KILL => "kill",
        REASON_TIMEOUT => "timeout",
        REASON_PEER => "peer-gone",
        _ => "other",
    }
}

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

/// Captured per-gang-rank traces of the traced job, keyed
/// `(attempt, gang rank)` — later attempts supersede earlier ones when the
/// bundle is written.
type TraceMap = BTreeMap<(u32, usize), (ThreadTrace, Vec<CommEvent>)>;

/// Shared state of one serving deployment: submission inboxes, per-job
/// checkpoint stores, the progress stream, and the metrics dashboard.
///
/// Clone freely — clones share state. Submit and cancel from any thread
/// (including while the pool is running); call
/// [`serve_pool`](Self::serve_pool) from every rank of a `run_threaded`
/// world.
#[derive(Clone)]
pub struct ServeHarness {
    cfg: ServeConfig,
    injector: Arc<dyn FaultInjector>,
    inbox: Arc<Mutex<Vec<JobSpec>>>,
    cancel_inbox: Arc<Mutex<Vec<JobId>>>,
    intake_open: Arc<AtomicBool>,
    stores: Arc<Mutex<HashMap<JobId, CheckpointStore>>>,
    progress: Arc<Mutex<Vec<ProgressEvent>>>,
    logs: Arc<Mutex<HashMap<JobId, ConvergenceLog>>>,
    metrics: Arc<Mutex<MetricsRegistry>>,
    traces: Arc<Mutex<TraceMap>>,
    stage: Arc<Mutex<CaptureStage>>,
    obs: ObsSlot,
    http_bound: Arc<Mutex<Option<std::net::SocketAddr>>>,
}

/// Context for one incident trigger (everything
/// [`ServeHarness::record_incident`] needs beyond the shared state).
struct IncidentCtx<'a> {
    trigger: IncidentTrigger,
    job: JobId,
    attempt: u32,
    tenant: &'a str,
    round: u64,
    gang_ranks: &'a [usize],
    reason: &'a str,
    detail: String,
}

impl ServeHarness {
    /// A new deployment with the given config and fault plan (use
    /// [`NoFaults`](crate::faults::NoFaults) for production behavior).
    pub fn new(cfg: ServeConfig, injector: Arc<dyn FaultInjector>) -> Self {
        Self {
            cfg,
            injector,
            inbox: Arc::new(Mutex::new(Vec::new())),
            cancel_inbox: Arc::new(Mutex::new(Vec::new())),
            intake_open: Arc::new(AtomicBool::new(true)),
            stores: Arc::new(Mutex::new(HashMap::new())),
            progress: Arc::new(Mutex::new(Vec::new())),
            logs: Arc::new(Mutex::new(HashMap::new())),
            metrics: Arc::new(Mutex::new(MetricsRegistry::new())),
            traces: Arc::new(Mutex::new(BTreeMap::new())),
            stage: Arc::new(Mutex::new(BTreeMap::new())),
            obs: Arc::new(Mutex::new(Arc::new(ObsSnapshot::default()))),
            http_bound: Arc::new(Mutex::new(None)),
        }
    }

    /// The observability server's bound address, once rank 0 started it
    /// (`None` when HTTP is disabled or the pool has not started yet).
    /// With port 0 this is where the ephemeral port shows up.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        *lock(&self.http_bound)
    }

    /// The latest published observability snapshot (what the endpoints
    /// serve right now).
    pub fn observability(&self) -> Arc<ObsSnapshot> {
        Arc::clone(&lock(&self.obs))
    }

    /// Enqueues a job for admission at the pool's next intake round.
    pub fn submit(&self, spec: JobSpec) {
        lock(&self.inbox).push(spec);
    }

    /// Requests cancellation of `id` (applied at the next intake round;
    /// too late once the job completed).
    pub fn cancel(&self, id: JobId) {
        lock(&self.cancel_inbox).push(id);
    }

    /// Closes intake: once the inboxes drain and every admitted job reaches
    /// a terminal state, `serve_pool` returns on all ranks.
    pub fn close_intake(&self) {
        self.intake_open.store(false, Ordering::SeqCst);
    }

    /// Snapshot of the streamed progress events so far.
    pub fn progress(&self) -> Vec<ProgressEvent> {
        lock(&self.progress).clone()
    }

    /// Per-job convergence log (iteration records plus serve-side events:
    /// attempts, resumes, fallbacks, checkpoint drops).
    pub fn job_log(&self, id: JobId) -> Option<ConvergenceLog> {
        lock(&self.logs).get(&id).cloned()
    }

    /// The dashboard rendered in Prometheus text exposition format
    /// (deterministic: counters and histograms derive only from the
    /// replicated schedule; only the latency histograms' *values* are
    /// wall-clock).
    pub fn render_prometheus(&self) -> String {
        lock(&self.metrics).render_prometheus()
    }

    /// A named counter from the dashboard.
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.metrics).counter(name).unwrap_or(0)
    }

    /// The checkpoint store backing `job` (shared across pool ranks;
    /// created on first use). `Disabled` for jobs that never checkpoint.
    pub fn store_for(&self, spec: &JobSpec) -> CheckpointStore {
        if spec.checkpoint_every == 0 {
            return CheckpointStore::Disabled;
        }
        let mut map = lock(&self.stores);
        map.entry(spec.id)
            .or_insert_with(|| match &self.cfg.checkpoint_dir {
                Some(dir) => CheckpointStore::file(dir.join(format!("job{}", spec.id))),
                None => CheckpointStore::memory(),
            })
            .clone()
    }

    /// Writes the traced job's final attempt as a doctor-readable trace
    /// bundle (`trace.json`, `events-rank*.jsonl`, `metrics.prom`). Call
    /// after the pool has drained. Returns the gang size written, or 0 when
    /// nothing was traced.
    pub fn write_traced_job_bundle(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let map = lock(&self.traces);
        let Some(last_attempt) = map.keys().map(|(a, _)| *a).max() else {
            return Ok(0);
        };
        let mut traces: Vec<(usize, ThreadTrace)> = Vec::new();
        let mut events: Vec<(usize, Vec<CommEvent>)> = Vec::new();
        for ((a, rank), (t, e)) in map.iter() {
            if *a == last_attempt {
                traces.push((*rank, t.clone()));
                events.push((*rank, e.clone()));
            }
        }
        let metrics = lock(&self.metrics).clone();
        write_trace_bundle(dir, &traces, &events, Some(&metrics))?;
        Ok(traces.len())
    }

    // -- the SPMD loop ------------------------------------------------------

    /// Runs the serving loop on this pool rank. Call from **every** rank of
    /// a `run_threaded` world; returns when intake is closed and every
    /// admitted job is terminal. All ranks return the identical summary.
    pub fn serve_pool(&self, world: &ThreadComm) -> ServeSummary {
        let me = world.rank();
        let pool = world.size();
        let mut table: BTreeMap<JobId, JobRecord> = BTreeMap::new();
        let mut rejected: Vec<JobId> = Vec::new();
        let mut submit_times: HashMap<JobId, Instant> = HashMap::new();
        let mut round: u64 = 0;
        let mut slo: Option<SloEngine> = self.cfg.slo.clone().map(SloEngine::new);
        let mut incidents: Vec<IncidentRecord> = Vec::new();
        let capture_on = self.cfg.incident_dir.is_some();
        if me == 0 {
            let mut m = lock(&self.metrics);
            m.set_gauge("serve_pool_ranks", pool as f64);
        }
        if self.cfg.trace_job.is_some() {
            set_trace_enabled(true);
        }
        // Live observability plane: rank 0 only, opt-in, read-only. The
        // server thread sees nothing but published snapshot Arcs, so it
        // cannot perturb the replicated schedule (digest parity with HTTP
        // disabled is pinned by the load test).
        let http_spec = self
            .cfg
            .http_addr
            .clone()
            .or_else(|| std::env::var("DIFFREG_HTTP_ADDR").ok());
        let http = if me == 0 {
            http_spec.and_then(|spec| match HttpServer::start(&spec, Arc::clone(&self.obs)) {
                Ok(server) => {
                    *lock(&self.http_bound) = Some(server.addr());
                    Some(server)
                }
                Err(e) => {
                    lock(&self.metrics).inc_counter("serve_http_bind_errors_total", 1);
                    eprintln!("serve: http bind failed ({e}); observability disabled");
                    None
                }
            })
        } else {
            None
        };

        loop {
            // 1. intake: rank 0 drains, everyone applies the same blob.
            let intake_span = span("serve.intake");
            let mut wire: Vec<u8> = if me == 0 {
                let specs: Vec<JobSpec> = std::mem::take(&mut *lock(&self.inbox));
                let cancels: Vec<JobId> = std::mem::take(&mut *lock(&self.cancel_inbox));
                let open = self.intake_open.load(Ordering::SeqCst);
                encode_intake(&specs, &cancels, open)
            } else {
                Vec::new()
            };
            world.broadcast(0, &mut wire);
            let (specs, cancels, open) = decode_intake(&wire);

            for spec in specs {
                let id = spec.id;
                if me == 0 {
                    lock(&self.metrics).inc_counter("serve_jobs_submitted_total", 1);
                }
                let waiting = table.values().filter(|r| r.state.is_waiting()).count();
                if waiting >= self.cfg.queue_capacity || table.contains_key(&id) {
                    rejected.push(id);
                    if me == 0 {
                        lock(&self.metrics).inc_counter("serve_jobs_rejected_total", 1);
                    }
                    continue;
                }
                if me == 0 {
                    submit_times.insert(id, Instant::now());
                }
                table.insert(id, JobRecord::new(spec, round, pool));
            }
            for id in cancels {
                if let Some(rec) = table.get_mut(&id) {
                    match rec.state {
                        JobState::Queued | JobState::Backoff { .. } => {
                            rec.state = JobState::Cancelled;
                            rec.finish_round = Some(round);
                            if me == 0 {
                                lock(&self.metrics).inc_counter("serve_jobs_cancelled_total", 1);
                            }
                        }
                        JobState::Running => rec.cancel_requested = true,
                        _ => {}
                    }
                }
            }

            // 2. backoff release + deadline sweep.
            for rec in table.values_mut() {
                if let JobState::Backoff { until_round } = rec.state {
                    if round >= until_round {
                        rec.state = JobState::Queued;
                    }
                }
                if rec.state.is_waiting() {
                    if let Some(d) = rec.spec.deadline_rounds {
                        if round.saturating_sub(rec.submit_round) >= d {
                            rec.state = JobState::Expired;
                            rec.finish_round = Some(round);
                            if me == 0 {
                                lock(&self.metrics).inc_counter("serve_jobs_expired_total", 1);
                            }
                            let qw = rec
                                .first_start_round
                                .unwrap_or(round)
                                .saturating_sub(rec.submit_round);
                            if let Some(s) = slo.as_mut() {
                                s.observe_terminal(
                                    &rec.spec.tenant,
                                    round,
                                    qw,
                                    round.saturating_sub(rec.submit_round),
                                    false,
                                );
                            }
                            let firing =
                                slo.as_ref().map(|s| s.firing()).unwrap_or_default();
                            self.record_incident(
                                &mut incidents,
                                &firing,
                                me,
                                IncidentCtx {
                                    trigger: IncidentTrigger::DeadlineExpiry,
                                    job: rec.spec.id,
                                    attempt: rec.attempts,
                                    tenant: &rec.spec.tenant,
                                    round,
                                    gang_ranks: &[],
                                    reason: "deadline",
                                    detail: format!(
                                        "deadline of {d} rounds passed while waiting in queue"
                                    ),
                                },
                            );
                        }
                    }
                }
            }

            drop(intake_span);

            // 3. termination: replicated decision (open and the table are
            // identical on every rank).
            if !open && table.values().all(|r| r.state.is_terminal()) {
                break;
            }

            // 4. plan, mark running, account attempts.
            let plan_span = span("serve.plan");
            let plan = plan_round(&table, pool);
            for a in &plan {
                if let Some(rec) = table.get_mut(&a.job) {
                    rec.state = JobState::Running;
                    rec.attempts += 1;
                    if rec.first_start_round.is_none() {
                        rec.first_start_round = Some(round);
                        if me == 0 {
                            if let Some(t0) = submit_times.get(&a.job) {
                                let wait = t0.elapsed().as_secs_f64();
                                lock(&self.metrics).observe("serve_queue_wait_seconds", wait);
                            }
                        }
                    }
                    if me == 0 {
                        lock(&self.metrics).inc_counter("serve_attempts_total", 1);
                    }
                }
            }
            if me == 0 {
                let mut m = lock(&self.metrics);
                let waiting = table.values().filter(|r| r.state.is_waiting()).count();
                m.set_gauge("serve_queue_depth", waiting as f64);
                m.set_gauge("serve_running_jobs", plan.len() as f64);
                m.inc_counter("serve_rounds_total", 1);
            }

            drop(plan_span);

            if plan.is_empty() && open {
                std::thread::sleep(self.cfg.idle_sleep);
            }

            // 5. split into gangs (the plan IS the coloring) and execute.
            let mine = plan.iter().position(|a| a.ranks.contains(&me));
            let color = mine.unwrap_or(plan.len());
            let drops_before = if capture_on { world.events_dropped() } else { 0 };
            let sub = world.split(color, me);
            let report = match mine {
                Some(ai) => {
                    let a = &plan[ai];
                    match table.get(&a.job) {
                        Some(rec) => self.run_attempt(sub, a, rec),
                        None => AttemptReport::idle(),
                    }
                }
                None => {
                    drop(sub);
                    AttemptReport::idle()
                }
            };

            // Stage this rank's capture before the allgather: the gang's
            // comm events landed on this pool rank's shared event log (the
            // split shares it), and the flight-recorder window covers the
            // attempt since its start-of-attempt reset. The allgather below
            // is the barrier that makes every gang member's insert visible
            // to rank 0's fold.
            if capture_on {
                if let Some(ai) = mine {
                    let a = &plan[ai];
                    if let Some(rec) = table.get(&a.job) {
                        let events = world.take_events();
                        let dropped = world.events_dropped().saturating_sub(drops_before);
                        let mut per_op: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
                        for e in &events {
                            let p = per_op.entry(e.op.name()).or_insert((0, 0));
                            p.0 += 1;
                            p.1 += e.bytes;
                        }
                        for (op, (n, bytes)) in per_op {
                            record_comm_summary(op, n, bytes);
                        }
                        // This rank's own failure reason is the triage's
                        // strongest culprit signal (comm streams truncate
                        // symmetrically on gang-fatal faults): the killed
                        // rank reports the kill, the stalled rank reports
                        // peer-gone while its waiters report timeout.
                        if report.kind == KIND_FAIL {
                            record_event(
                                RecKind::Serve,
                                "serve.attempt-failed",
                                report.reason,
                                a.ranks.iter().position(|r| *r == me).unwrap_or(0) as u64,
                            );
                        }
                        let recorder = take_recorder();
                        let gang_rank =
                            a.ranks.iter().position(|r| *r == me).unwrap_or(0);
                        lock(&self.stage).entry((a.job, rec.attempts)).or_default().insert(
                            gang_rank,
                            RankCapture { gang_rank, events, events_dropped: dropped, recorder },
                        );
                    }
                }
            }

            // 6. outcome allgather + deterministic fold.
            let fold_span = span("serve.outcome-fold");
            let gathered = world.allgather(report.encode());
            let reports: Vec<AttemptReport> =
                gathered.iter().map(|w| AttemptReport::decode(w)).collect();
            self.fold_outcomes(
                &mut table,
                &plan,
                &reports,
                round,
                me,
                &submit_times,
                &mut slo,
                &mut incidents,
            );
            drop(fold_span);

            // 7. SLO window rotation + alert transitions (replicated), and
            // per-round capture-stage cleanup. Rank 0 reaches this only
            // after writing any bundles; the other ranks cannot start the
            // next round's attempts before rank 0's intake broadcast, so
            // clearing here cannot race new inserts.
            if let Some(s) = slo.as_mut() {
                let alerts = s.advance_round(round);
                let firing = s.firing();
                for al in &alerts {
                    if me == 0 {
                        lock(&self.metrics).inc_counter("serve_slo_transitions_total", 1);
                    }
                    if al.state == AlertState::Firing {
                        self.record_incident(
                            &mut incidents,
                            &firing,
                            me,
                            IncidentCtx {
                                trigger: IncidentTrigger::SloBurnRate,
                                job: 0,
                                attempt: 0,
                                tenant: &al.tenant,
                                round,
                                gang_ranks: &[],
                                reason: "slo",
                                detail: al.render(),
                            },
                        );
                    }
                }
                if me == 0 {
                    s.export(round, &mut lock(&self.metrics));
                }
            }
            if capture_on && me == 0 {
                lock(&self.stage).clear();
            }

            // Round boundary: rank 0 publishes the observability snapshot
            // (pure reads of replicated/fold-derived state; the HTTP thread
            // only ever swaps snapshot Arcs).
            if me == 0 && http.is_some() {
                self.publish_obs(round, &table, slo.as_ref(), &incidents);
            }

            round += 1;
        }

        if let Some(server) = http {
            self.publish_obs(round, &table, slo.as_ref(), &incidents);
            server.stop();
        }
        if self.cfg.trace_job.is_some() {
            set_trace_enabled(false);
        }
        if me == 0 {
            let mut m = lock(&self.metrics);
            m.set_gauge("serve_queue_depth", 0.0);
            m.set_gauge("serve_running_jobs", 0.0);
        }
        ServeSummary {
            rounds: round,
            rejected,
            records: table,
            incidents,
            slo_alerts: slo.as_ref().map(|s| s.render_alert_log()).unwrap_or_default(),
            slo_digest: slo.as_ref().map(|s| s.state_digest()).unwrap_or(0),
        }
    }

    /// Rebuilds and publishes the observability snapshot (rank 0, round
    /// boundary). Everything here is a *read*: the replicated job table,
    /// the fold-derived SLO/incident state, the metrics dashboard, the
    /// convergence logs, and this rank's flight-recorder window (a
    /// non-draining snapshot — attempt capture accounting is untouched).
    fn publish_obs(
        &self,
        round: u64,
        table: &BTreeMap<JobId, JobRecord>,
        slo: Option<&SloEngine>,
        incidents: &[IncidentRecord],
    ) {
        let state_label = |s: &JobState| -> String {
            match s {
                JobState::Queued => "queued".to_string(),
                JobState::Running => "running".to_string(),
                JobState::Backoff { until_round } => format!("backoff(until={until_round})"),
                JobState::Completed => "completed".to_string(),
                JobState::Cancelled => "cancelled".to_string(),
                JobState::Expired => "expired".to_string(),
                JobState::Failed => "failed".to_string(),
            }
        };
        let jobs_json = {
            let logs = lock(&self.logs);
            let mut jobs: Vec<Json> = Vec::with_capacity(table.len());
            for rec in table.values() {
                let mut j = Json::obj()
                    .set("id", rec.spec.id)
                    .set("tenant", rec.spec.tenant.as_str())
                    .set("state", state_label(&rec.state))
                    .set("gang_size", rec.gang_size)
                    .set("attempts", rec.attempts)
                    .set("resumed_attempts", rec.resumed_attempts)
                    .set("submit_round", rec.submit_round)
                    .set(
                        "first_start_round",
                        rec.first_start_round.map(Json::from).unwrap_or(Json::Null),
                    )
                    .set("finish_round", rec.finish_round.map(Json::from).unwrap_or(Json::Null));
                if let Some(res) = &rec.result {
                    j = j
                        .set("digest", format!("{:016x}", res.digest))
                        .set("result_gang_size", res.gang_size)
                        .set("resumed", res.resumed);
                }
                let last_iter = logs.get(&rec.spec.id).and_then(|log| {
                    log.entries.iter().rev().find_map(|e| match e {
                        StreamEntry::Iter(it) => Some(it),
                        _ => None,
                    })
                });
                if let Some(it) = last_iter {
                    j = j.set(
                        "last_iter",
                        Json::obj()
                            .set("level", it.level)
                            .set("iter", it.iter)
                            .set("objective", it.objective)
                            .set("grad_norm", it.grad_norm)
                            .set("rel_grad", it.rel_grad)
                            .set("pcg_iters", it.pcg_iters),
                    );
                }
                jobs.push(j);
            }
            Json::obj().set("round", round).set("jobs", jobs).to_string()
        };
        let slo_json = match slo {
            Some(s) => Json::obj()
                .set("round", round)
                .set("digest", format!("{:016x}", s.state_digest()))
                .set(
                    "firing",
                    s.firing().into_iter().map(Json::from).collect::<Vec<Json>>(),
                )
                .set(
                    "alerts",
                    s.render_alert_log().into_iter().map(Json::from).collect::<Vec<Json>>(),
                )
                .to_string(),
            None => Json::obj().set("round", round).set("disabled", true).to_string(),
        };
        let incidents_json = {
            let items: Vec<Json> = incidents
                .iter()
                .map(|i| {
                    Json::obj()
                        .set("seq", i.seq)
                        .set("trigger", i.trigger.name())
                        .set("job", i.job)
                        .set("attempt", i.attempt)
                        .set("round", i.round)
                        .set("reason", i.reason.as_str())
                })
                .collect();
            Json::obj().set("round", round).set("incidents", items).to_string()
        };
        let profile = Profile::from_recorders(&[(0, snapshot_recorder())]);
        let snap = ObsSnapshot {
            round,
            ready: true,
            metrics_text: lock(&self.metrics).render_prometheus(),
            jobs_json,
            slo_json,
            incidents_json,
            profile_folded: profile.render_folded(),
        };
        *lock(&self.obs) = Arc::new(snap);
    }

    /// Folds one round's allgathered gang outcomes into the replicated
    /// table, feeding the SLO engine and the incident sequence (both
    /// fold-derived, so identical on every rank). Pure with respect to the
    /// replicated inputs; rank 0 additionally records metrics and writes
    /// incident bundles.
    #[allow(clippy::too_many_arguments)]
    fn fold_outcomes(
        &self,
        table: &mut BTreeMap<JobId, JobRecord>,
        plan: &[Assignment],
        reports: &[AttemptReport],
        round: u64,
        me: usize,
        submit_times: &HashMap<JobId, Instant>,
        slo: &mut Option<SloEngine>,
        incidents: &mut Vec<IncidentRecord>,
    ) {
        // Alert state only transitions in `advance_round`, so one snapshot
        // serves every bundle header written this fold.
        let firing: Vec<String> = slo.as_ref().map(|s| s.firing()).unwrap_or_default();
        for a in plan {
            let members: Vec<&AttemptReport> = a.ranks.iter().map(|r| &reports[*r]).collect();
            let Some(rec) = table.get_mut(&a.job) else { continue };
            let all_ok = members.iter().all(|m| m.kind == KIND_OK);
            if all_ok {
                let lead = members[0];
                if lead.resumed {
                    rec.resumed_attempts += 1;
                }
                if lead.fell_back {
                    rec.fallbacks += 1;
                }
                rec.state = JobState::Completed;
                rec.finish_round = Some(round);
                rec.result = Some(JobResult {
                    digest: lead.digest,
                    final_mismatch_bits: lead.mismatch_bits,
                    gang_size: a.ranks.len(),
                    attempt: rec.attempts,
                    resumed: lead.resumed,
                });
                if let Some(s) = slo.as_mut() {
                    let qw = rec
                        .first_start_round
                        .unwrap_or(round)
                        .saturating_sub(rec.submit_round);
                    s.observe_terminal(
                        &rec.spec.tenant,
                        round,
                        qw,
                        round.saturating_sub(rec.submit_round),
                        true,
                    );
                }
                if lead.fell_back {
                    self.record_incident(
                        incidents,
                        &firing,
                        me,
                        IncidentCtx {
                            trigger: IncidentTrigger::CheckpointFallback,
                            job: a.job,
                            attempt: rec.attempts,
                            tenant: &rec.spec.tenant,
                            round,
                            gang_ranks: &a.ranks,
                            reason: "",
                            detail: "resume fell back to the previous checkpoint generation \
                                     (current generation torn)"
                                .to_string(),
                        },
                    );
                }
                if me == 0 {
                    let mut m = lock(&self.metrics);
                    m.inc_counter("serve_jobs_completed_total", 1);
                    if lead.resumed {
                        m.inc_counter("serve_jobs_recovered_total", 1);
                    }
                    if lead.fell_back {
                        m.inc_counter("serve_checkpoint_fallback_total", 1);
                    }
                    if let Some(t0) = submit_times.get(&a.job) {
                        m.observe("serve_job_e2e_seconds", t0.elapsed().as_secs_f64());
                    }
                }
                continue;
            }

            // Failure: pick the highest-precedence cause among the members
            // (kill > timeout > peer-gone > other).
            let reason = members
                .iter()
                .filter(|m| m.kind == KIND_FAIL && m.reason != 0)
                .map(|m| m.reason)
                .min()
                .unwrap_or(REASON_OTHER);
            rec.last_failure = Some(reason_label(reason).to_string());
            if me == 0 {
                lock(&self.metrics).inc_counter(
                    &format!("serve_attempts_failed_total{{reason=\"{}\"}}", reason_label(reason)),
                    1,
                );
            }
            // Every failed attempt is an incident: a watchdog timeout gets
            // its own trigger (the triage hunts for the stalled rank), any
            // other contained failure files as attempt-failure.
            self.record_incident(
                incidents,
                &firing,
                me,
                IncidentCtx {
                    trigger: failure_trigger(reason_label(reason)),
                    job: a.job,
                    attempt: rec.attempts,
                    tenant: &rec.spec.tenant,
                    round,
                    gang_ranks: &a.ranks,
                    reason: reason_label(reason),
                    detail: format!(
                        "attempt {} failed on a gang of {} (reason: {})",
                        rec.attempts,
                        a.ranks.len(),
                        reason_label(reason)
                    ),
                },
            );
            let deadline_hit = rec
                .spec
                .deadline_rounds
                .is_some_and(|d| round.saturating_sub(rec.submit_round) >= d);
            if rec.cancel_requested {
                rec.state = JobState::Cancelled;
                rec.finish_round = Some(round);
                if me == 0 {
                    lock(&self.metrics).inc_counter("serve_jobs_cancelled_total", 1);
                }
            } else if deadline_hit {
                rec.state = JobState::Expired;
                rec.finish_round = Some(round);
                if me == 0 {
                    lock(&self.metrics).inc_counter("serve_jobs_expired_total", 1);
                }
                if let Some(s) = slo.as_mut() {
                    let qw = rec
                        .first_start_round
                        .unwrap_or(round)
                        .saturating_sub(rec.submit_round);
                    s.observe_terminal(
                        &rec.spec.tenant,
                        round,
                        qw,
                        round.saturating_sub(rec.submit_round),
                        false,
                    );
                }
                self.record_incident(
                    incidents,
                    &firing,
                    me,
                    IncidentCtx {
                        trigger: IncidentTrigger::DeadlineExpiry,
                        job: a.job,
                        attempt: rec.attempts,
                        tenant: &rec.spec.tenant,
                        round,
                        gang_ranks: &a.ranks,
                        reason: reason_label(reason),
                        detail: format!(
                            "deadline passed after attempt {} failed",
                            rec.attempts
                        ),
                    },
                );
            } else if rec.attempts > rec.spec.max_retries {
                rec.state = JobState::Failed;
                rec.finish_round = Some(round);
                if me == 0 {
                    lock(&self.metrics).inc_counter("serve_jobs_failed_total", 1);
                }
                if let Some(s) = slo.as_mut() {
                    let qw = rec
                        .first_start_round
                        .unwrap_or(round)
                        .saturating_sub(rec.submit_round);
                    s.observe_terminal(
                        &rec.spec.tenant,
                        round,
                        qw,
                        round.saturating_sub(rec.submit_round),
                        false,
                    );
                }
            } else {
                // Retry. Keep the gang size while checkpoint resume has a
                // chance (the decomposition must match for a bitwise
                // resume); degrade only a job that keeps dying without ever
                // resuming.
                if me == 0 {
                    lock(&self.metrics).inc_counter("serve_jobs_retried_total", 1);
                }
                if rec.attempts >= self.cfg.degrade_after
                    && rec.resumed_attempts == 0
                    && rec.gang_size > 1
                {
                    rec.gang_size /= 2;
                    if me == 0 {
                        lock(&self.metrics).inc_counter("serve_jobs_degraded_total", 1);
                    }
                    self.record_incident(
                        incidents,
                        &firing,
                        me,
                        IncidentCtx {
                            trigger: IncidentTrigger::GangDegraded,
                            job: a.job,
                            attempt: rec.attempts,
                            tenant: &rec.spec.tenant,
                            round,
                            gang_ranks: &a.ranks,
                            reason: reason_label(reason),
                            detail: format!(
                                "gang halved to {} after {} fresh-start failures",
                                rec.gang_size, rec.attempts
                            ),
                        },
                    );
                }
                let delay = self.cfg.retry.backoff_rounds(a.job, rec.attempts);
                rec.state = JobState::Backoff { until_round: round + delay };
            }
        }
    }

    /// Appends one fold-derived incident record (every rank, deterministic)
    /// and — on rank 0 with an `incident_dir` — writes the doctor-readable
    /// bundle from the staged gang captures.
    fn record_incident(
        &self,
        incidents: &mut Vec<IncidentRecord>,
        slo_firing: &[String],
        me: usize,
        ctx: IncidentCtx<'_>,
    ) {
        let seq = incidents.len() as u64;
        incidents.push(IncidentRecord {
            seq,
            trigger: ctx.trigger,
            job: ctx.job,
            attempt: ctx.attempt,
            round: ctx.round,
            reason: ctx.reason.to_string(),
        });
        if me != 0 {
            return;
        }
        lock(&self.metrics).inc_counter(
            &format!("serve_incidents_total{{trigger=\"{}\"}}", ctx.trigger.name()),
            1,
        );
        let Some(dir) = &self.cfg.incident_dir else { return };
        let captures: Vec<RankCapture> = lock(&self.stage)
            .get(&(ctx.job, ctx.attempt))
            .map(|m| m.values().cloned().collect())
            .unwrap_or_default();
        let tail = lock(&self.logs).get(&ctx.job).map(|l| l.tail(self.cfg.incident_tail));
        let metrics = lock(&self.metrics).clone();
        let header = IncidentHeader {
            seq,
            trigger: ctx.trigger,
            job: ctx.job,
            attempt: ctx.attempt,
            round: ctx.round,
            tenant: ctx.tenant.to_string(),
            reason: ctx.reason.to_string(),
            detail: ctx.detail,
            gang_ranks: ctx.gang_ranks.to_vec(),
            slo_firing: slo_firing.to_vec(),
            comm_events: 0,
            comm_dropped: 0,
            rec_seen: 0,
            rec_recorded: 0,
            rec_sampled_out: 0,
            rec_overwritten: 0,
            convergence_entries: 0,
            convergence_evicted: 0,
            capture_digest: 0,
        };
        if write_incident_bundle(dir, header, &captures, tail.as_ref(), Some(&metrics)).is_err() {
            lock(&self.metrics).inc_counter("serve_incident_write_errors_total", 1);
        }
    }

    /// Runs one gang attempt under containment. `sub` is this rank's gang
    /// communicator from the round's split; the returned report is this
    /// member's contribution to the outcome allgather.
    fn run_attempt(&self, sub: ThreadComm, a: &Assignment, rec: &JobRecord) -> AttemptReport {
        let spec = rec.spec.clone();
        let attempt = rec.attempts;
        let gang_size = a.ranks.len();
        let faults = self.injector.faults(spec.id, attempt);
        let store = self.store_for(&spec);
        let tracing = self.cfg.trace_job == Some(spec.id);
        let capture_on = self.cfg.incident_dir.is_some();
        sub.set_timeout(self.cfg.watchdog);
        if tracing || capture_on {
            sub.set_event_recording(true);
        }
        if tracing {
            let _ = take_thread_trace(); // drop spans from earlier attempts
        }
        if capture_on {
            // Reset both capture windows so the staged snapshot — and its
            // adaptive-sampling counters — covers exactly this attempt
            // (replay-deterministic: the stride depends only on counts).
            // The event drain discards pool-collective residue from rounds
            // this rank sat idle; `sub` shares the rank's event log.
            let _ = sub.take_events();
            let _ = take_recorder();
            record_event(RecKind::Serve, "serve.attempt", spec.id, u64::from(attempt));
        }

        let outcome = run_gang(sub, |gang| {
            let chaos = ChaosComm::new(gang, chaos_config(&faults, &spec));
            // Torn-write drill: gang rank 0 tears every member's current
            // generation before anyone reads, so all members fall back to
            // the same (previous) generation together.
            if faults.corrupt_checkpoint && chaos.rank() == 0 {
                for r in 0..gang_size {
                    store.inject_corruption(r);
                }
            }
            chaos.barrier();

            // Resume agreement: all-or-nothing, same-point-or-fresh.
            let my = store.load_for_resume(chaos.rank());
            let fp = my
                .checkpoint
                .as_ref()
                .map(|c| 1.0 + c.level as f64 * 1.0e9 + c.completed_iters as f64)
                .unwrap_or(0.0);
            let (lo, hi) = (chaos.min_f64(fp), chaos.max_f64(fp));
            let inconsistent = lo.to_bits() != hi.to_bits();
            if inconsistent {
                store.clear(chaos.rank());
            }
            chaos.barrier();
            let resumed = !inconsistent && my.checkpoint.is_some();
            let fell_back = !inconsistent && my.fell_back;

            if chaos.rank() == 0 {
                let mut logs = lock(&self.logs);
                let log = logs
                    .entry(spec.id)
                    .or_insert_with(|| ConvergenceLog::new(format!("job{}", spec.id)));
                log.event(
                    "serve-attempt",
                    0,
                    attempt as usize,
                    format!("gang {gang_size}, resumed {resumed}, fell_back {fell_back}"),
                );
                if inconsistent {
                    log.event(
                        "serve-checkpoint-drop",
                        0,
                        attempt as usize,
                        "inconsistent generations across the gang; restarting fresh",
                    );
                } else if fell_back {
                    log.event(
                        "serve-fallback",
                        0,
                        attempt as usize,
                        "current generation torn; resumed from previous",
                    );
                } else if resumed {
                    log.event("serve-resume", 0, attempt as usize, "resumed from checkpoint");
                }
            }

            let betas = spec.betas.clone();
            let (digest, mismatch_bits) = solve_once(&chaos, &spec, &store, |level, cur| {
                if chaos.rank() == 0 {
                    lock(&self.progress).push(ProgressEvent {
                        job: spec.id,
                        attempt,
                        level,
                        iter: cur.completed_iters,
                        objective: cur.objective,
                        grad_norm: cur.grad_norm,
                    });
                    let rel = if cur.g0norm.is_finite() && cur.g0norm > 0.0 {
                        cur.grad_norm / cur.g0norm
                    } else {
                        1.0
                    };
                    let mut logs = lock(&self.logs);
                    if let Some(log) = logs.get_mut(&spec.id) {
                        log.record(IterRecord {
                            level,
                            beta: betas.get(level).copied().unwrap_or(f64::NAN),
                            iter: cur.completed_iters,
                            objective: cur.objective,
                            grad_norm: cur.grad_norm,
                            rel_grad: rel,
                            pcg_iters: cur.matvecs,
                            eta: cur.eta,
                            step_length: cur.step_length,
                        });
                    }
                }
            });

            if tracing {
                let events = gang.take_events();
                let trace = take_thread_trace();
                lock(&self.traces).insert((attempt, gang.rank()), (trace, events));
            }
            (digest, mismatch_bits, resumed, fell_back)
        });

        match outcome {
            Ok((digest, mismatch_bits, resumed, fell_back)) => AttemptReport {
                kind: KIND_OK,
                job: spec.id,
                reason: 0,
                digest,
                mismatch_bits,
                resumed,
                fell_back,
            },
            Err(failure) => AttemptReport {
                kind: KIND_FAIL,
                job: spec.id,
                reason: classify_failure(&failure.payload),
                digest: 0,
                mismatch_bits: 0,
                resumed: false,
                fell_back: false,
            },
        }
    }
}

/// Builds the gang's chaos schedule from the attempt's fault plan.
fn chaos_config(faults: &AttemptFaults, spec: &JobSpec) -> ChaosConfig {
    let mut cfg = ChaosConfig::seeded(faults.seed ^ spec.id);
    if let Some((rank, epoch)) = faults.kill_at_epoch {
        cfg = cfg.with_kill_at_epoch(rank, epoch);
    }
    if let Some((rank, epoch, ms)) = faults.stall_at_epoch {
        cfg = cfg.with_stall_at_epoch(rank, epoch, ms);
    }
    if let Some((prob, max_us)) = faults.latency {
        cfg = cfg.with_latency(prob, max_us);
    }
    cfg
}

/// The serving runtime's synthetic problem (paper §IV-A1): the template is
/// a sin² bump sum and the reference is the template transported by a known
/// velocity of the given amplitude.
pub fn synthetic_pair<C: Comm>(ws: &Workspace<C>, amplitude: f64) -> (ScalarField, ScalarField) {
    let grid = ws.grid();
    let rho_t = ScalarField::from_fn(&grid, ws.block(), |x| {
        (x[0].sin().powi(2) + x[1].sin().powi(2) + x[2].sin().powi(2)) / 3.0
    });
    let v_star = VectorField::from_fn(&grid, ws.block(), |x| {
        [
            amplitude * x[0].cos() * x[1].sin(),
            amplitude * x[1].cos() * x[0].sin(),
            amplitude * x[0].cos() * x[2].sin(),
        ]
    });
    let sl = SemiLagrangian::new(ws, &v_star, 4);
    let rho_r = sl.solve_state(ws, &rho_t).pop().unwrap_or(rho_t.clone());
    (rho_t, rho_r)
}

/// Solves `spec`'s problem on `comm` (one gang) and returns
/// `(digest, final_mismatch_bits)`. The digest folds every gang rank's
/// velocity slab bits in rank order plus the final mismatch — equal digests
/// mean bitwise-equal transformations.
fn solve_once<C: Comm>(
    comm: &C,
    spec: &JobSpec,
    store: &CheckpointStore,
    hook: impl FnMut(usize, &NewtonCursor),
) -> (u64, u64) {
    let grid = Grid::cubic(spec.grid_n);
    let decomp = Decomp::new(grid, comm.size());
    let fft = PencilFft::new(comm, decomp);
    let timers = Timers::new();
    let ws = Workspace::new(comm, &decomp, &fft, &timers);
    let (rho_t, rho_r) = synthetic_pair(&ws, spec.amplitude);
    let cfg = RegistrationConfig {
        nt: spec.nt,
        checkpoint_every: spec.checkpoint_every,
        newton: NewtonOptions { max_iter: spec.newton_iters, ..Default::default() },
        ..Default::default()
    };
    let (out, _reports) = register_with_continuation_checkpointed_hooked(
        &ws, &rho_t, &rho_r, cfg, &spec.betas, store, hook,
    );
    let mut local = FNV_OFFSET;
    for c in 0..3 {
        for x in out.velocity.comps[c].data() {
            local = fnv_fold_u64(local, x.to_bits());
        }
    }
    let all = comm.allgather(vec![local]);
    let mut digest = FNV_OFFSET;
    for part in &all {
        digest = fnv_fold_u64(digest, part[0]);
    }
    digest = fnv_fold_u64(digest, out.final_mismatch.to_bits());
    (digest, out.final_mismatch.to_bits())
}

/// Replays the collective sequence of one fresh (no-checkpoint) attempt of
/// `spec` on a clean dedicated `gang_size`-rank world and returns how many
/// collective epochs it executes. Epoch-keyed fault plans use this as their
/// coordinate system: a kill at ~70% of the count lands inside the last
/// continuation level, after checkpoints have been written but before the
/// driver clears them on success.
pub fn attempt_epoch_count(spec: &JobSpec, gang_size: usize) -> u64 {
    let spec = spec.clone();
    let counts = run_threaded(gang_size, move |comm| {
        let chaos = ChaosComm::new(comm, ChaosConfig::seeded(0));
        chaos.barrier();
        let fp = 0.0f64;
        let _ = chaos.min_f64(fp);
        let _ = chaos.max_f64(fp);
        chaos.barrier();
        let _ = solve_once(&chaos, &spec, &CheckpointStore::Disabled, |_, _| {});
        chaos.epochs_executed()
    });
    counts[0]
}

/// Solves `spec` uninterrupted (no chaos, no checkpoints) on a dedicated
/// `gang_size`-rank world and returns `(digest, final_mismatch_bits)` — the
/// reference a recovered job's served result must match bitwise.
pub fn reference_digest(spec: &JobSpec, gang_size: usize) -> (u64, u64) {
    let spec = spec.clone();
    let per_rank = run_threaded(gang_size, move |comm| {
        solve_once(comm, &spec, &CheckpointStore::Disabled, |_, _| {})
    });
    per_rank[0]
}
