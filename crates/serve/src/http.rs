//! Zero-dependency live observability endpoints for the serve runtime.
//!
//! A minimal read-only HTTP/1.1 server over `std::net::TcpListener`:
//! rank 0 starts it when [`ServeConfig::http_addr`](crate::ServeConfig)
//! (or `DIFFREG_HTTP_ADDR`) is set, and publishes an immutable
//! [`ObsSnapshot`] at every scheduler round boundary. Requests only ever
//! read the latest snapshot `Arc`, so serving can never perturb the
//! replicated scheduler state — the digest-parity load test pins that.
//!
//! | Path               | Content                                          |
//! |--------------------|--------------------------------------------------|
//! | `/healthz`         | liveness (`ok`)                                  |
//! | `/readyz`          | readiness (200 after the first round, else 503)  |
//! | `/metrics`         | Prometheus text exposition                       |
//! | `/jobs`            | replicated job table + last iteration, JSON      |
//! | `/slo`             | burn-rate / alert state, JSON                    |
//! | `/incidents`       | fold-derived incident index, JSON                |
//! | `/profile.folded`  | collapsed-stack flamegraph snapshot              |
//!
//! Security posture: read-only (only `GET` is answered), bounded request
//! reads, bounded prebuilt responses, `Connection: close` on every reply,
//! and no TLS/auth — bind it to loopback unless the network is trusted.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head the server will buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a stalled client cannot hold the single
/// accept loop hostage for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// One immutable snapshot of everything the endpoints serve. Rank 0
/// rebuilds it at each round boundary (after the SLO export, before the
/// next intake broadcast) from replicated fold-derived state; the HTTP
/// thread only swaps `Arc`s.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// Scheduler round the snapshot was published at the end of.
    pub round: u64,
    /// True once at least one round has folded (drives `/readyz`).
    pub ready: bool,
    /// Prometheus text exposition (`/metrics`).
    pub metrics_text: String,
    /// Job table + last iteration records, JSON (`/jobs`).
    pub jobs_json: String,
    /// SLO burn-rate and alert state, JSON (`/slo`).
    pub slo_json: String,
    /// Incident index, JSON (`/incidents`).
    pub incidents_json: String,
    /// Collapsed-stack flamegraph, count-weighted canonical projection
    /// (`/profile.folded`).
    pub profile_folded: String,
}

/// The shared snapshot slot: publisher swaps the inner `Arc`, readers
/// clone it out.
pub type ObsSlot = Arc<Mutex<Arc<ObsSnapshot>>>;

/// The running endpoint server (rank-0-only). Dropping it (or calling
/// [`stop`](HttpServer::stop)) shuts the accept loop down.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `spec` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop over `slot`. Returns the server with the actually
    /// bound address (useful with port 0).
    pub fn start(spec: &str, slot: ObsSlot) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(spec)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("diffreg-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Serve inline: responses are prebuilt strings, so a
                        // request is bounded work and one thread suffices.
                        let _ = handle_conn(stream, &slot);
                    }
                }
            })?;
        Ok(HttpServer { addr, shutdown, handle: Some(handle) })
    }

    /// The actually bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the (blocking) accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Reads one request head (up to the blank line or [`MAX_REQUEST_BYTES`])
/// and writes one response.
fn handle_conn(mut stream: TcpStream, slot: &ObsSlot) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = route(method, path, slot);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Resolves one request to `(status line, content type, body)`.
fn route(method: &str, path: &str, slot: &ObsSlot) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return ("405 Method Not Allowed", "text/plain; charset=utf-8", "read-only\n".to_string());
    }
    let snap: Arc<ObsSnapshot> = {
        let guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&guard)
    };
    const JSON: &str = "application/json";
    const TEXT: &str = "text/plain; charset=utf-8";
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    match path {
        "/healthz" => ("200 OK", TEXT, "ok\n".to_string()),
        "/readyz" => {
            if snap.ready {
                ("200 OK", TEXT, "ready\n".to_string())
            } else {
                ("503 Service Unavailable", TEXT, "warming up\n".to_string())
            }
        }
        "/metrics" => ("200 OK", PROM, snap.metrics_text.clone()),
        "/jobs" => ("200 OK", JSON, snap.jobs_json.clone()),
        "/slo" => ("200 OK", JSON, snap.slo_json.clone()),
        "/incidents" => ("200 OK", JSON, snap.incidents_json.clone()),
        "/profile.folded" => ("200 OK", TEXT, snap.profile_folded.clone()),
        _ => ("404 Not Found", TEXT, "unknown endpoint\n".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        let (head, body) = out.split_once("\r\n\r\n").unwrap_or((out.as_str(), ""));
        (head.to_string(), body.to_string())
    }

    fn test_slot() -> ObsSlot {
        let snap = ObsSnapshot {
            round: 3,
            ready: true,
            metrics_text: "# TYPE x counter\nx 1\n".to_string(),
            jobs_json: "{\"jobs\":[]}".to_string(),
            slo_json: "{\"firing\":[]}".to_string(),
            incidents_json: "{\"incidents\":[]}".to_string(),
            profile_folded: "rank0;a 1\n[dropped] 0\n".to_string(),
        };
        Arc::new(Mutex::new(Arc::new(snap)))
    }

    #[test]
    fn serves_every_endpoint_and_shuts_down() {
        let server = HttpServer::start("127.0.0.1:0", test_slot()).expect("bind");
        let addr = server.addr();
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
        let (head, _) = get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let (head, body) = get(addr, "/metrics");
        assert!(head.contains("version=0.0.4"), "{head}");
        assert!(body.contains("x 1"), "{body}");
        let (_, body) = get(addr, "/jobs");
        assert_eq!(body, "{\"jobs\":[]}");
        let (_, body) = get(addr, "/slo");
        assert_eq!(body, "{\"firing\":[]}");
        let (_, body) = get(addr, "/incidents");
        assert_eq!(body, "{\"incidents\":[]}");
        let (_, body) = get(addr, "/profile.folded");
        assert!(body.ends_with("[dropped] 0\n"), "{body}");
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.stop();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn rejects_writes_and_reports_warming_up() {
        let slot: ObsSlot = Arc::new(Mutex::new(Arc::new(ObsSnapshot::default())));
        let server = HttpServer::start("127.0.0.1:0", Arc::clone(&slot)).expect("bind");
        let addr = server.addr();
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "POST /jobs HTTP/1.1\r\n\r\n").expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        let (head, _) = get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 503"), "not ready before a round: {head}");
        server.stop();
    }
}
