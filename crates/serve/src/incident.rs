//! The serve-side incident engine's replicated record type and capture
//! staging.
//!
//! Triggers are *fold-derived*: every rank computes the identical incident
//! sequence from the outcome allgather (it is part of the replicated
//! [`ServeSummary`](crate::ServeSummary), so the existing replication
//! assertions cover it). Bundle *writing* is rank 0's job alone — it reads
//! the capture stage, where each gang rank parked its comm-event ring and
//! flight-recorder window right after its attempt (the outcome allgather is
//! the synchronization barrier that makes those inserts visible).

use std::collections::BTreeMap;

use diffreg_telemetry::incident::RankCapture;

use crate::job::JobId;

pub use diffreg_telemetry::incident::IncidentTrigger;

/// One fold-derived incident: the deterministic, replicated core of a
/// bundle (everything except the captured windows themselves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentRecord {
    /// Campaign-wide sequence number (deterministic trigger order).
    pub seq: u64,
    /// What fired.
    pub trigger: IncidentTrigger,
    /// Job involved (0 for tenant-level SLO incidents).
    pub job: JobId,
    /// 1-based attempt at trigger time (0 when no attempt ran).
    pub attempt: u32,
    /// Scheduler round the trigger fired in.
    pub round: u64,
    /// Failure-reason label, or `""`.
    pub reason: String,
}

/// Per-round capture staging: `(job, attempt) → gang rank → capture`.
/// Shared across all pool ranks (they are threads of one process); rank 0
/// drains it when writing bundles and clears it at the end of each fold.
pub(crate) type CaptureStage = BTreeMap<(JobId, u32), BTreeMap<usize, RankCapture>>;

/// The incident trigger for a failed attempt with the given reason label.
pub fn failure_trigger(reason: &str) -> IncidentTrigger {
    if reason == "timeout" {
        IncidentTrigger::WatchdogTimeout
    } else {
        IncidentTrigger::AttemptFailure
    }
}
