//! Deterministic gang scheduler: a pure packing function from the
//! replicated job table to this round's gang assignments.
//!
//! Every pool rank evaluates [`plan_round`] on its identical table copy and
//! obtains the identical plan — the gang layout IS the `Comm::split`
//! coloring, so no rank ever needs to be told what the others decided.
//!
//! Ordering is fair-share first-fit with backfill:
//! 1. higher [`JobSpec::priority`] first;
//! 2. among equal priorities, tenants that have consumed fewer attempt·rank
//!    slots so far come first (fair share);
//! 3. FIFO by submission round, then by id (total order — no ties).
//!
//! A job that does not fit in the remaining ranks is skipped and smaller
//! jobs behind it may backfill, so one wide job cannot idle the pool.

use std::collections::BTreeMap;

use crate::job::{JobId, JobRecord, JobState};

/// One gang assignment: the job and the ascending world ranks that form its
/// gang. A member's gang rank is its position in `ranks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The job to run.
    pub job: JobId,
    /// World ranks of the gang, ascending; index = gang rank.
    pub ranks: Vec<usize>,
}

/// Attempt·rank slots each tenant has consumed so far — the fair-share
/// usage metric (a 4-rank attempt costs four times a 1-rank attempt).
fn tenant_usage(table: &BTreeMap<JobId, JobRecord>) -> BTreeMap<&str, u64> {
    let mut usage: BTreeMap<&str, u64> = BTreeMap::new();
    for rec in table.values() {
        *usage.entry(rec.spec.tenant.as_str()).or_insert(0) +=
            u64::from(rec.attempts) * rec.gang_size as u64;
    }
    usage
}

/// Plans one scheduling round: packs `Queued` jobs into gangs over `pool`
/// ranks. Pure and deterministic — equal inputs yield the identical plan on
/// every rank.
pub fn plan_round(table: &BTreeMap<JobId, JobRecord>, pool: usize) -> Vec<Assignment> {
    let usage = tenant_usage(table);
    let mut ready: Vec<&JobRecord> =
        table.values().filter(|r| r.state == JobState::Queued).collect();
    ready.sort_by_key(|r| {
        (
            std::cmp::Reverse(r.spec.priority),
            usage.get(r.spec.tenant.as_str()).copied().unwrap_or(0),
            r.submit_round,
            r.spec.id,
        )
    });

    let mut plan = Vec::new();
    let mut next_rank = 0usize;
    for rec in ready {
        let g = rec.gang_size.clamp(1, pool);
        if next_rank + g > pool {
            continue; // does not fit this round; smaller jobs may backfill
        }
        plan.push(Assignment { job: rec.spec.id, ranks: (next_rank..next_rank + g).collect() });
        next_rank += g;
        if next_rank == pool {
            break;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn table(recs: Vec<JobRecord>) -> BTreeMap<JobId, JobRecord> {
        recs.into_iter().map(|r| (r.spec.id, r)).collect()
    }

    fn queued(id: JobId, gang: usize, prio: u8, tenant: &str, round: u64) -> JobRecord {
        JobRecord::new(
            JobSpec::new(id, 16).with_gang(gang).with_priority(prio).with_tenant(tenant),
            round,
            4,
        )
    }

    #[test]
    fn packs_by_priority_then_fifo_and_backfills() {
        // Job 1 (wide, low prio) cannot fit after job 2 (high prio, 2 ranks)
        // + job 3 (2 ranks); job 4 (1 rank) backfills nothing — pool full.
        let t = table(vec![
            queued(1, 4, 0, "a", 0),
            queued(2, 2, 5, "a", 1),
            queued(3, 2, 0, "b", 2),
            queued(4, 1, 0, "c", 3),
        ]);
        let plan = plan_round(&t, 4);
        assert_eq!(
            plan,
            vec![
                Assignment { job: 2, ranks: vec![0, 1] },
                Assignment { job: 3, ranks: vec![2, 3] },
            ]
        );
    }

    #[test]
    fn wide_job_runs_alone_and_small_jobs_backfill_around_it() {
        let t = table(vec![queued(1, 4, 0, "a", 0), queued(2, 1, 0, "b", 1)]);
        let plan = plan_round(&t, 4);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].job, 1);
        assert_eq!(plan[0].ranks, vec![0, 1, 2, 3]);

        // Two 3-wide jobs cannot co-schedule on 4 ranks; the 1-wide job
        // behind them backfills the leftover rank.
        let t2 = table(vec![queued(1, 3, 0, "a", 0), queued(2, 3, 0, "b", 1), queued(3, 1, 0, "c", 2)]);
        let plan2 = plan_round(&t2, 4);
        assert_eq!(plan2.len(), 2);
        assert_eq!(plan2[0].job, 1);
        assert_eq!(plan2[1].job, 3, "small job must backfill past the too-wide one");
        assert_eq!(plan2[1].ranks, vec![3]);
    }

    #[test]
    fn fair_share_prefers_the_lighter_tenant() {
        let mut heavy = queued(1, 2, 0, "heavy", 0);
        heavy.attempts = 5; // tenant "heavy" has burned 10 rank·attempts
        let t = table(vec![heavy, queued(2, 2, 0, "light", 9)]);
        // Despite submitting later, the light tenant goes first.
        let plan = plan_round(&t, 2);
        assert_eq!(plan[0].job, 2);
    }

    #[test]
    fn running_and_terminal_jobs_are_not_replanned() {
        let mut a = queued(1, 2, 0, "a", 0);
        a.state = JobState::Running;
        let mut b = queued(2, 2, 0, "a", 0);
        b.state = JobState::Completed;
        let t = table(vec![a, b, queued(3, 2, 0, "a", 1)]);
        let plan = plan_round(&t, 4);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].job, 3);
    }
}
