//! Per-tenant service-level objectives over scheduler rounds.
//!
//! The serve runtime is coordinator-free: every rank folds the same outcome
//! allgather into the same job table. The SLO engine rides that replication
//! — it observes only fold-derived facts (queue wait, end-to-end latency,
//! success, all measured in *scheduler rounds*, the runtime's deterministic
//! clock) and evaluates burn rates in pure integer arithmetic, so every
//! rank computes bit-identical alert state with **zero extra
//! communication**, and a seeded chaos replay reproduces the alert log
//! byte-for-byte.
//!
//! Alerting follows the multi-window burn-rate recipe: an objective's error
//! budget is `allowed` (e.g. 5% of requests may miss a p95 latency target);
//! the burn rate is `bad_fraction / allowed`. An alert **fires** when the
//! burn rate meets the threshold over *both* a fast window (catches acute
//! breakage quickly) and a slow window (suppresses blips), and **resolves**
//! when the fast window recovers.

use std::collections::BTreeMap;

use crate::job::{fnv_fold_u64, FNV_OFFSET};
use diffreg_telemetry::MetricsRegistry;

/// The three serve objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Objective {
    /// 95% of jobs start within `queue_wait_rounds` of submission.
    QueueWaitP95,
    /// 95% of jobs finish within `latency_rounds` of submission.
    LatencyP95,
    /// At least `success_target_milli`/1000 of jobs complete successfully.
    SuccessRate,
}

impl Objective {
    /// Stable kebab-case name (metrics labels, alert log, bundles).
    pub fn name(self) -> &'static str {
        match self {
            Objective::QueueWaitP95 => "queue-wait-p95",
            Objective::LatencyP95 => "latency-p95",
            Objective::SuccessRate => "success-rate",
        }
    }

    /// All objectives in evaluation order.
    pub const ALL: [Objective; 3] =
        [Objective::QueueWaitP95, Objective::LatencyP95, Objective::SuccessRate];
}

/// The per-tenant objective targets and alerting windows. One policy
/// applies to every tenant (per-tenant *state* is tracked separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloPolicy {
    /// Queue-wait p95 target, in rounds (a job should start within this).
    pub queue_wait_rounds: u64,
    /// End-to-end p95 target, in rounds (submit → terminal).
    pub latency_rounds: u64,
    /// Success-rate target in milli (990 = 99.0%). The error budget is
    /// `1000 - success_target_milli`.
    pub success_target_milli: u64,
    /// Fast alerting window, in rounds.
    pub fast_window: usize,
    /// Slow alerting window, in rounds (≥ fast).
    pub slow_window: usize,
    /// Burn-rate threshold in milli (2000 = alert at 2× budget burn).
    pub burn_threshold_milli: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            queue_wait_rounds: 4,
            latency_rounds: 24,
            success_target_milli: 950,
            fast_window: 8,
            slow_window: 32,
            burn_threshold_milli: 2000,
        }
    }
}

impl SloPolicy {
    /// Error budget for `obj` as a rational `(numerator, denominator)`
    /// fraction of observations allowed to be bad. p95 objectives allow
    /// 5%; the success objective allows `1000 - target` milli.
    pub fn allowed_frac(&self, obj: Objective) -> (u64, u64) {
        match obj {
            Objective::QueueWaitP95 | Objective::LatencyP95 => (5, 100),
            Objective::SuccessRate => (1000 - self.success_target_milli.min(1000), 1000),
        }
    }
}

/// One round's observations for one (tenant, objective): how many terminal
/// jobs landed in the round, and how many blew the objective's budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Bucket {
    round: u64,
    total: u64,
    bad: u64,
}

/// Alert state for one (tenant, objective).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Within budget.
    Ok,
    /// Burn rate at/above threshold in both windows.
    Firing,
}

#[derive(Debug, Clone, Default)]
struct ObjectiveTrack {
    /// Newest-last per-round buckets; pruned to `slow_window` rounds.
    buckets: Vec<Bucket>,
    firing: bool,
    fired_count: u64,
}

impl ObjectiveTrack {
    fn observe(&mut self, round: u64, bad: bool) {
        match self.buckets.last_mut() {
            Some(b) if b.round == round => {
                b.total += 1;
                b.bad += u64::from(bad);
            }
            _ => self.buckets.push(Bucket { round, total: 1, bad: u64::from(bad) }),
        }
    }

    fn prune(&mut self, round: u64, slow_window: usize) {
        let keep_from = (round + 1).saturating_sub(slow_window as u64);
        self.buckets.retain(|b| b.round >= keep_from);
    }

    /// `(total, bad)` over the last `window` rounds ending at `round`.
    fn window_counts(&self, round: u64, window: usize) -> (u64, u64) {
        let keep_from = (round + 1).saturating_sub(window as u64);
        let mut total = 0;
        let mut bad = 0;
        for b in self.buckets.iter().filter(|b| b.round >= keep_from && b.round <= round) {
            total += b.total;
            bad += b.bad;
        }
        (total, bad)
    }
}

/// Burn rate in milli over a window, as pure integer math:
/// `burn = (bad / total) / (allowed_num / allowed_den)`, scaled ×1000.
/// Returns 0 for an empty window (no data ⇒ no burn).
pub fn burn_milli(total: u64, bad: u64, allowed: (u64, u64)) -> u64 {
    let (num, den) = allowed;
    if total == 0 || num == 0 {
        // A zero budget with any bad observation is an infinite burn.
        return if bad > 0 { u64::MAX } else { 0 };
    }
    // (bad * den * 1000) / (total * num) — u128 to dodge overflow.
    ((bad as u128 * den as u128 * 1000) / (total as u128 * num as u128)).min(u64::MAX as u128)
        as u64
}

/// One alert transition, for the deterministic alert log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloAlert {
    /// Round the transition happened.
    pub round: u64,
    /// Tenant the alert belongs to.
    pub tenant: String,
    /// Objective that breached/recovered.
    pub objective: Objective,
    /// New state.
    pub state: AlertState,
    /// Fast-window burn rate in milli at transition time.
    pub fast_burn_milli: u64,
    /// Slow-window burn rate in milli at transition time.
    pub slow_burn_milli: u64,
}

impl SloAlert {
    /// Renders the alert-log line (deterministic; no wall clock).
    pub fn render(&self) -> String {
        format!(
            "round {:>4}: {}/{} {} (burn fast={}m slow={}m)",
            self.round,
            self.tenant,
            self.objective.name(),
            match self.state {
                AlertState::Firing => "FIRING",
                AlertState::Ok => "resolved",
            },
            self.fast_burn_milli,
            self.slow_burn_milli
        )
    }
}

/// The replicated SLO engine: every rank feeds it the same fold-derived
/// observations in the same order, so its entire state — windows, alert
/// transitions, digest — is bit-identical across ranks and replays.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    /// The active policy.
    pub policy: SloPolicy,
    tracks: BTreeMap<(String, Objective), ObjectiveTrack>,
    /// Every alert transition, in order.
    pub alert_log: Vec<SloAlert>,
}

impl SloEngine {
    /// A new engine with `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        SloEngine { policy, tracks: BTreeMap::new(), alert_log: Vec::new() }
    }

    /// Records one job reaching a terminal state at `round`.
    /// `queue_wait`/`e2e` are in rounds; `success` means `Completed`.
    pub fn observe_terminal(
        &mut self,
        tenant: &str,
        round: u64,
        queue_wait: u64,
        e2e: u64,
        success: bool,
    ) {
        let bads = [
            (Objective::QueueWaitP95, queue_wait > self.policy.queue_wait_rounds),
            (Objective::LatencyP95, e2e > self.policy.latency_rounds),
            (Objective::SuccessRate, !success),
        ];
        for (obj, bad) in bads {
            self.tracks.entry((tenant.to_string(), obj)).or_default().observe(round, bad);
        }
    }

    /// Ends `round`: rotates windows and evaluates alert transitions.
    /// Returns the transitions that happened this round (also appended to
    /// [`SloEngine::alert_log`]).
    pub fn advance_round(&mut self, round: u64) -> Vec<SloAlert> {
        let mut out = Vec::new();
        let policy = self.policy.clone();
        for ((tenant, obj), track) in self.tracks.iter_mut() {
            track.prune(round, policy.slow_window);
            let allowed = policy.allowed_frac(*obj);
            let (ft, fb) = track.window_counts(round, policy.fast_window);
            let (st, sb) = track.window_counts(round, policy.slow_window);
            let fast = burn_milli(ft, fb, allowed);
            let slow = burn_milli(st, sb, allowed);
            let breach = fast >= policy.burn_threshold_milli && slow >= policy.burn_threshold_milli;
            let next = if track.firing {
                // Resolve on the fast window: acute breakage over.
                fast >= policy.burn_threshold_milli
            } else {
                breach
            };
            if next != track.firing {
                track.firing = next;
                if next {
                    track.fired_count += 1;
                }
                let alert = SloAlert {
                    round,
                    tenant: tenant.clone(),
                    objective: *obj,
                    state: if next { AlertState::Firing } else { AlertState::Ok },
                    fast_burn_milli: fast,
                    slow_burn_milli: slow,
                };
                self.alert_log.push(alert.clone());
                out.push(alert);
            }
        }
        out
    }

    /// `tenant/objective` names currently firing, in deterministic order.
    pub fn firing(&self) -> Vec<String> {
        self.tracks
            .iter()
            .filter(|(_, t)| t.firing)
            .map(|((tenant, obj), _)| format!("{tenant}/{}", obj.name()))
            .collect()
    }

    /// FNV-1a digest over the complete alert-relevant state: every tracked
    /// (tenant, objective) window, firing flag, and the full alert log.
    /// Equal digests across ranks prove bit-identical alert state.
    pub fn state_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for ((tenant, obj), track) in &self.tracks {
            for b in tenant.bytes() {
                h = fnv_fold_u64(h, u64::from(b));
            }
            h = fnv_fold_u64(h, obj.name().len() as u64);
            h = fnv_fold_u64(h, u64::from(track.firing));
            h = fnv_fold_u64(h, track.fired_count);
            for b in &track.buckets {
                h = fnv_fold_u64(h, b.round);
                h = fnv_fold_u64(h, b.total);
                h = fnv_fold_u64(h, b.bad);
            }
        }
        for a in &self.alert_log {
            for b in a.render().bytes() {
                h = fnv_fold_u64(h, u64::from(b));
            }
        }
        h
    }

    /// Renders the full alert log, one line per transition.
    pub fn render_alert_log(&self) -> Vec<String> {
        self.alert_log.iter().map(SloAlert::render).collect()
    }

    /// Exports burn rates and alert state into `metrics` (Prometheus-style
    /// label-in-name keys).
    pub fn export(&self, round: u64, metrics: &mut MetricsRegistry) {
        let policy = &self.policy;
        for ((tenant, obj), track) in &self.tracks {
            let allowed = policy.allowed_frac(*obj);
            let (ft, fb) = track.window_counts(round, policy.fast_window);
            let (st, sb) = track.window_counts(round, policy.slow_window);
            // Tenant ids are caller-supplied: escape them per the
            // exposition format before quoting.
            let tenant = diffreg_telemetry::escape_label_value(tenant);
            let base = format!("tenant=\"{tenant}\",objective=\"{}\"", obj.name());
            metrics.set_gauge(
                &format!("diffreg_slo_burn_milli{{{base},window=\"fast\"}}"),
                burn_milli(ft, fb, allowed) as f64,
            );
            metrics.set_gauge(
                &format!("diffreg_slo_burn_milli{{{base},window=\"slow\"}}"),
                burn_milli(st, sb, allowed) as f64,
            );
            metrics.set_gauge(
                &format!("diffreg_slo_firing{{{base}}}"),
                f64::from(u8::from(track.firing)),
            );
            metrics.set_gauge(
                &format!("diffreg_slo_alerts_fired_total{{{base}}}"),
                track.fired_count as f64,
            );
        }
        metrics.set_gauge("diffreg_slo_alert_transitions", self.alert_log.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffreg_testkit::prop_check;

    fn policy(fast: usize, slow: usize, thr: u64) -> SloPolicy {
        SloPolicy {
            queue_wait_rounds: 2,
            latency_rounds: 10,
            success_target_milli: 900,
            fast_window: fast,
            slow_window: slow,
            burn_threshold_milli: thr,
        }
    }

    #[test]
    fn burn_rate_is_exact_integer_math() {
        // 10% bad against a 5% budget = 2.0x burn.
        assert_eq!(burn_milli(100, 10, (5, 100)), 2000);
        // Empty window burns nothing.
        assert_eq!(burn_milli(0, 0, (5, 100)), 0);
        // Zero budget: any failure is infinite burn.
        assert_eq!(burn_milli(10, 1, (0, 1000)), u64::MAX);
        assert_eq!(burn_milli(10, 0, (0, 1000)), 0);
    }

    #[test]
    fn fires_only_when_both_windows_breach_and_resolves_on_fast() {
        let mut e = SloEngine::new(policy(2, 8, 2000));
        // Rounds 0..5: all failures for tenant "acme" → success-rate burn
        // 10x (budget 10%). Slow window needs enough data too.
        for r in 0..3 {
            e.observe_terminal("acme", r, 0, 1, false);
            let alerts = e.advance_round(r);
            if r == 0 {
                // Fast and slow windows both see 1/1 bad already.
                assert_eq!(alerts.len(), 1, "{alerts:?}");
                assert_eq!(alerts[0].state, AlertState::Firing);
                assert_eq!(alerts[0].objective, Objective::SuccessRate);
            }
        }
        assert!(e.firing().contains(&"acme/success-rate".to_string()));
        // Recovery: successes push the fast window under threshold.
        let mut resolved_round = None;
        for r in 3..12 {
            for _ in 0..4 {
                e.observe_terminal("acme", r, 0, 1, true);
            }
            let alerts = e.advance_round(r);
            if alerts.iter().any(|a| a.state == AlertState::Ok) && resolved_round.is_none() {
                resolved_round = Some(r);
            }
        }
        let resolved = resolved_round.expect("alert must resolve on fast-window recovery");
        // Fast window = 2 rounds: once both contain only successes the
        // burn is 0; resolution must not wait for the slow window.
        assert!(resolved <= 4, "resolved at {resolved}, expected fast-window recovery");
        assert!(e.firing().is_empty());
        // The alert log holds exactly one FIRING and one resolved line.
        let log = e.render_alert_log();
        assert_eq!(log.len(), 2, "{log:?}");
        assert!(log[0].contains("FIRING"), "{}", log[0]);
        assert!(log[1].contains("resolved"), "{}", log[1]);
    }

    #[test]
    fn prop_sliding_window_rotation_matches_brute_force() {
        prop_check!(cases = 200, |rng| {
            let slow = 1 + rng.index(12);
            let fast = 1 + rng.index(slow);
            let rounds = 1 + rng.index(40) as u64;
            let mut track = ObjectiveTrack::default();
            let mut all: Vec<(u64, bool)> = Vec::new();
            for r in 0..rounds {
                for _ in 0..rng.index(4) {
                    let bad = rng.chance(0.5);
                    track.observe(r, bad);
                    all.push((r, bad));
                }
                track.prune(r, slow);
                for (window, label) in [(fast, "fast"), (slow, "slow")] {
                    let keep_from = (r + 1).saturating_sub(window as u64);
                    let want_total =
                        all.iter().filter(|(br, _)| *br >= keep_from && *br <= r).count() as u64;
                    let want_bad = all
                        .iter()
                        .filter(|(br, bad)| *br >= keep_from && *br <= r && *bad)
                        .count() as u64;
                    let (got_total, got_bad) = track.window_counts(r, window);
                    assert_eq!(
                        (got_total, got_bad),
                        (want_total, want_bad),
                        "{label} window mismatch at round {r} (fast={fast}, slow={slow})"
                    );
                }
            }
        });
    }

    #[test]
    fn prop_burn_threshold_exact_at_window_boundaries() {
        prop_check!(cases = 200, |rng| {
            let total = 1 + rng.index(1000) as u64;
            let bad = rng.index(total as usize + 1) as u64;
            let num = 1 + rng.index(100) as u64;
            let den = num + rng.index(1000) as u64;
            let burn = burn_milli(total, bad, (num, den));
            // burn >= thr  ⇔  bad * den * 1000 >= thr * num * total,
            // checked against the definition in u128 with no rounding.
            for thr in [burn.saturating_sub(1), burn, burn.saturating_add(1)] {
                let lhs = bad as u128 * den as u128 * 1000;
                let rhs = thr as u128 * num as u128 * total as u128;
                let by_def = lhs >= rhs;
                let by_burn = burn >= thr;
                // burn is floor(lhs / (num*total)); both sides agree except
                // in the floor gap, where by_def may be true one earlier.
                if by_burn {
                    assert!(by_def, "burn {burn} >= thr {thr} but definition disagrees");
                }
            }
        });
    }

    #[test]
    fn prop_engine_state_digest_is_replay_deterministic() {
        prop_check!(cases = 50, |rng| {
            let pol = policy(1 + rng.index(4), 4 + rng.index(8), 1500);
            let mut script: Vec<(u64, String, u64, u64, bool)> = Vec::new();
            let rounds = 1 + rng.index(20) as u64;
            for r in 0..rounds {
                for _ in 0..rng.index(3) {
                    let tenant = format!("t{}", rng.index(3));
                    script.push((r, tenant, rng.index(6) as u64, rng.index(30) as u64, rng.chance(0.66)));
                }
            }
            let run = |script: &[(u64, String, u64, u64, bool)]| {
                let mut e = SloEngine::new(pol.clone());
                let mut round = 0;
                for (r, tenant, qw, e2e, ok) in script {
                    while round < *r {
                        e.advance_round(round);
                        round += 1;
                    }
                    e.observe_terminal(tenant, *r, *qw, *e2e, *ok);
                }
                e.advance_round(round);
                (e.state_digest(), e.render_alert_log())
            };
            let (d1, log1) = run(&script);
            let (d2, log2) = run(&script);
            assert_eq!(d1, d2, "identical observation scripts must give identical digests");
            assert_eq!(log1, log2);
        });
    }

    #[test]
    fn export_escapes_tenant_label_values() {
        let mut e = SloEngine::new(SloPolicy::default());
        e.observe_terminal("acme\"corp\\eu\n", 0, 0, 0, true);
        e.advance_round(0);
        let mut m = MetricsRegistry::new();
        e.export(0, &mut m);
        let out = m.render_prometheus();
        assert!(
            out.contains(
                "diffreg_slo_burn_milli{tenant=\"acme\\\"corp\\\\eu\\n\",objective=\"latency-p95\",window=\"fast\"}"
            ),
            "escaped tenant label pinned: {out}"
        );
        assert!(!out.contains("eu\n\""), "raw newline must not survive in a label: {out}");
    }
}
